// PGAS runtime: barriers, RPC delivery and quiescence, collectives,
// one-sided channels, counters, and misuse rejection.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "pgas/runtime.hpp"
#include "util/error.hpp"

namespace simcov::pgas {
namespace {

TEST(Pgas, RunsEveryRankOnce) {
  Runtime rt(6);
  std::vector<std::atomic<int>> hits(6);
  rt.run([&](Rank& r) { hits[static_cast<std::size_t>(r.id())]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Pgas, WorldSizeAndIds) {
  Runtime rt(3);
  rt.run([&](Rank& r) {
    EXPECT_EQ(r.world_size(), 3);
    EXPECT_GE(r.id(), 0);
    EXPECT_LT(r.id(), 3);
  });
}

TEST(Pgas, RpcQuiescenceDeliversAll) {
  Runtime rt(4);
  std::vector<std::atomic<int>> inbox(4);
  rt.run([&](Rank& r) {
    // Everyone RPCs everyone else.
    for (int t = 0; t < r.world_size(); ++t) {
      if (t == r.id()) continue;
      auto* slot = &inbox[static_cast<std::size_t>(t)];
      r.rpc(t, [slot] { slot->fetch_add(1); });
    }
    r.rpc_quiescence();
    EXPECT_EQ(inbox[static_cast<std::size_t>(r.id())].load(), 3);
  });
}

TEST(Pgas, RpcsRunOnTargetDuringProgress) {
  Runtime rt(2);
  rt.run([&](Rank& r) {
    static std::atomic<int> executed{0};
    if (r.id() == 0) {
      r.rpc(1, [] { executed.fetch_add(1); });
    }
    r.rpc_quiescence();
    EXPECT_EQ(executed.load(), 1);
    r.barrier();
  });
}

TEST(Pgas, AllreduceSumScalar) {
  Runtime rt(5);
  rt.run([&](Rank& r) {
    const double total = r.allreduce_sum(static_cast<double>(r.id() + 1));
    EXPECT_DOUBLE_EQ(total, 15.0);  // 1+2+3+4+5
    const std::uint64_t t2 = r.allreduce_sum(static_cast<std::uint64_t>(2));
    EXPECT_EQ(t2, 10u);
  });
}

TEST(Pgas, AllreduceSumVector) {
  Runtime rt(3);
  rt.run([&](Rank& r) {
    std::vector<double> mine = {1.0, static_cast<double>(r.id()), 0.5};
    const auto out = r.allreduce_sum(
        std::span<const double>(mine.data(), mine.size()));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 3.0);
    EXPECT_DOUBLE_EQ(out[1], 3.0);  // 0+1+2
    EXPECT_DOUBLE_EQ(out[2], 1.5);
  });
}

TEST(Pgas, AllreduceMaxKeepsFull64Bits) {
  Runtime rt(4);
  rt.run([&](Rank& r) {
    // Values that a double round-trip would corrupt.
    const std::uint64_t mine = 0xdeadbeef00000001ULL + static_cast<std::uint64_t>(r.id());
    const std::uint64_t mx = r.allreduce_max(mine);
    EXPECT_EQ(mx, 0xdeadbeef00000004ULL);
  });
}

TEST(Pgas, AllreduceXor) {
  Runtime rt(4);
  rt.run([&](Rank& r) {
    const std::uint64_t mine = 1ULL << (r.id() * 8);
    EXPECT_EQ(r.allreduce_xor(mine), 0x01010101ULL);
  });
}

TEST(Pgas, AllreduceSumU64RejectsHugeValues) {
  Runtime rt(1);
  rt.run([&](Rank& r) {
    EXPECT_THROW(r.allreduce_sum(static_cast<std::uint64_t>(1) << 60), Error);
  });
}

TEST(Pgas, BroadcastCopiesRootBytes) {
  Runtime rt(4);
  rt.run([&](Rank& r) {
    std::vector<std::byte> buf(8);
    if (r.id() == 2) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<std::byte>(i + 1);
      }
    }
    r.broadcast(2, buf);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      EXPECT_EQ(static_cast<int>(buf[i]), static_cast<int>(i + 1));
    }
    const std::uint64_t v = r.broadcast_value<std::uint64_t>(
        0, r.id() == 0 ? 0xabcdefULL : 0ULL);
    EXPECT_EQ(v, 0xabcdefULL);
  });
}

TEST(Pgas, BroadcastBadRootRejected) {
  Runtime rt(2);
  rt.run([&](Rank& r) {
    std::vector<std::byte> buf(4);
    EXPECT_THROW(r.broadcast(5, buf), Error);
    EXPECT_THROW(r.broadcast(-1, buf), Error);
  });
}

TEST(Pgas, BroadcastCountsTraffic) {
  Runtime rt(2);
  rt.run([&](Rank& r) {
    std::vector<std::byte> buf(16);
    r.broadcast(0, buf);
    EXPECT_EQ(r.stats().broadcasts, 1u);
    EXPECT_EQ(r.stats().broadcast_bytes, 16u);
  });
  const CommStats total = rt.total_stats();
  EXPECT_EQ(total.broadcasts, 2u);
  EXPECT_EQ(total.broadcast_bytes, 32u);
}

TEST(Pgas, BarrierWaitIsMeasured) {
  Runtime rt(2);
  rt.run([&](Rank& r) {
    // Rank 1 arrives late, so rank 0 must accumulate wait time.
    if (r.id() == 1) {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(20);
      while (std::chrono::steady_clock::now() < until) {}
    }
    r.barrier();
  });
  EXPECT_GE(rt.rank_stats(0).barrier_wait_ns, 1'000'000u);  // >= 1 ms
}

TEST(Pgas, ChannelsPutAndRead) {
  Runtime rt(2);
  rt.run([&](Rank& r) {
    r.register_channel(7, 16);
    r.barrier();
    std::vector<std::byte> data(8);
    std::memset(data.data(), 0x40 + r.id(), data.size());
    r.put(1 - r.id(), 7, data, /*offset=*/4);
    r.barrier();
    auto view = r.channel(7);
    ASSERT_EQ(view.size(), 16u);
    EXPECT_EQ(static_cast<int>(view[4]), 0x40 + (1 - r.id()));
    EXPECT_EQ(static_cast<int>(view[0]), 0);  // untouched prefix
  });
}

TEST(Pgas, PutMisuseRejected) {
  Runtime rt(2);
  rt.run([&](Rank& r) {
    r.register_channel(1, 8);
    r.barrier();
    std::vector<std::byte> data(9);
    if (r.id() == 0) {
      EXPECT_THROW(r.put(1, 1, data), Error);       // overflow
      EXPECT_THROW(r.put(1, 99, data), Error);      // unregistered channel
      EXPECT_THROW(r.put(5, 1, data), Error);       // bad rank
      EXPECT_THROW((void)r.channel(42), Error);     // unregistered read
    }
    r.barrier();
  });
}

TEST(Pgas, PutHugeOffsetRejectedNotWrapped) {
  // Regression: offset + size used to be summed before the bound check, so
  // an offset near SIZE_MAX wrapped around and the copy went out of bounds.
  Runtime rt(2);
  rt.run([&](Rank& r) {
    r.register_channel(1, 8);
    r.barrier();
    std::vector<std::byte> data(2);
    if (r.id() == 0) {
      constexpr std::size_t huge = std::numeric_limits<std::size_t>::max();
      EXPECT_THROW(r.put(1, 1, data, huge), Error);
      EXPECT_THROW(r.put(1, 1, data, huge - 1), Error);
      EXPECT_THROW(r.put(1, 1, data, 7), Error);   // one past the end
      EXPECT_NO_THROW(r.put(1, 1, data, 6));       // exactly fits
    }
    r.barrier();
  });
}

TEST(Pgas, RpcToBadRankRejected) {
  Runtime rt(2);
  rt.run([&](Rank& r) {
    EXPECT_THROW(r.rpc(7, [] {}), Error);
  });
}

TEST(Pgas, CountersTrackTraffic) {
  Runtime rt(2);
  rt.run([&](Rank& r) {
    r.register_channel(0, 64);
    r.barrier();
    std::vector<std::byte> data(64);
    r.put(1 - r.id(), 0, data);
    r.rpc(1 - r.id(), [] {}, /*approx_bytes=*/100);
    r.rpc_quiescence();
    r.allreduce_sum(1.0);
    EXPECT_EQ(r.stats().puts, 1u);
    EXPECT_EQ(r.stats().put_bytes, 64u);
    EXPECT_EQ(r.stats().rpcs_sent, 1u);
    EXPECT_EQ(r.stats().rpc_bytes, 100u);
    EXPECT_GE(r.stats().barriers, 3u);
    EXPECT_EQ(r.stats().reductions, 1u);
  });
  const CommStats total = rt.total_stats();
  EXPECT_EQ(total.puts, 2u);
  EXPECT_EQ(total.rpcs_sent, 2u);
  EXPECT_EQ(rt.rank_stats(0).puts, 1u);
}

TEST(Pgas, StatsSinceSnapshot) {
  CommStats a;
  a.puts = 5;
  a.put_bytes = 100;
  CommStats snap = a;
  a.puts = 9;
  a.put_bytes = 160;
  const CommStats d = a.since(snap);
  EXPECT_EQ(d.puts, 4u);
  EXPECT_EQ(d.put_bytes, 60u);
}

TEST(Pgas, StatsSinceAndAccumulateCoverBroadcastAndWait) {
  CommStats a;
  a.broadcasts = 3;
  a.broadcast_bytes = 300;
  a.barrier_wait_ns = 50;
  CommStats snap = a;
  a.broadcasts = 5;
  a.broadcast_bytes = 420;
  a.barrier_wait_ns = 90;
  const CommStats d = a.since(snap);
  EXPECT_EQ(d.broadcasts, 2u);
  EXPECT_EQ(d.broadcast_bytes, 120u);
  EXPECT_EQ(d.barrier_wait_ns, 40u);
  CommStats sum;
  sum += a;
  sum += d;
  EXPECT_EQ(sum.broadcasts, 7u);
  EXPECT_EQ(sum.broadcast_bytes, 540u);
  EXPECT_EQ(sum.barrier_wait_ns, 130u);
}

TEST(Pgas, StatsRoundTripEveryFieldThroughAccumulateAndSince) {
  // Every CommStats field — including the per-peer matrix — must survive
  // the += / since() round trip, or bench reports silently drop traffic.
  CommStats a;
  a.rpcs_sent = 1;
  a.rpc_bytes = 10;
  a.puts = 2;
  a.put_bytes = 20;
  a.barriers = 3;
  a.barrier_wait_ns = 30;
  a.reductions = 4;
  a.reduction_bytes = 40;
  a.broadcasts = 5;
  a.broadcast_bytes = 50;
  a.peers[1] = PeerStats{1, 10, 2, 20};
  const CommStats snap = a;

  CommStats b = a;
  b.rpcs_sent += 7;
  b.rpc_bytes += 70;
  b.puts += 8;
  b.put_bytes += 80;
  b.barriers += 9;
  b.barrier_wait_ns += 90;
  b.reductions += 10;
  b.reduction_bytes += 100;
  b.broadcasts += 11;
  b.broadcast_bytes += 110;
  b.peers[1] += PeerStats{7, 70, 8, 80};
  b.peers[3] = PeerStats{2, 6, 1, 5};

  const CommStats d = b.since(snap);
  EXPECT_EQ(d.rpcs_sent, 7u);
  EXPECT_EQ(d.rpc_bytes, 70u);
  EXPECT_EQ(d.puts, 8u);
  EXPECT_EQ(d.put_bytes, 80u);
  EXPECT_EQ(d.barriers, 9u);
  EXPECT_EQ(d.barrier_wait_ns, 90u);
  EXPECT_EQ(d.reductions, 10u);
  EXPECT_EQ(d.reduction_bytes, 100u);
  EXPECT_EQ(d.broadcasts, 11u);
  EXPECT_EQ(d.broadcast_bytes, 110u);
  ASSERT_EQ(d.peers.size(), 2u);
  EXPECT_EQ(d.peers.at(1), (PeerStats{7, 70, 8, 80}));
  EXPECT_EQ(d.peers.at(3), (PeerStats{2, 6, 1, 5}));

  // Accumulating the delta back onto the snapshot restores the total.
  CommStats sum = snap;
  sum += d;
  EXPECT_EQ(sum.rpcs_sent, b.rpcs_sent);
  EXPECT_EQ(sum.put_bytes, b.put_bytes);
  EXPECT_EQ(sum.peers, b.peers);

  // An unchanged peer produces no entry in the delta.
  CommStats c = b;
  c.barriers += 1;
  EXPECT_TRUE(c.since(b).peers.empty());
}

TEST(Pgas, PeerMatrixRowSumsEqualAggregates) {
  // Four ranks, deliberately asymmetric traffic: each rank puts to its
  // right neighbour and RPCs every other rank a rank-dependent amount.
  constexpr int kRanks = 4;
  Runtime rt(kRanks);
  rt.run([&](Rank& r) {
    r.register_channel(0, 256);
    r.barrier();
    const int right = (r.id() + 1) % kRanks;
    std::vector<std::byte> data(static_cast<std::size_t>(16 + 8 * r.id()));
    r.put(right, 0, data);
    if (r.id() == 0) r.put(right, 0, data);  // extra edge weight on 0->1
    for (int dst = 0; dst < kRanks; ++dst) {
      if (dst == r.id()) continue;
      r.rpc(dst, [] {}, /*approx_bytes=*/static_cast<std::size_t>(10 + dst));
    }
    r.rpc_quiescence();
  });
  for (int src = 0; src < kRanks; ++src) {
    const CommStats s = rt.rank_stats(src);
    PeerStats row_sum;
    for (const auto& [dst, p] : s.peers) {
      EXPECT_NE(dst, src) << "self-edge in comm matrix";
      row_sum += p;
    }
    // The invariant the bench-report comm matrix relies on: per-peer
    // traffic sums exactly to this rank's aggregate counters.
    EXPECT_EQ(row_sum.puts, s.puts) << "rank " << src;
    EXPECT_EQ(row_sum.put_bytes, s.put_bytes) << "rank " << src;
    EXPECT_EQ(row_sum.rpcs_sent, s.rpcs_sent) << "rank " << src;
    EXPECT_EQ(row_sum.rpc_bytes, s.rpc_bytes) << "rank " << src;
  }
  // Spot-check one edge: rank 0 put twice to rank 1, others once.
  EXPECT_EQ(rt.rank_stats(0).peers.at(1).puts, 2u);
  EXPECT_EQ(rt.rank_stats(1).peers.at(2).puts, 1u);
  EXPECT_EQ(rt.rank_stats(2).peers.at(0).rpcs_sent, 1u);
  EXPECT_EQ(rt.rank_stats(2).peers.at(0).rpc_bytes, 10u);
}

TEST(Pgas, RunCanBeRepeated) {
  Runtime rt(3);
  for (int i = 0; i < 3; ++i) {
    rt.run([&](Rank& r) {
      // Channels don't persist between jobs.
      EXPECT_THROW((void)r.channel(0), Error);
      r.register_channel(0, 4);
      EXPECT_EQ(r.allreduce_sum(1.0), 3.0);
    });
  }
}

TEST(Pgas, RankExceptionPropagates) {
  Runtime rt(1);
  EXPECT_THROW(rt.run([](Rank&) { throw Error("boom"); }), Error);
}

TEST(Pgas, InvalidRankCountRejected) {
  EXPECT_THROW(Runtime(0), Error);
  EXPECT_THROW(Runtime(-3), Error);
}

}  // namespace
}  // namespace simcov::pgas
