// Observability layer: tracer ring semantics, Chrome-trace JSON validity
// (parseable, per-track monotone timestamps, properly nested spans), metrics
// registry recording/export, snapshot determinism for a fixed seed and rank
// count, and a multi-rank GPU run under the PGAS discipline checker with the
// tracer on.
//
// The tracer and registry are process-wide singletons; every test starts
// from and returns to the disabled state.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "simcov_gpu/gpu_sim.hpp"
#include "util/error.hpp"

namespace simcov {
namespace {

// ---- minimal JSON parser ---------------------------------------------------
// Just enough for the tracer / metrics output: objects, arrays, strings with
// the escapes our writers emit, numbers, booleans, null.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool operator==(const JsonValue&) const = default;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    require(pos_ == s_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  void require(bool ok, const char* what) {
    if (!ok) throw Error(std::string("JSON parse error: ") + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    require(pos_ < s_.size(), "unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    require(peek() == c, "unexpected character");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool consume_word(const char* w) {
    const std::size_t n = std::string(w).size();
    if (s_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      v.kind = JsonValue::Kind::kObject;
      expect('{');
      skip_ws();
      if (!consume('}')) {
        do {
          skip_ws();
          std::string key = string_lit();
          skip_ws();
          expect(':');
          v.obj.emplace(std::move(key), value());
          skip_ws();
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      v.kind = JsonValue::Kind::kArray;
      expect('[');
      skip_ws();
      if (!consume(']')) {
        do {
          v.arr.push_back(value());
          skip_ws();
        } while (consume(','));
        expect(']');
      }
    } else if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = string_lit();
    } else if (consume_word("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
    } else if (consume_word("false")) {
      v.kind = JsonValue::Kind::kBool;
    } else if (consume_word("null")) {
      v.kind = JsonValue::Kind::kNull;
    } else {
      v.kind = JsonValue::Kind::kNumber;
      char* end = nullptr;
      v.number = std::strtod(s_.c_str() + pos_, &end);
      require(end != s_.c_str() + pos_, "malformed number");
      pos_ = static_cast<std::size_t>(end - s_.c_str());
    }
    return v;
  }

  std::string string_lit() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < s_.size(), "unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        require(pos_ < s_.size(), "unterminated escape");
        const char e = s_[pos_++];
        if (e == 'u') {
          require(pos_ + 4 <= s_.size(), "short \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          out.push_back(static_cast<char>(code));  // our writers stay ASCII
        } else if (e == 'n') {
          out.push_back('\n');
        } else if (e == 't') {
          out.push_back('\t');
        } else {
          out.push_back(e);  // '"', '\\', '/'
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---- shared helpers --------------------------------------------------------

void reset_obs() {
  obs::tracer().disable();
  obs::metrics().disable();
}

SimParams test_params() {
  SimParams p = SimParams::covid_default();
  p.dim_x = 48;
  p.dim_y = 48;
  p.dim_z = 1;
  p.num_steps = 16;  // >= 2 tile sweeps at the default check period of 8
  p.num_foi = 2;
  p.incubation_period = 10;
  p.tcell_initial_delay = 5;
  p.tcell_generation_rate = 4;
  p.seed = 7;
  return p;
}

void run_gpu_4ranks() {
  const SimParams p = test_params();
  gpu::GpuSimOptions opt;
  opt.num_ranks = 4;
  harness::RunSpec spec;
  spec.params = p;
  (void)gpu::run_gpu_sim(p, spec.resolve_foi(), opt);
}

/// Exact nanoseconds from an exported microsecond timestamp (the writer
/// emits exactly three decimals, so round() recovers the integer).
std::int64_t ns_of(const JsonValue& us) {
  return std::llround(us.number * 1000.0);
}

// ---- tracer unit tests -----------------------------------------------------

TEST(Tracer, DisabledSpanSiteRecordsNothing) {
  reset_obs();
  {
    obs::ScopedSpan span("noop", 0);
  }
  obs::tracer().record("direct", 0, 1, 2);
  EXPECT_EQ(obs::tracer().event_count(), 0u);
  EXPECT_FALSE(obs::tracer().enabled());
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  reset_obs();
  obs::tracer().enable("", /*capacity=*/4);
  static const char* const names[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (int i = 0; i < 6; ++i) {
    obs::tracer().record(names[i], 0, i * 10, i * 10 + 5);
  }
  EXPECT_EQ(obs::tracer().event_count(), 4u);
  EXPECT_EQ(obs::tracer().dropped(), 2u);
  const auto evs = obs::tracer().events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_STREQ(evs.front().name, "e2");  // oldest surviving, first out
  EXPECT_STREQ(evs.back().name, "e5");
  reset_obs();
}

TEST(Tracer, DisableMidSpanIsSafe) {
  reset_obs();
  obs::tracer().enable("");
  {
    obs::ScopedSpan span("interrupted", 0);
    obs::tracer().disable();
  }  // dtor records into a disabled tracer: must no-op
  EXPECT_EQ(obs::tracer().event_count(), 0u);
}

TEST(Tracer, EnvVarSetsRingCapacity) {
  reset_obs();
  ::setenv("SIMCOV_TRACE_RING", "8", 1);
  obs::tracer().enable("");
  EXPECT_EQ(obs::tracer().capacity(), 8u);
  for (int i = 0; i < 10; ++i) obs::tracer().record("e", 0, i, i + 1);
  EXPECT_EQ(obs::tracer().event_count(), 8u);
  EXPECT_EQ(obs::tracer().dropped(), 2u);
  obs::tracer().disable();

  // An explicit capacity beats the environment.
  obs::tracer().enable("", /*capacity=*/4);
  EXPECT_EQ(obs::tracer().capacity(), 4u);
  obs::tracer().disable();

  // Garbage in the environment falls back to the default (with a warning).
  ::setenv("SIMCOV_TRACE_RING", "not-a-number", 1);
  obs::tracer().enable("");
  EXPECT_EQ(obs::tracer().capacity(), obs::Tracer::kDefaultCapacity);
  ::unsetenv("SIMCOV_TRACE_RING");
  reset_obs();
}

// ---- end-to-end trace validity --------------------------------------------

TEST(Trace, GpuRunProducesValidNestedJsonPerRankUnderChecker) {
  reset_obs();
  // The PGAS discipline checker runs alongside the tracer: the run must
  // stay violation-free (run_gpu_sim throws otherwise).
  ::setenv("SIMCOV_PGAS_CHECK", "1", 1);
  obs::tracer().enable("");
  ASSERT_NO_THROW(run_gpu_4ranks());
  const std::string json = obs::tracer().to_json();
  reset_obs();
  ::unsetenv("SIMCOV_PGAS_CHECK");

  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(json).parse());
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(root.obj.contains("traceEvents"));
  EXPECT_EQ(root.obj.at("otherData").obj.at("dropped_events").number, 0.0);

  const auto& events = root.obj.at("traceEvents").arr;
  ASSERT_FALSE(events.empty());

  std::map<int, std::string> track_names;
  std::map<int, std::vector<const JsonValue*>> by_track;
  for (const JsonValue& e : events) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    const std::string& ph = e.obj.at("ph").str;
    const int tid = static_cast<int>(e.obj.at("tid").number);
    if (ph == "M") {
      if (e.obj.at("name").str == "thread_name") {
        track_names[tid] = e.obj.at("args").obj.at("name").str;
      }
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_EQ(static_cast<int>(e.obj.at("pid").number), 1);
    EXPECT_FALSE(e.obj.at("name").str.empty());
    by_track[tid].push_back(&e);
  }

  // One named track per rank.
  ASSERT_EQ(by_track.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    ASSERT_TRUE(by_track.contains(r)) << "missing track for rank " << r;
    ASSERT_TRUE(track_names.contains(r));
    EXPECT_EQ(track_names.at(r), "rank " + std::to_string(r));
  }

  // Every step() phase appears as a span on every rank's track, plus the
  // step envelope and the runtime's barrier spans.
  const char* const required[] = {"step",   "t_cells",        "epithelial",
                                  "halo",   "concentrations", "tile_sweep",
                                  "reduce_stats", "barrier"};
  for (const auto& [tid, evs] : by_track) {
    std::map<std::string, int> seen;
    for (const JsonValue* e : evs) ++seen[e->obj.at("name").str];
    for (const char* name : required) {
      EXPECT_GT(seen[name], 0) << "rank " << tid << " lacks span " << name;
    }
  }

  // Per-track: timestamps monotonically non-decreasing in file order, and
  // spans properly nested (a span begun inside another ends inside it).
  for (const auto& [tid, evs] : by_track) {
    std::int64_t prev_ts = std::numeric_limits<std::int64_t>::min();
    std::vector<std::pair<std::int64_t, std::int64_t>> stack;
    for (const JsonValue* e : evs) {
      const std::int64_t ts = ns_of(e->obj.at("ts"));
      const std::int64_t end = ts + ns_of(e->obj.at("dur"));
      EXPECT_GE(ts, prev_ts) << "track " << tid << " timestamps regress";
      prev_ts = ts;
      while (!stack.empty() && stack.back().second <= ts) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(end, stack.back().second)
            << "track " << tid << " span '" << e->obj.at("name").str
            << "' half-overlaps its enclosing span";
      }
      stack.emplace_back(ts, end);
    }
  }
}

// ---- metrics registry ------------------------------------------------------

TEST(Metrics, DisabledRecordingIsNoOp) {
  reset_obs();
  obs::metrics().add("c", 0, 1.0);
  obs::metrics().set("g", 0, 2.0);
  obs::metrics().observe("h", 0, 3.0);
  obs::metrics().step_value("s", 0, 0, 4.0);
  EXPECT_EQ(obs::metrics().datapoint_count(), 0u);
  EXPECT_EQ(obs::metrics().counter_value("c", 0), 0.0);
}

TEST(Metrics, RecordsAndExportsAllKinds) {
  reset_obs();
  obs::metrics().enable("");
  obs::metrics().add("phase.t_cells.wall_ns", 0, 100.0);
  obs::metrics().add("phase.t_cells.wall_ns", 0, 50.0);
  obs::metrics().add("phase.t_cells.wall_ns", 1, 60.0);
  obs::metrics().set("gauge.x", 0, -2.5);
  obs::metrics().observe("pgas.rpc_batch", 0, 3.0);
  obs::metrics().observe("pgas.rpc_batch", 0, 7.0);
  obs::metrics().step_value("gpu.halo_bytes", 1, 0, 1024.0);
  obs::metrics().step_value("gpu.halo_bytes", 1, 1, 2048.0);

  EXPECT_EQ(obs::metrics().counter_value("phase.t_cells.wall_ns", 0), 150.0);
  EXPECT_EQ(obs::metrics().datapoint_count(), 8u);

  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(obs::metrics().to_json()).parse());
  EXPECT_EQ(root.obj.at("counters")
                .obj.at("phase.t_cells.wall_ns")
                .obj.at("1")
                .number,
            60.0);
  EXPECT_EQ(root.obj.at("gauges").obj.at("gauge.x").obj.at("0").number, -2.5);
  const auto& hist =
      root.obj.at("histograms").obj.at("pgas.rpc_batch").obj.at("0").obj;
  EXPECT_EQ(hist.at("count").number, 2.0);
  EXPECT_EQ(hist.at("sum").number, 10.0);
  EXPECT_EQ(hist.at("min").number, 3.0);
  EXPECT_EQ(hist.at("max").number, 7.0);
  const auto& series =
      root.obj.at("series").obj.at("gpu.halo_bytes").obj.at("1").arr;
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[1].arr[0].number, 1.0);
  EXPECT_EQ(series[1].arr[1].number, 2048.0);

  const std::string csv = obs::metrics().to_csv();
  EXPECT_NE(csv.find("kind,name,rank,step,value"), std::string::npos);
  EXPECT_NE(csv.find("series,gpu.halo_bytes,1,1,2048"), std::string::npos);
  reset_obs();
}

TEST(Metrics, HistogramQuantilesAreDeterministic) {
  // Quantiles come from fixed log-2 buckets, not from stored samples: the
  // same multiset of observations — in any order — must yield bit-identical
  // buckets, p50/p95/p99 and therefore bit-identical JSON.
  reset_obs();
  obs::metrics().enable("");
  for (int i = 100; i >= 1; --i) {  // 1..100, reversed insertion order
    obs::metrics().observe("h", 0, static_cast<double>(i));
  }
  const std::string json1 = obs::metrics().to_json();
  const std::string json2 = obs::metrics().to_json();
  EXPECT_EQ(json1, json2);

  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(json1).parse());
  const auto& h = root.obj.at("histograms").obj.at("h").obj.at("0").obj;
  EXPECT_EQ(h.at("count").number, 100.0);
  // 1..100 over base-2 buckets: rank 50 lands in bucket [32,64) -> upper
  // bound 64; ranks 95 and 99 land in [64,128) -> clamped to max = 100.
  EXPECT_EQ(h.at("p50").number, 64.0);
  EXPECT_EQ(h.at("p95").number, 100.0);
  EXPECT_EQ(h.at("p99").number, 100.0);
  const auto& buckets = h.at("buckets").obj;
  EXPECT_EQ(buckets.at("0").number, 1.0);    // {1}
  EXPECT_EQ(buckets.at("1").number, 2.0);    // {2,3}
  EXPECT_EQ(buckets.at("5").number, 32.0);   // {32..63}
  EXPECT_EQ(buckets.at("6").number, 37.0);   // {64..100}
  obs::metrics().disable();

  // Same observations in a different order: identical summary.
  obs::metrics().enable("");
  for (int i = 1; i <= 100; ++i) {
    obs::metrics().observe("h", 0, static_cast<double>(i));
  }
  EXPECT_EQ(obs::metrics().to_json(), json1);
  obs::metrics().disable();

  // Non-positive and non-finite values funnel into the underflow bucket;
  // their quantile is the tracked minimum.
  obs::HistSummary u{};
  u.min = std::numeric_limits<double>::infinity();
  u.max = -std::numeric_limits<double>::infinity();
  for (double v : {0.0, -5.0}) {
    ++u.count;
    u.sum += v;
    u.min = std::min(u.min, v);
    u.max = std::max(u.max, v);
    ++u.buckets[obs::HistSummary::bucket_of(v)];
  }
  EXPECT_EQ(u.buckets.count(obs::HistSummary::kUnderflowBucket), 1u);
  EXPECT_EQ(u.quantile(0.5), -5.0);
  reset_obs();
}

TEST(Metrics, GpuSnapshotDeterministicForFixedSeedAndRanks) {
  // Two identical runs must export bit-identical values for every metric
  // that is not a wall-clock measurement.  (Timing metrics — *.wall_ns,
  // pgas.barrier_wait_ns, pgas.rpc_batch — are structurally present but
  // their values are machine noise, so they are excluded.)
  reset_obs();
  auto capture = [] {
    obs::metrics().enable("");
    run_gpu_4ranks();
    const std::string json = obs::metrics().to_json();
    obs::metrics().disable();
    return JsonParser(json).parse();
  };
  const JsonValue a = capture();
  const JsonValue b = capture();

  const char* const deterministic[] = {"gpu.halo_bytes", "gpu.active_tiles",
                                       "gpu.tile_occupancy",
                                       "gpu.voxels_touched"};
  const auto& sa = a.obj.at("series").obj;
  const auto& sb = b.obj.at("series").obj;
  for (const char* name : deterministic) {
    ASSERT_TRUE(sa.contains(name)) << "missing series " << name;
    ASSERT_TRUE(sb.contains(name));
    EXPECT_EQ(sa.at(name), sb.at(name)) << "series " << name << " varies";
    // All four ranks reported the full run.
    ASSERT_EQ(sa.at(name).obj.size(), 4u);
    for (const auto& [rank, sv] : sa.at(name).obj) {
      EXPECT_EQ(sv.arr.size(), 16u) << name << " rank " << rank;
    }
  }
  // Wall-clock series exist (values intentionally not compared).
  EXPECT_TRUE(sa.contains("pgas.barrier_wait_ns"));
  EXPECT_TRUE(a.obj.at("counters").obj.contains("step.wall_ns"));
  EXPECT_TRUE(a.obj.at("counters").obj.contains("phase.halo.wall_ns"));
  // Tile churn gauges from the active-tile set.
  EXPECT_TRUE(a.obj.at("gauges").obj.contains("gpu.tile_activations"));
}

// ---- harness glue ----------------------------------------------------------

TEST(Harness, ConfigureObservabilityRejectsUnwritablePaths) {
  reset_obs();
  EXPECT_THROW(harness::configure_observability(
                   "/nonexistent-simcov-dir/trace.json", ""),
               Error);
  EXPECT_THROW(harness::configure_observability(
                   "", "/nonexistent-simcov-dir/metrics.csv"),
               Error);
  // Failed configuration must not leave a collector half-enabled.
  EXPECT_FALSE(obs::tracer().enabled());
  EXPECT_FALSE(obs::metrics().enabled());
}

TEST(Harness, FinishObservabilityIsSafeWhenDisabled) {
  reset_obs();
  EXPECT_NO_THROW(harness::finish_observability());
}

// ---- bench reports ---------------------------------------------------------

TEST(BenchReport, EmitsSchemaValidJsonWithConsistentCommMatrix) {
  reset_obs();
  obs::BenchReport rep("unit_test");
  rep.set_context("unit experiment", "paper cfg \"quoted\"", "our cfg");

  // Two ranks with asymmetric peer traffic, assembled the way Reporter does.
  std::vector<pgas::CommStats> by_rank(2);
  by_rank[0].puts = 3;
  by_rank[0].put_bytes = 300;
  by_rank[0].rpcs_sent = 2;
  by_rank[0].rpc_bytes = 20;
  by_rank[0].peers[1] = pgas::PeerStats{2, 20, 3, 300};
  by_rank[1].puts = 1;
  by_rank[1].put_bytes = 64;
  by_rank[1].peers[0] = pgas::PeerStats{0, 0, 1, 64};

  obs::BenchConfig cfg;
  cfg.label = "cfg a";
  cfg.backend = "gpu";
  cfg.ranks = 2;
  cfg.params = {{"dim_x", 48.0}, {"seed", 7.0}};
  cfg.measured_wall_s = 0.25;
  cfg.modeled_s = 1.5;
  cfg.measured_by_phase_s = {{"halo", 0.1}, {"t_cells", 0.15}};
  cfg.modeled_by_phase_s = {{"halo", 0.5}, {"t_cells", 1.0}};
  for (const auto& s : by_rank) cfg.comm_total += s;
  cfg.comm_matrix = obs::BenchReport::matrix_from(by_rank);
  rep.add_config(cfg);
  rep.add_shape_check("unit claim", true);
  rep.add_metric("answer", 42.0);

  // Deterministic serialization.
  const std::string json = rep.to_json();
  EXPECT_EQ(json, rep.to_json());

  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(json).parse());
  EXPECT_EQ(root.obj.at("schema").str, "simcov-bench/1");
  EXPECT_EQ(root.obj.at("bench").str, "unit_test");
  EXPECT_EQ(root.obj.at("paper_config").str, "paper cfg \"quoted\"");
  EXPECT_FALSE(root.obj.at("machine").obj.at("compiler").str.empty());

  const auto& c = root.obj.at("configs").arr.at(0).obj;
  EXPECT_EQ(c.at("label").str, "cfg a");
  EXPECT_EQ(c.at("ranks").number, 2.0);
  EXPECT_EQ(c.at("params").obj.at("dim_x").number, 48.0);
  EXPECT_EQ(c.at("measured_wall_s").number, 0.25);
  EXPECT_EQ(c.at("modeled_s").number, 1.5);

  // The comm matrix must sum exactly to the aggregate counters — the same
  // invariant tools/check_bench.py enforces on every report.
  const auto& comm = c.at("comm").obj;
  const auto& matrix = comm.at("matrix").arr;
  ASSERT_EQ(matrix.size(), 2u);
  EXPECT_EQ(comm.at("matrix_pairs").number, 2.0);
  EXPECT_EQ(comm.at("matrix_max_put_bytes").number, 300.0);
  double puts = 0, put_bytes = 0, rpcs = 0, rpc_bytes = 0;
  for (const JsonValue& e : matrix) {
    puts += e.obj.at("puts").number;
    put_bytes += e.obj.at("put_bytes").number;
    rpcs += e.obj.at("rpcs").number;
    rpc_bytes += e.obj.at("rpc_bytes").number;
  }
  EXPECT_EQ(puts, comm.at("puts").number);
  EXPECT_EQ(put_bytes, comm.at("put_bytes").number);
  EXPECT_EQ(rpcs, comm.at("rpcs_sent").number);
  EXPECT_EQ(rpc_bytes, comm.at("rpc_bytes").number);
  // Edges sorted by (src,dst).
  EXPECT_EQ(matrix.at(0).obj.at("src").number, 0.0);
  EXPECT_EQ(matrix.at(1).obj.at("src").number, 1.0);

  EXPECT_EQ(root.obj.at("shape_checks").arr.at(0).obj.at("claim").str,
            "unit claim");
  EXPECT_TRUE(root.obj.at("shape_checks").arr.at(0).obj.at("ok").boolean);
  EXPECT_EQ(root.obj.at("metrics").obj.at("answer").number, 42.0);

  // write() honours SIMCOV_BENCH_DIR and writes exactly to_json().
  ::setenv("SIMCOV_BENCH_DIR", ::testing::TempDir().c_str(), 1);
  const std::string path = rep.path();
  EXPECT_NE(path.find("BENCH_unit_test.json"), std::string::npos);
  rep.write();
  ::unsetenv("SIMCOV_BENCH_DIR");
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::ostringstream read_back;
  read_back << f.rdbuf();
  EXPECT_EQ(read_back.str(), json);
}

TEST(BenchReport, DriftRowsComputedFromPhaseCounters) {
  // drift_from sums the per-rank PhaseClock counters and compares shares
  // against the modeled per-phase costs.
  std::map<std::string, std::map<int, double>> counters;
  counters["phase.halo.wall_ns"] = {{0, 1e9}, {1, 1e9}};      // 2 s measured
  counters["phase.t_cells.wall_ns"] = {{0, 3e9}, {1, 3e9}};   // 6 s measured
  perfmodel::RunCost cost{};
  cost.by_phase[static_cast<int>(perfmodel::Phase::kHalo)] = 1.0;
  cost.by_phase[static_cast<int>(perfmodel::Phase::kTCells)] = 1.0;
  const auto rows = obs::BenchReport::drift_from(counters, cost);
  ASSERT_EQ(rows.size(), 2u);
  // Rows come back in canonical phase order: t_cells before halo.
  EXPECT_EQ(rows[0].phase, "t_cells");
  EXPECT_DOUBLE_EQ(rows[0].measured_s, 6.0);
  EXPECT_DOUBLE_EQ(rows[0].measured_share, 0.75);
  EXPECT_DOUBLE_EQ(rows[0].modeled_share, 0.5);
  EXPECT_DOUBLE_EQ(rows[0].divergence, 0.25);
  EXPECT_EQ(rows[1].phase, "halo");
  EXPECT_DOUBLE_EQ(rows[1].measured_s, 2.0);
  EXPECT_DOUBLE_EQ(rows[1].divergence, -0.25);
}

}  // namespace
}  // namespace simcov
