// Virtual GPU: kernel execution semantics (grid/block/thread indexing,
// shared-memory phases, atomics), the host/device access discipline, and
// event counting — the counters drive the performance model, so their
// exactness is load-bearing.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/gpusim.hpp"

namespace simcov::gpusim {
namespace {

TEST(GpuSim, ParallelForCoversEveryThreadOnce) {
  Device dev(0);
  const std::size_t n = 1000;
  DeviceBuffer<std::uint32_t> buf(dev, n, 0);
  dev.parallel_for({8, 128}, [&](ThreadCtx& t) {
    if (t.global_index() >= n) return;
    auto v = t.global(buf);
    v.write(t.global_index(), static_cast<std::uint32_t>(t.global_index()));
  });
  std::vector<std::uint32_t> host(n);
  buf.copy_to_host(host);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(host[i], i);
  EXPECT_EQ(dev.stats().kernel_launches, 1u);
  EXPECT_EQ(dev.stats().threads_executed, 8u * 128u);
  EXPECT_EQ(dev.stats().blocks_executed, 8u);
}

TEST(GpuSim, ThreadCtxIndexing) {
  Device dev(0);
  DeviceBuffer<std::uint32_t> blocks(dev, 64, 0);
  dev.parallel_for({4, 16}, [&](ThreadCtx& t) {
    EXPECT_EQ(t.global_index(),
              static_cast<std::uint64_t>(t.block_idx()) * t.block_dim() +
                  t.thread_idx());
    EXPECT_EQ(t.grid_size(), 64u);
    auto b = t.global(blocks);
    b.write(t.global_index(), t.block_idx());
  });
  std::vector<std::uint32_t> host(64);
  blocks.copy_to_host(host);
  EXPECT_EQ(host[0], 0u);
  EXPECT_EQ(host[17], 1u);
  EXPECT_EQ(host[63], 3u);
}

TEST(GpuSim, GlobalTrafficIsCounted) {
  Device dev(0);
  DeviceBuffer<float> buf(dev, 100, 1.0f);
  const auto before = dev.stats();
  dev.parallel_for({1, 100}, [&](ThreadCtx& t) {
    auto v = t.global(buf);
    const float x = v.read(t.global_index());
    v.write(t.global_index(), x * 2.0f);
  });
  const auto d = dev.stats().since(before);
  EXPECT_EQ(d.global_read_bytes, 100u * sizeof(float));
  EXPECT_EQ(d.global_write_bytes, 100u * sizeof(float));
  EXPECT_EQ(d.atomic_ops, 0u);
}

TEST(GpuSim, AtomicsReturnOldValueAndCount) {
  Device dev(0);
  DeviceBuffer<std::uint64_t> acc(dev, 1, 0);
  dev.parallel_for({2, 50}, [&](ThreadCtx& t) {
    auto v = t.global(acc);
    v.atomic_add(0, 1);
  });
  std::vector<std::uint64_t> host(1);
  acc.copy_to_host(host);
  EXPECT_EQ(host[0], 100u);
  EXPECT_EQ(dev.stats().atomic_ops, 100u);

  DeviceBuffer<std::uint64_t> mx(dev, 1, 5);
  dev.parallel_for({1, 1}, [&](ThreadCtx& t) {
    auto v = t.global(mx);
    EXPECT_EQ(v.atomic_max(0, 3), 5u);  // old value; no change
    EXPECT_EQ(v.atomic_max(0, 9), 5u);  // old value; updated
    EXPECT_EQ(v.read(0), 9u);
  });
}

TEST(GpuSim, SharedMemoryTreeReductionMatchesSerial) {
  Device dev(0);
  const std::size_t n = 4096;
  DeviceBuffer<float> data(dev, n);
  std::vector<float> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = static_cast<float>(i % 17) * 0.25f;
  data.copy_from_host(host);
  DeviceBuffer<double> out(dev, 1, 0.0);

  const std::uint32_t bd = 64, blocks = 8;
  dev.launch_blocks({blocks, bd}, [&](BlockCtx& blk) {
    auto sh = blk.shared<double>(bd);
    blk.for_each_thread([&](std::uint32_t tid) {
      auto v = blk.global(data);
      double acc = 0.0;
      for (std::size_t i = blk.block_idx() * bd + tid; i < n;
           i += static_cast<std::size_t>(blocks) * bd) {
        acc += static_cast<double>(v.read(i));
      }
      sh[tid] = acc;
    });
    for (std::uint32_t off = bd / 2; off > 0; off >>= 1) {
      blk.for_each_thread([&](std::uint32_t tid) {
        if (tid < off) sh[tid] += sh[tid + off];
      });
    }
    blk.for_each_thread([&](std::uint32_t tid) {
      if (tid == 0) blk.global(out).atomic_add(0, sh[0]);
    });
  });
  std::vector<double> result(1);
  out.copy_to_host(result);
  double expect = 0.0;
  for (float f : host) expect += static_cast<double>(f);
  EXPECT_NEAR(result[0], expect, 1e-9);
  // One atomic per block, not per element (the §3.3 contrast).
  EXPECT_EQ(dev.stats().atomic_ops, static_cast<std::uint64_t>(blocks));
}

TEST(GpuSim, SharedMemoryIsZeroInitializedPerBlock) {
  Device dev(0);
  DeviceBuffer<std::uint32_t> out(dev, 4, 77);
  dev.launch_blocks({4, 8}, [&](BlockCtx& blk) {
    auto sh = blk.shared<std::uint32_t>(8);
    blk.for_each_thread([&](std::uint32_t tid) { sh[tid] += tid; });
    blk.for_each_thread([&](std::uint32_t tid) {
      if (tid == 0) {
        std::uint32_t sum = 0;
        for (std::uint32_t i = 0; i < 8; ++i) sum += sh[i];
        blk.global(out).write(blk.block_idx(), sum);
      }
    });
  });
  std::vector<std::uint32_t> host(4);
  out.copy_to_host(host);
  for (auto v : host) EXPECT_EQ(v, 28u);  // 0+..+7, no carry-over
}

TEST(GpuSim, HostAccessDuringKernelRejected) {
  Device dev(0);
  DeviceBuffer<float> buf(dev, 8, 0.0f);
  std::vector<float> host(8);
  EXPECT_THROW(dev.parallel_for({1, 1},
                                [&](ThreadCtx&) { buf.copy_to_host(host); }),
               Error);
  // The device recovers: the guard releases the kernel flag.
  EXPECT_FALSE(dev.kernel_active());
  buf.copy_to_host(host);
}

TEST(GpuSim, NestedLaunchRejected) {
  Device dev(0);
  EXPECT_THROW(dev.parallel_for({1, 1},
                                [&](ThreadCtx&) {
                                  dev.parallel_for({1, 1}, [](ThreadCtx&) {});
                                }),
               Error);
  EXPECT_FALSE(dev.kernel_active());
}

TEST(GpuSim, ForeignDeviceBufferRejected) {
  Device a(0), b(1);
  DeviceBuffer<float> on_b(b, 4, 0.0f);
  EXPECT_THROW(a.parallel_for({1, 1},
                              [&](ThreadCtx& t) { (void)t.global(on_b); }),
               Error);
}

TEST(GpuSim, OutOfBoundsAccessRejected) {
  Device dev(0);
  DeviceBuffer<float> buf(dev, 4, 0.0f);
  EXPECT_THROW(dev.parallel_for({1, 1},
                                [&](ThreadCtx& t) {
                                  (void)t.global(buf).read(4);
                                }),
               Error);
}

TEST(GpuSim, LaunchConfigValidated) {
  Device dev(0);
  EXPECT_THROW(dev.parallel_for({0, 8}, [](ThreadCtx&) {}), Error);
  EXPECT_THROW(dev.parallel_for({1, 2048}, [](ThreadCtx&) {}), Error);
}

TEST(GpuSim, SharedMemoryCapacityEnforced) {
  Device dev(0);
  EXPECT_THROW(dev.launch_blocks({1, 1},
                                 [&](BlockCtx& blk) {
                                   blk.shared<double>(170 * 1024 / 8);
                                 }),
               Error);
}

TEST(GpuSim, CopyBoundsChecked) {
  Device dev(0);
  DeviceBuffer<float> buf(dev, 4, 0.0f);
  std::vector<float> five(5);
  EXPECT_THROW(buf.copy_from_host(five), Error);
  EXPECT_THROW(buf.copy_to_host(five), Error);
}

TEST(GpuSim, CopiesCountH2DAndD2H) {
  Device dev(0);
  DeviceBuffer<double> buf(dev, 10, 0.0);
  std::vector<double> host(10, 2.5);
  buf.copy_from_host(host);
  buf.copy_to_host(host);
  EXPECT_EQ(dev.stats().h2d_bytes, 80u);
  EXPECT_EQ(dev.stats().d2h_bytes, 80u);
}

TEST(GpuSim, FillSetsValuesAndCountsWrites) {
  Device dev(0);
  DeviceBuffer<std::uint32_t> buf(dev, 6, 1);
  buf.fill(9);
  std::vector<std::uint32_t> host(6);
  buf.copy_to_host(host);
  for (auto v : host) EXPECT_EQ(v, 9u);
  EXPECT_EQ(dev.stats().global_write_bytes, 24u);
}

TEST(GpuSim, AllocationTracking) {
  Device dev(0);
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  {
    DeviceBuffer<double> a(dev, 100);
    EXPECT_EQ(dev.allocated_bytes(), 800u);
    DeviceBuffer<double> b = std::move(a);
    EXPECT_EQ(dev.allocated_bytes(), 800u);  // move does not double-count
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

}  // namespace
}  // namespace simcov::gpusim
