// ODE baseline: integrator correctness (RK4 order), model invariants
// (cell-count conservation, non-negativity), and infection dynamics.

#include <gtest/gtest.h>

#include <cmath>

#include "core/ode_baseline.hpp"
#include "util/error.hpp"

namespace simcov::ode {
namespace {

TEST(OdeBaseline, Rk4MatchesAnalyticExponentialDecay) {
  // With only clearance active, V(t) = v0 * exp(-c t); RK4 at dt=0.5 must
  // match to ~1e-6 relative over 100 steps.
  OdeParams p;
  p.beta = 0;
  p.production = 0;
  p.effector_source = 0;
  p.clearance = 0.05;
  p.v0 = 100.0;
  const auto states = integrate(p, 100);
  for (int s : {10, 50, 100}) {
    const double expect = 100.0 * std::exp(-0.05 * s);
    EXPECT_NEAR(states[static_cast<std::size_t>(s)].v, expect,
                1e-6 * expect);
  }
}

TEST(OdeBaseline, Rk4FourthOrderConvergence) {
  // Halving dt should shrink the error by ~2^4 on a smooth problem.
  OdeParams p;
  p.beta = 0;
  p.production = 0;
  p.effector_source = 0;
  p.clearance = 0.2;
  p.v0 = 1.0;
  auto error_at = [&](double dt) {
    OdeState s;
    s.v = 1.0;
    double time = 0.0;
    while (time < 1.0 - 1e-12) {
      s = rk4_step(p, s, time, dt);
      time += dt;
    }
    return std::abs(s.v - std::exp(-0.2));
  };
  const double e1 = error_at(0.5);
  const double e2 = error_at(0.25);
  EXPECT_LT(e2, e1 / 8.0);  // comfortably better than 3rd order
}

TEST(OdeBaseline, CellCountConserved) {
  OdeParams p;
  const auto states = integrate(p, 500);
  const double n0 = states.front().total_cells();
  for (const auto& s : states) {
    ASSERT_NEAR(s.total_cells(), n0, 1e-6 * n0);
  }
}

TEST(OdeBaseline, StatesStayNonNegative) {
  OdeParams p;
  p.effector_source = 10.0;  // aggressive response
  p.kappa = 0.05;
  const auto states = integrate(p, 800);
  for (const auto& s : states) {
    ASSERT_GE(s.t, 0.0);
    ASSERT_GE(s.i1, 0.0);
    ASSERT_GE(s.i2, 0.0);
    ASSERT_GE(s.v, 0.0);
    ASSERT_GE(s.e, 0.0);
    ASSERT_GE(s.dead, 0.0);
  }
}

TEST(OdeBaseline, InfectionGrowsThenImmuneResponseActs) {
  OdeParams p;
  const auto states = integrate(p, 600);
  const auto at = [&](int s) { return states[static_cast<std::size_t>(s)]; };
  EXPECT_GT(at(200).v, at(50).v);           // growth
  EXPECT_EQ(at(100).e, 0.0);                // no effectors before the delay
  EXPECT_GT(at(200).e, 0.0);                // response after t = 120
  EXPECT_GT(at(600).dead, 0.0);
}

TEST(OdeBaseline, EarlyGrowthIsExponential) {
  // Equal windows in the pre-saturation regime have near-equal growth
  // factors — the well-mixed signature the spatial ABM lacks.
  OdeParams p;
  p.effector_delay = 1e9;
  const auto states = integrate(p, 400);
  auto v = [&](int s) { return states[static_cast<std::size_t>(s)].v; };
  // Windows inside the exponential regime (target-cell depletion bends the
  // curve after ~step 250 with these defaults).
  const double f1 = v(150) / v(100);
  const double f2 = v(200) / v(150);
  EXPECT_NEAR(f2 / f1, 1.0, 0.25);
}

TEST(OdeBaseline, ZeroStepsReturnsInitialCondition) {
  OdeParams p;
  const auto states = integrate(p, 0);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_DOUBLE_EQ(states[0].t, p.n_cells);
  EXPECT_DOUBLE_EQ(states[0].v, p.v0);
}

TEST(OdeBaseline, InvalidParamsRejected) {
  OdeParams p;
  p.dt = 0.3;  // does not divide a step
  EXPECT_THROW(p.validate(), Error);
  p = OdeParams{};
  p.n_cells = 0;
  EXPECT_THROW(p.validate(), Error);
  p = OdeParams{};
  p.beta = -1;
  EXPECT_THROW(p.validate(), Error);
  p = OdeParams{};
  EXPECT_THROW(integrate(p, -1), Error);
}

}  // namespace
}  // namespace simcov::ode
