// Domain decomposition: exact partition, owner consistency, neighbour
// symmetry — parameterized over rank counts and grid shapes.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/decomposition.hpp"

namespace simcov {
namespace {

using Param = std::tuple<int, int, int, Decomposition::Kind>;  // gx, gy, ranks

class DecompositionP : public ::testing::TestWithParam<Param> {};

TEST_P(DecompositionP, PartitionsTheGridExactly) {
  const auto [gx, gy, ranks, kind] = GetParam();
  const Grid grid(gx, gy, 1);
  const Decomposition dec(grid, ranks, kind);
  ASSERT_EQ(dec.num_ranks(), ranks);
  std::vector<int> owner_count(static_cast<std::size_t>(grid.num_voxels()), 0);
  std::int64_t total = 0;
  for (int r = 0; r < ranks; ++r) {
    const Subdomain& s = dec.sub(r);
    total += s.num_voxels();
    for (std::int32_t y = s.origin.y; y < s.origin.y + s.extent.y; ++y) {
      for (std::int32_t x = s.origin.x; x < s.origin.x + s.extent.x; ++x) {
        ++owner_count[static_cast<std::size_t>(grid.to_id({x, y, 0}))];
      }
    }
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(grid.num_voxels()));
  for (auto c : owner_count) ASSERT_EQ(c, 1);  // no overlap, no gap
}

TEST_P(DecompositionP, OwnerAgreesWithSubdomains) {
  const auto [gx, gy, ranks, kind] = GetParam();
  const Grid grid(gx, gy, 1);
  const Decomposition dec(grid, ranks, kind);
  for (std::int32_t y = 0; y < gy; ++y) {
    for (std::int32_t x = 0; x < gx; ++x) {
      const int o = dec.owner({x, y, 0});
      ASSERT_TRUE(dec.sub(o).contains({x, y, 0})) << x << "," << y;
    }
  }
}

TEST_P(DecompositionP, NeighbourLinksAreSymmetric) {
  const auto [gx, gy, ranks, kind] = GetParam();
  const Grid grid(gx, gy, 1);
  const Decomposition dec(grid, ranks, kind);
  const int mirror[kNumFaces] = {kFaceXPos, kFaceXNeg, kFaceYPos, kFaceYNeg};
  for (int r = 0; r < ranks; ++r) {
    for (int f = 0; f < kNumFaces; ++f) {
      const int nb = dec.sub(r).neighbour[static_cast<std::size_t>(f)];
      if (nb < 0) continue;
      EXPECT_EQ(dec.sub(nb).neighbour[static_cast<std::size_t>(mirror[f])], r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompositionP,
    ::testing::Values(
        Param{16, 16, 1, Decomposition::Kind::kBlock2D},
        Param{16, 16, 4, Decomposition::Kind::kBlock2D},
        Param{32, 16, 8, Decomposition::Kind::kBlock2D},
        Param{17, 13, 6, Decomposition::Kind::kBlock2D},  // uneven split
        Param{50, 34, 12, Decomposition::Kind::kBlock2D},
        Param{16, 16, 4, Decomposition::Kind::kLinear},
        Param{9, 31, 7, Decomposition::Kind::kLinear},
        Param{64, 64, 16, Decomposition::Kind::kBlock2D}));

TEST(Decomposition, LinearCutsRows) {
  const Grid grid(8, 12, 1);
  const Decomposition dec(grid, 3, Decomposition::Kind::kLinear);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(dec.sub(r).extent.x, 8);
    EXPECT_EQ(dec.sub(r).extent.y, 4);
    EXPECT_EQ(dec.sub(r).neighbour[kFaceXNeg], -1);
    EXPECT_EQ(dec.sub(r).neighbour[kFaceXPos], -1);
  }
  EXPECT_EQ(dec.sub(1).neighbour[kFaceYNeg], 0);
  EXPECT_EQ(dec.sub(1).neighbour[kFaceYPos], 2);
}

TEST(Decomposition, Block2DPrefersSquareBlocks) {
  const Grid grid(64, 64, 1);
  const Decomposition dec(grid, 4, Decomposition::Kind::kBlock2D);
  EXPECT_EQ(dec.rank_grid_x(), 2);
  EXPECT_EQ(dec.rank_grid_y(), 2);
}

TEST(Decomposition, UnevenSplitSpreadsRemainder) {
  EXPECT_EQ(split_start(10, 3, 0), 0);
  EXPECT_EQ(split_start(10, 3, 1), 4);  // first piece gets the remainder
  EXPECT_EQ(split_start(10, 3, 2), 7);
  EXPECT_EQ(split_start(10, 3, 3), 10);
}

TEST(Decomposition, InvalidConfigsThrow) {
  const Grid grid(8, 8, 1);
  EXPECT_THROW(Decomposition(grid, 0, Decomposition::Kind::kBlock2D), Error);
  EXPECT_THROW(Decomposition(grid, 9, Decomposition::Kind::kLinear), Error);
  EXPECT_THROW(Decomposition(grid, 16, 1), Error);  // rx exceeds the x axis
}

TEST(Decomposition, ExplicitRankGrid) {
  const Grid grid(12, 6, 1);
  const Decomposition dec(grid, 3, 2);
  EXPECT_EQ(dec.num_ranks(), 6);
  EXPECT_EQ(dec.sub(0).extent.x, 4);
  EXPECT_EQ(dec.sub(0).extent.y, 3);
}

TEST(Decomposition, OwnerRejectsOutsideCoords) {
  const Grid grid(8, 8, 1);
  const Decomposition dec(grid, 4, Decomposition::Kind::kBlock2D);
  EXPECT_THROW(dec.owner({8, 0, 0}), Error);
  EXPECT_THROW(dec.owner({0, -1, 0}), Error);
}

}  // namespace
}  // namespace simcov
