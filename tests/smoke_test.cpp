#include <gtest/gtest.h>
#include "core/reference_sim.hpp"
#include "core/foi.hpp"
#include "gpusim/gpusim.hpp"
#include "pgas/runtime.hpp"
TEST(Smoke, ReferenceRuns) {
  simcov::SimParams p = simcov::SimParams::bench_fast();
  p.dim_x = 32; p.dim_y = 32; p.num_steps = 10;
  simcov::Grid g(p.dim_x, p.dim_y, p.dim_z);
  simcov::ReferenceSim sim(p, simcov::foi_uniform_random(g, 2, p.seed));
  sim.run(10);
  EXPECT_EQ(sim.history().size(), 10u);
}
