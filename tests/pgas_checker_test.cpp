// PGAS discipline checker: every rule the runtime documents is enforced.
//
// Each negative test runs a deliberately violating SPMD program twice: with
// the checker off it completes silently (the race is invisible because
// "remote" memory is local — exactly why the checker exists), and with the
// checker on Runtime::run() throws an aggregated diagnostic naming the
// rule, ranks, channel and byte range.  Positive tests pin down that the
// blessed patterns — halo exchange, rpc_quiescence, collectives — and the
// full CPU/GPU simulations run violation-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/reference_sim.hpp"
#include "pgas/runtime.hpp"
#include "simcov_cpu/cpu_sim.hpp"
#include "simcov_gpu/gpu_sim.hpp"
#include "util/error.hpp"

namespace simcov::pgas {
namespace {

RuntimeOptions checked() { return RuntimeOptions{.check_discipline = true}; }

/// Scoped override (or removal, when value == nullptr) of an environment
/// variable, restoring the previous state on destruction.  The sanitizer
/// test presets export SIMCOV_PGAS_CHECK=1 for the whole suite, so tests
/// that rely on the checker being *off* must pin the variable explicitly.
struct EnvVarOverride {
  EnvVarOverride(const char* var, const char* value) : name(var) {
    const char* prev_raw = std::getenv(var);
    had_prev = prev_raw != nullptr;
    if (had_prev) prev = prev_raw;
    if (value != nullptr) {
      ::setenv(var, value, 1);
    } else {
      ::unsetenv(var);
    }
  }
  ~EnvVarOverride() {
    if (had_prev) {
      ::setenv(name, prev.c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  EnvVarOverride(const EnvVarOverride&) = delete;
  EnvVarOverride& operator=(const EnvVarOverride&) = delete;

  const char* name;
  std::string prev;
  bool had_prev = false;
};

/// Runs `body` under the checker and returns the diagnostic ("" if clean).
std::string checked_run_error(int ranks,
                              const std::function<void(Rank&)>& body) {
  Runtime rt(ranks, checked());
  try {
    rt.run(body);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

void spin_until(const std::atomic<bool>& flag) {
  while (!flag.load(std::memory_order_acquire)) std::this_thread::yield();
}

std::vector<std::byte> bytes(std::size_t n, int fill) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

// ---------------------------------------------------------------------------
// Rule (a): channel reads must be barrier-separated from incoming puts.
// ---------------------------------------------------------------------------

std::function<void(Rank&)> unbarriered_read_program(std::atomic<bool>& put_done) {
  return [&put_done](Rank& r) {
    r.register_channel(3, 32);
    r.barrier();
    if (r.id() == 0) {
      r.put(1, 3, bytes(8, 0xab), /*offset=*/8);
      put_done.store(true, std::memory_order_release);
    } else {
      spin_until(put_done);  // same epoch, deterministically after the put
      (void)r.channel(3);
    }
    r.barrier();
  };
}

TEST(PgasChecker, UnbarrieredReadIsSilentWithoutChecker) {
  EnvVarOverride off("SIMCOV_PGAS_CHECK", nullptr);
  std::atomic<bool> put_done{false};
  Runtime rt(2);
  EXPECT_NO_THROW(rt.run(unbarriered_read_program(put_done)));
}

TEST(PgasChecker, UnbarrieredReadCaught) {
  std::atomic<bool> put_done{false};
  const std::string what = checked_run_error(2, unbarriered_read_program(put_done));
  EXPECT_NE(what.find("unbarriered-read"), std::string::npos) << what;
  EXPECT_NE(what.find("channel 3"), std::string::npos) << what;
  EXPECT_NE(what.find("[8,16)"), std::string::npos) << what;
}

TEST(PgasChecker, ReadThenSameEpochPutCaught) {
  // The other temporal order: the owner reads first, the put lands later in
  // the same epoch.  Flagged at the put site.
  std::atomic<bool> read_done{false};
  const std::string what = checked_run_error(2, [&read_done](Rank& r) {
    r.register_channel(4, 16);
    r.barrier();
    if (r.id() == 1) {
      (void)r.channel(4);
      read_done.store(true, std::memory_order_release);
    } else {
      spin_until(read_done);
      r.put(1, 4, bytes(4, 0x11));
    }
    r.barrier();
  });
  EXPECT_NE(what.find("unbarriered-read"), std::string::npos) << what;
  EXPECT_NE(what.find("channel 4"), std::string::npos) << what;
}

TEST(PgasChecker, BarrierSeparatedExchangeIsClean) {
  // The blessed halo pattern: put, barrier, read, barrier — repeated.
  EXPECT_EQ("", checked_run_error(4, [](Rank& r) {
    r.register_channel(0, 64);
    r.barrier();
    for (int step = 0; step < 3; ++step) {
      const int nb = (r.id() + 1) % r.world_size();
      r.put(nb, 0, bytes(64, step));
      r.barrier();
      auto view = r.channel(0);
      EXPECT_EQ(static_cast<int>(view[0]), step);
      r.barrier();
    }
  }));
}

// ---------------------------------------------------------------------------
// Rule (b): no two ranks may put overlapping bytes in one epoch.
// ---------------------------------------------------------------------------

std::function<void(Rank&)> conflicting_puts_program() {
  return [](Rank& r) {
    r.register_channel(0, 64);
    r.barrier();
    if (r.id() == 1) r.put(0, 0, bytes(16, 0x01), /*offset=*/0);
    if (r.id() == 2) r.put(0, 0, bytes(16, 0x02), /*offset=*/8);
    r.barrier();
  };
}

TEST(PgasChecker, ConflictingPutsAreSilentWithoutChecker) {
  EnvVarOverride off("SIMCOV_PGAS_CHECK", nullptr);
  Runtime rt(3);
  EXPECT_NO_THROW(rt.run(conflicting_puts_program()));
}

TEST(PgasChecker, ConflictingPutsCaught) {
  const std::string what = checked_run_error(3, conflicting_puts_program());
  EXPECT_NE(what.find("conflicting-puts"), std::string::npos) << what;
  EXPECT_NE(what.find("ranks 1 and 2"), std::string::npos) << what;
  EXPECT_NE(what.find("channel 0"), std::string::npos) << what;
}

TEST(PgasChecker, DisjointPutsSameEpochAreClean) {
  EXPECT_EQ("", checked_run_error(3, [](Rank& r) {
    r.register_channel(0, 64);
    r.barrier();
    if (r.id() == 1) r.put(0, 0, bytes(16, 0x01), /*offset=*/0);
    if (r.id() == 2) r.put(0, 0, bytes(16, 0x02), /*offset=*/16);
    r.barrier();
    (void)r.channel(0);
    r.barrier();
  }));
}

TEST(PgasChecker, BarrierSeparatedOverwriteIsClean) {
  // Same bytes, different epochs: a legal ordered overwrite.
  EXPECT_EQ("", checked_run_error(3, [](Rank& r) {
    r.register_channel(0, 32);
    r.barrier();
    if (r.id() == 1) r.put(0, 0, bytes(32, 0x01));
    r.barrier();
    if (r.id() == 2) r.put(0, 0, bytes(32, 0x02));
    r.barrier();
  }));
}

// ---------------------------------------------------------------------------
// Rule (c): RPC queues must be drained before the job ends.
// ---------------------------------------------------------------------------

std::function<void(Rank&)> undrained_rpc_program() {
  return [](Rank& r) {
    if (r.id() == 0) r.rpc(1, [] {});
    r.barrier();  // delivered but never progressed
  };
}

TEST(PgasChecker, UndrainedRpcsAreSilentWithoutChecker) {
  EnvVarOverride off("SIMCOV_PGAS_CHECK", nullptr);
  Runtime rt(2);
  EXPECT_NO_THROW(rt.run(undrained_rpc_program()));
}

TEST(PgasChecker, UndrainedRpcsCaught) {
  const std::string what = checked_run_error(2, undrained_rpc_program());
  EXPECT_NE(what.find("undrained-rpcs"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
}

TEST(PgasChecker, RpcQuiescenceIsClean) {
  EXPECT_EQ("", checked_run_error(4, [](Rank& r) {
    static std::atomic<int> hits{0};
    for (int t = 0; t < r.world_size(); ++t) {
      if (t != r.id()) r.rpc(t, [] { hits.fetch_add(1); });
    }
    r.rpc_quiescence();
  }));
}

// ---------------------------------------------------------------------------
// Rule (d): collectives must match in sequence, operation and shape.
// ---------------------------------------------------------------------------

std::function<void(Rank&)> collective_op_mismatch_program() {
  return [](Rank& r) {
    if (r.id() == 0) {
      (void)r.allreduce_max(7);
    } else {
      (void)r.allreduce_xor(7);
    }
  };
}

TEST(PgasChecker, CollectiveOpMismatchIsSilentWithoutChecker) {
  EnvVarOverride off("SIMCOV_PGAS_CHECK", nullptr);
  Runtime rt(2);
  EXPECT_NO_THROW(rt.run(collective_op_mismatch_program()));
}

TEST(PgasChecker, CollectiveOpMismatchCaught) {
  const std::string what = checked_run_error(2, collective_op_mismatch_program());
  EXPECT_NE(what.find("collective-mismatch"), std::string::npos) << what;
  EXPECT_NE(what.find("allreduce_max"), std::string::npos) << what;
  EXPECT_NE(what.find("allreduce_xor"), std::string::npos) << what;
}

TEST(PgasChecker, CollectiveShapeMismatchCaught) {
  const std::string what = checked_run_error(2, [](Rank& r) {
    std::vector<double> mine(r.id() == 0 ? 2 : 3, 1.0);
    (void)r.allreduce_sum(std::span<const double>(mine.data(), mine.size()));
  });
  EXPECT_NE(what.find("collective-mismatch"), std::string::npos) << what;
  EXPECT_NE(what.find("len 2"), std::string::npos) << what;
  EXPECT_NE(what.find("len 3"), std::string::npos) << what;
}

TEST(PgasChecker, CollectiveAgainstPlainBarrierCaught) {
  // Rank 0 pairs a plain barrier with rank 1's collective: the ranks
  // disagree on how many collectives have run.  Barrier counts still line
  // up (3 each), so the program completes — silently wrong without the
  // checker.
  const std::string what = checked_run_error(2, [](Rank& r) {
    if (r.id() == 0) {
      r.barrier();
      (void)r.allreduce_sum(1.0);
    } else {
      (void)r.allreduce_sum(1.0);
      r.barrier();
    }
  });
  EXPECT_NE(what.find("collective-mismatch"), std::string::npos) << what;
}

TEST(PgasChecker, MatchedCollectivesAreClean) {
  EXPECT_EQ("", checked_run_error(3, [](Rank& r) {
    EXPECT_DOUBLE_EQ(r.allreduce_sum(1.0), 3.0);
    EXPECT_EQ(r.allreduce_max(static_cast<std::uint64_t>(r.id())), 2u);
    std::vector<double> v(5, static_cast<double>(r.id()));
    (void)r.allreduce_sum(std::span<const double>(v.data(), v.size()));
    (void)r.allreduce_xor(1ULL << r.id());
  }));
}

// ---------------------------------------------------------------------------
// Enablement and cost.
// ---------------------------------------------------------------------------

TEST(PgasChecker, OffByDefaultOnViaOptionsOrEnv) {
  EnvVarOverride base("SIMCOV_PGAS_CHECK", nullptr);
  EXPECT_FALSE(Runtime(2).checking_enabled());
  EXPECT_TRUE(Runtime(2, checked()).checking_enabled());
  {
    EnvVarOverride guard("SIMCOV_PGAS_CHECK", "1");
    EXPECT_TRUE(Runtime(2).checking_enabled());
  }
  {
    EnvVarOverride guard("SIMCOV_PGAS_CHECK", "0");
    EXPECT_FALSE(Runtime(2).checking_enabled());
  }
  EXPECT_FALSE(Runtime(2).checking_enabled());
}

TEST(PgasChecker, EnvEnabledCheckerCatchesViolations) {
  EnvVarOverride guard("SIMCOV_PGAS_CHECK", "1");
  Runtime rt(2);
  EXPECT_THROW(rt.run(undrained_rpc_program()), Error);
}

// ---------------------------------------------------------------------------
// The real workloads are violation-free: full CPU and GPU simulations under
// the checker reproduce the serial reference bit-for-bit without a single
// diagnostic.  This is the positive half of the acceptance criterion.
// ---------------------------------------------------------------------------

SimParams checker_sim_params() {
  SimParams p = SimParams::bench_fast();
  p.dim_x = 32;
  p.dim_y = 32;
  p.num_steps = 60;
  p.num_foi = 2;
  p.seed = 99;
  p.tcell_initial_delay = 15;
  p.tcell_generation_rate = 4.0;
  p.incubation_period = 8;
  p.tile_side = 8;
  p.tile_check_period = 4;
  return p;
}

TEST(PgasChecker, CpuAndGpuSimulationsRunCleanUnderChecker) {
  EnvVarOverride guard("SIMCOV_PGAS_CHECK", "1");
  const SimParams p = checker_sim_params();
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);

  ReferenceSim ref(p, foi);
  std::vector<std::uint64_t> ref_digests;
  for (std::int64_t s = 0; s < p.num_steps; ++s) {
    ref.step();
    ref_digests.push_back(ref.state_digest());
  }

  cpu::CpuSimOptions copt;
  copt.num_ranks = 4;
  copt.record_digests = true;
  cpu::CpuRunResult cres;
  ASSERT_NO_THROW(cres = cpu::run_cpu_sim(p, foi, copt));
  EXPECT_EQ(cres.digests, ref_digests);

  gpu::GpuSimOptions gopt;
  gopt.num_ranks = 4;
  gopt.record_digests = true;
  gpu::GpuRunResult gres;
  ASSERT_NO_THROW(gres = gpu::run_gpu_sim(p, foi, gopt));
  EXPECT_EQ(gres.digests, ref_digests);
}

}  // namespace
}  // namespace simcov::pgas
