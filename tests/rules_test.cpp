// The pure simulation rules: epithelial FSM, field updates (max principle),
// T cell intents, extravasation, vascular pool.  Property-style sweeps use
// TEST_P where the invariant must hold across a parameter range.

#include <gtest/gtest.h>

#include <cmath>

#include "core/params.hpp"
#include "core/rules.hpp"

namespace simcov::rules {
namespace {

SimParams params() { return SimParams::bench_fast(); }

// ---------------------------------------------------------------------------
// Epithelial FSM
// ---------------------------------------------------------------------------

TEST(EpiRules, HealthyStaysHealthyWithoutVirus) {
  const CounterRng rng(1);
  const SimParams p = params();
  for (std::uint64_t step = 0; step < 200; ++step) {
    const EpiUpdate u = update_epithelial(rng, step, 5, EpiState::kHealthy, 0,
                                          0.0f, p);
    ASSERT_EQ(u.state, EpiState::kHealthy);
  }
}

TEST(EpiRules, HealthyEventuallyIncubatesUnderVirus) {
  const CounterRng rng(1);
  SimParams p = params();
  p.infectivity = 0.5;
  int infected = 0;
  for (std::uint64_t step = 0; step < 200; ++step) {
    const EpiUpdate u = update_epithelial(rng, step, 5, EpiState::kHealthy, 0,
                                          1.0f, p);
    if (u.state == EpiState::kIncubating) {
      ++infected;
      EXPECT_GE(u.timer, 1u);
    }
  }
  EXPECT_NEAR(infected, 100, 25);  // ~Bernoulli(0.5) per step
}

TEST(EpiRules, IncubatingCountsDownThenExpresses) {
  const CounterRng rng(2);
  const SimParams p = params();
  EpiUpdate u = update_epithelial(rng, 0, 9, EpiState::kIncubating, 3, 0.0f, p);
  EXPECT_EQ(u.state, EpiState::kIncubating);
  EXPECT_EQ(u.timer, 2u);
  u = update_epithelial(rng, 1, 9, EpiState::kIncubating, 1, 0.0f, p);
  EXPECT_EQ(u.state, EpiState::kExpressing);
  EXPECT_GE(u.timer, 1u);
}

TEST(EpiRules, ExpressingAndApoptoticDie) {
  const CounterRng rng(2);
  const SimParams p = params();
  EXPECT_EQ(update_epithelial(rng, 0, 9, EpiState::kExpressing, 1, 0.0f, p).state,
            EpiState::kDead);
  EXPECT_EQ(update_epithelial(rng, 0, 9, EpiState::kApoptotic, 1, 0.0f, p).state,
            EpiState::kDead);
  EXPECT_EQ(update_epithelial(rng, 0, 9, EpiState::kApoptotic, 5, 0.0f, p).timer,
            4u);
}

TEST(EpiRules, TerminalStatesAreInert) {
  const CounterRng rng(2);
  const SimParams p = params();
  EXPECT_EQ(update_epithelial(rng, 0, 9, EpiState::kDead, 0, 1.0f, p).state,
            EpiState::kDead);
  EXPECT_EQ(update_epithelial(rng, 0, 9, EpiState::kEmpty, 0, 1.0f, p).state,
            EpiState::kEmpty);
}

TEST(EpiRules, ProductionFlags) {
  EXPECT_FALSE(produces_virus(EpiState::kHealthy));
  EXPECT_TRUE(produces_virus(EpiState::kIncubating));   // hidden producers
  EXPECT_TRUE(produces_virus(EpiState::kExpressing));
  EXPECT_TRUE(produces_virus(EpiState::kApoptotic));
  EXPECT_FALSE(produces_virus(EpiState::kDead));
  EXPECT_FALSE(produces_chem(EpiState::kIncubating));   // undetected
  EXPECT_TRUE(produces_chem(EpiState::kExpressing));
  EXPECT_TRUE(produces_chem(EpiState::kApoptotic));
}

TEST(EpiRules, SamplePeriodAtLeastOne) {
  const CounterRng rng(3);
  for (std::uint64_t v = 0; v < 500; ++v) {
    EXPECT_GE(sample_period(rng, 0, v, RngStream::kApoptosisPeriod, 0.1), 1u);
  }
}

// ---------------------------------------------------------------------------
// Fields
// ---------------------------------------------------------------------------

TEST(FieldRules, ProduceDecayClampsToUnit) {
  EXPECT_FLOAT_EQ(produce_decay(0.99f, true, 0.5, 0.0), 1.0f);
  EXPECT_FLOAT_EQ(produce_decay(0.5f, false, 0.5, 1.0), 0.0f);
  EXPECT_NEAR(produce_decay(0.8f, false, 0.0, 0.25), 0.6f, 1e-6f);
  EXPECT_NEAR(produce_decay(0.0f, true, 0.1, 0.5), 0.1f, 1e-6f);
}

TEST(FieldRules, DiffuseFloorsTinyValues) {
  EXPECT_FLOAT_EQ(diffuse(1e-6f, 0.0, 4, 0.5, 1e-5), 0.0f);
  EXPECT_GT(diffuse(1e-3f, 0.0, 4, 0.1, 1e-5), 0.0f);
}

TEST(FieldRules, DiffuseIsolatedVoxelUnchanged) {
  EXPECT_FLOAT_EQ(diffuse(0.5f, 0.0, 0, 0.7, 0.0), 0.5f);
}

/// Discrete maximum principle: the updated value is a convex combination of
/// the centre and neighbour mean, so it stays within [min, max] of inputs —
/// parameterized over diffusion coefficients.
class DiffuseMaxPrinciple : public ::testing::TestWithParam<double> {};

TEST_P(DiffuseMaxPrinciple, StaysWithinNeighbourhoodRange) {
  const double D = GetParam();
  const CounterRng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    float vals[5];
    float lo = 1.0f, hi = 0.0f;
    for (int i = 0; i < 5; ++i) {
      vals[i] = static_cast<float>(rng.uniform(
          static_cast<std::uint64_t>(trial), static_cast<std::uint64_t>(i),
          RngStream::kGeneric));
      lo = std::min(lo, vals[i]);
      hi = std::max(hi, vals[i]);
    }
    double sum = 0.0;
    for (int i = 1; i < 5; ++i) sum += static_cast<double>(vals[i]);
    const float out = diffuse(vals[0], sum, 4, D, 0.0);
    ASSERT_GE(out, lo - 1e-6f);
    ASSERT_LE(out, hi + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Coefficients, DiffuseMaxPrinciple,
                         ::testing::Values(0.0, 0.15, 0.5, 0.85, 1.0));

// ---------------------------------------------------------------------------
// T cell intents
// ---------------------------------------------------------------------------

NeighbourView make_view(std::initializer_list<EpiState> states) {
  NeighbourView nb;
  for (EpiState s : states) {
    nb.ids[static_cast<std::size_t>(nb.count)] =
        static_cast<VoxelId>(100 + nb.count);
    nb.epi[static_cast<std::size_t>(nb.count)] = s;
    ++nb.count;
  }
  return nb;
}

TEST(IntentRules, BindingPreferredOverMovement) {
  const CounterRng rng(5);
  const auto nb = make_view({EpiState::kHealthy, EpiState::kExpressing,
                             EpiState::kHealthy, EpiState::kHealthy});
  const Intent i = tcell_intent(rng, 0, 50, EpiState::kHealthy, nb);
  EXPECT_EQ(i.kind, IntentKind::kBind);
  EXPECT_EQ(i.target, 101u);  // the only expressing candidate
}

TEST(IntentRules, OwnVoxelIsFirstBindCandidate) {
  const CounterRng rng(5);
  const auto nb = make_view({EpiState::kHealthy, EpiState::kHealthy});
  const Intent i = tcell_intent(rng, 0, 50, EpiState::kExpressing, nb);
  EXPECT_EQ(i.kind, IntentKind::kBind);
  EXPECT_EQ(i.target, 50u);
}

TEST(IntentRules, IncubatingIsInvisible) {
  const CounterRng rng(5);
  const auto nb = make_view({EpiState::kIncubating, EpiState::kIncubating});
  const Intent i = tcell_intent(rng, 0, 50, EpiState::kIncubating, nb);
  EXPECT_EQ(i.kind, IntentKind::kMove);  // nothing detectable -> random walk
}

TEST(IntentRules, MovementAvoidsEmptyVoxels) {
  const CounterRng rng(5);
  const auto nb = make_view({EpiState::kEmpty, EpiState::kDead,
                             EpiState::kEmpty, EpiState::kEmpty});
  for (std::uint64_t step = 0; step < 50; ++step) {
    const Intent i = tcell_intent(rng, step, 50, EpiState::kHealthy, nb);
    ASSERT_EQ(i.kind, IntentKind::kMove);
    ASSERT_EQ(i.target, 101u);  // the only tissue neighbour (dead is tissue)
  }
}

TEST(IntentRules, NoTargetWhenFullySurroundedByAirways) {
  const CounterRng rng(5);
  const auto nb = make_view({EpiState::kEmpty, EpiState::kEmpty});
  const Intent i = tcell_intent(rng, 0, 50, EpiState::kHealthy, nb);
  EXPECT_EQ(i.kind, IntentKind::kNone);
}

TEST(IntentRules, MovementChoicesRoughlyUniform) {
  const CounterRng rng(5);
  const auto nb = make_view({EpiState::kHealthy, EpiState::kHealthy,
                             EpiState::kHealthy, EpiState::kHealthy});
  int counts[4] = {0, 0, 0, 0};
  const int n = 8000;
  for (int step = 0; step < n; ++step) {
    const Intent i =
        tcell_intent(rng, static_cast<std::uint64_t>(step), 50,
                     EpiState::kHealthy, nb);
    ++counts[i.target - 100];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 20);
}

TEST(IntentRules, BidMatchesMakeBidContract) {
  const CounterRng rng(5);
  const auto nb = make_view({EpiState::kHealthy});
  const Intent i = tcell_intent(rng, 7, 42, EpiState::kHealthy, nb);
  EXPECT_EQ(i.bid, make_bid(rng, 7, 42, RngStream::kTCellBid));
  EXPECT_EQ(bid_source(i.bid), 42u);
}

// ---------------------------------------------------------------------------
// Extravasation and the vascular pool
// ---------------------------------------------------------------------------

TEST(ExtravasationRules, AttemptCountFloorsAndCaps) {
  EXPECT_EQ(num_extravasation_attempts(0.0, 100), 0u);
  EXPECT_EQ(num_extravasation_attempts(-3.0, 100), 0u);
  EXPECT_EQ(num_extravasation_attempts(5.9, 100), 5u);
  EXPECT_EQ(num_extravasation_attempts(500.0, 100), 100u);
}

TEST(ExtravasationRules, AttemptVoxelInRange) {
  const CounterRng rng(9);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_LT(attempt_voxel(rng, 3, i, 77), 77u);
  }
}

TEST(ExtravasationRules, AcceptanceProportionalToSignal) {
  const CounterRng rng(9);
  int lo = 0, hi = 0;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    lo += attempt_accepted(rng, 1, i, 0.1f);
    hi += attempt_accepted(rng, 2, i, 0.9f);
  }
  EXPECT_NEAR(lo, 2000, 300);
  EXPECT_NEAR(hi, 18000, 300);
  EXPECT_FALSE(attempt_accepted(rng, 1, 0, 0.0f));  // zero signal never
}

TEST(PoolRules, ProductionStartsAfterDelay) {
  SimParams p = params();
  p.tcell_initial_delay = 10;
  p.tcell_generation_rate = 4.0;
  EXPECT_DOUBLE_EQ(pool_after_step(0.0, 9, p, 0),
                   0.0);  // before the delay: nothing
  EXPECT_GT(pool_after_step(0.0, 10, p, 0), 0.0);
}

TEST(PoolRules, DecayAndRemovalApply) {
  SimParams p = params();
  p.tcell_initial_delay = 1000000;  // no production in this test
  p.tcell_vascular_period = 2;      // halves each step
  EXPECT_DOUBLE_EQ(pool_after_step(10.0, 0, p, 0), 5.0);
  EXPECT_DOUBLE_EQ(pool_after_step(10.0, 0, p, 3), 2.0);
  EXPECT_DOUBLE_EQ(pool_after_step(1.0, 0, p, 5), 0.0);  // clamped at zero
}

TEST(Digest, SensitiveToEveryField) {
  const auto base = voxel_digest(1, EpiState::kHealthy, 0, 0, 0, 0, 0.f, 0.f);
  EXPECT_NE(base, voxel_digest(2, EpiState::kHealthy, 0, 0, 0, 0, 0.f, 0.f));
  EXPECT_NE(base, voxel_digest(1, EpiState::kDead, 0, 0, 0, 0, 0.f, 0.f));
  EXPECT_NE(base, voxel_digest(1, EpiState::kHealthy, 1, 0, 0, 0, 0.f, 0.f));
  EXPECT_NE(base, voxel_digest(1, EpiState::kHealthy, 0, 1, 0, 0, 0.f, 0.f));
  EXPECT_NE(base, voxel_digest(1, EpiState::kHealthy, 0, 0, 9, 0, 0.f, 0.f));
  EXPECT_NE(base, voxel_digest(1, EpiState::kHealthy, 0, 0, 0, 2, 0.f, 0.f));
  EXPECT_NE(base, voxel_digest(1, EpiState::kHealthy, 0, 0, 0, 0, 0.5f, 0.f));
  EXPECT_NE(base, voxel_digest(1, EpiState::kHealthy, 0, 0, 0, 0, 0.f, 0.5f));
}

}  // namespace
}  // namespace simcov::rules
