// Statistics utilities, FOI generators, and parameter validation.

#include <gtest/gtest.h>

#include <set>

#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/params.hpp"
#include "core/stats.hpp"
#include "util/config.hpp"

namespace simcov {
namespace {

// ---------------------------------------------------------------------------
// StepStats / series utilities
// ---------------------------------------------------------------------------

TEST(Stats, FlattenUnflattenRoundTrip) {
  StepStats s;
  s.virus_total = 12.5;
  s.chem_total = 3.25;
  s.epi_counts = {1, 2, 3, 4, 5, 6};
  s.tcells_tissue = 42;
  s.extravasated = 7;
  const StepStats r = StepStats::unflatten(s.flatten());
  EXPECT_DOUBLE_EQ(r.virus_total, 12.5);
  EXPECT_DOUBLE_EQ(r.chem_total, 3.25);
  EXPECT_EQ(r.epi_counts, s.epi_counts);
  EXPECT_EQ(r.tcells_tissue, 42u);
  EXPECT_EQ(r.extravasated, 7u);
}

TEST(Stats, NamedAccessors) {
  StepStats s;
  s.epi_counts = {10, 20, 30, 40, 50, 60};
  EXPECT_EQ(s.healthy(), 20u);
  EXPECT_EQ(s.incubating(), 30u);
  EXPECT_EQ(s.expressing(), 40u);
  EXPECT_EQ(s.apoptotic(), 50u);
  EXPECT_EQ(s.dead(), 60u);
}

TEST(Stats, PeakAndAgreement) {
  EXPECT_DOUBLE_EQ(peak({1.0, 5.0, 3.0}), 5.0);
  EXPECT_DOUBLE_EQ(peak({}), 0.0);
  EXPECT_DOUBLE_EQ(percent_agreement(100.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percent_agreement(0.0, 0.0), 100.0);
  EXPECT_NEAR(percent_agreement(99.0, 100.0), 99.0, 1e-9);
  EXPECT_DOUBLE_EQ(percent_agreement(0.0, 50.0), 0.0);
}

TEST(Stats, MeanStd) {
  const MeanStd ms = mean_std({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_NEAR(ms.std, 2.138, 0.001);  // sample std
  EXPECT_DOUBLE_EQ(mean_std({}).mean, 0.0);
  EXPECT_DOUBLE_EQ(mean_std({3.0}).std, 0.0);
}

TEST(Stats, Envelope) {
  const Envelope e = envelope({{1.0, 4.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(e.min[0], 1.0);
  EXPECT_DOUBLE_EQ(e.max[0], 3.0);
  EXPECT_DOUBLE_EQ(e.mean[1], 3.0);
  EXPECT_THROW(envelope({{1.0}, {1.0, 2.0}}), Error);
  EXPECT_THROW(envelope({}), Error);
}

// ---------------------------------------------------------------------------
// FOI generators
// ---------------------------------------------------------------------------

TEST(Foi, UniformRandomDistinctAndDeterministic) {
  const Grid g(64, 64, 1);
  const auto a = foi_uniform_random(g, 50, 7);
  const auto b = foi_uniform_random(g, 50, 7);
  EXPECT_EQ(a, b);
  const std::set<VoxelId> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 50u);
  for (VoxelId v : a) EXPECT_LT(v, g.num_voxels());
  EXPECT_NE(foi_uniform_random(g, 50, 8), a);
}

TEST(Foi, UniformRandomFullGrid) {
  const Grid g(4, 4, 1);
  const auto all = foi_uniform_random(g, 16, 3);
  EXPECT_EQ(all.size(), 16u);
  EXPECT_THROW(foi_uniform_random(g, 17, 3), Error);
}

TEST(Foi, CtLesionsFormBlobs) {
  const Grid g(128, 128, 1);
  const auto lesions = foi_ct_lesions(g, 5, 6.0, 11);
  EXPECT_GT(lesions.size(), 5u * 20u);  // discs, not points
  const std::set<VoxelId> unique(lesions.begin(), lesions.end());
  EXPECT_EQ(unique.size(), lesions.size());  // deduplicated
  for (VoxelId v : lesions) EXPECT_LT(v, g.num_voxels());
  EXPECT_EQ(foi_ct_lesions(g, 5, 6.0, 11), lesions);  // deterministic
}

TEST(Foi, LatticeIsSpreadAndUnique) {
  const Grid g(100, 100, 1);
  const auto pts = foi_lattice(g, 9);
  EXPECT_EQ(pts.size(), 9u);
  const std::set<VoxelId> unique(pts.begin(), pts.end());
  EXPECT_EQ(unique.size(), 9u);
  EXPECT_TRUE(foi_lattice(g, 0).empty());
}

// ---------------------------------------------------------------------------
// SimParams
// ---------------------------------------------------------------------------

TEST(Params, DefaultsValidate) {
  SimParams::covid_default().validate();
  SimParams::bench_fast().validate();
}

TEST(Params, ApplyOverrides) {
  SimParams p = SimParams::bench_fast();
  p.apply(Config::from_string("dim_x = 99\nvirus_decay = 0.5\nseed = 3\n"));
  EXPECT_EQ(p.dim_x, 99);
  EXPECT_DOUBLE_EQ(p.virus_decay, 0.5);
  EXPECT_EQ(p.seed, 3u);
}

TEST(Params, UnknownKeyRejected) {
  SimParams p = SimParams::bench_fast();
  EXPECT_THROW(p.apply(Config::from_string("not_a_param = 1\n")), Error);
}

TEST(Params, ValidationCatchesBadValues) {
  auto broken = [](auto mutate) {
    SimParams p = SimParams::bench_fast();
    mutate(p);
    return p;
  };
  EXPECT_THROW(broken([](SimParams& p) { p.dim_x = 0; }).validate(), Error);
  EXPECT_THROW(broken([](SimParams& p) { p.virus_diffusion = 1.5; }).validate(),
               Error);
  EXPECT_THROW(broken([](SimParams& p) { p.num_foi = -1; }).validate(), Error);
  EXPECT_THROW(
      broken([](SimParams& p) { p.tile_check_period = p.tile_side + 1; })
          .validate(),
      Error);
  EXPECT_THROW(broken([](SimParams& p) { p.block_dim = 4096; }).validate(),
               Error);
  EXPECT_THROW(broken([](SimParams& p) { p.tcell_binding_period = 0; })
                   .validate(),
               Error);
}

TEST(Params, SummaryMentionsGeometry) {
  SimParams p = SimParams::bench_fast();
  p.dim_x = 77;
  EXPECT_NE(p.summary().find("77x"), std::string::npos);
}

}  // namespace
}  // namespace simcov
