// Config parsing and table rendering.

#include <gtest/gtest.h>

#include "util/config.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace simcov {
namespace {

TEST(Config, ParsesKeyValueLines) {
  const Config c = Config::from_string(
      "a = 1\n"
      "# comment line\n"
      "b = hello world  # trailing comment\n"
      "\n"
      "c=3.5\n");
  EXPECT_EQ(c.get_int("a"), 1);
  EXPECT_EQ(c.get_string("b"), "hello world");
  EXPECT_DOUBLE_EQ(c.get_double("c"), 3.5);
}

TEST(Config, LaterKeysOverride) {
  const Config c = Config::from_string("x = 1\nx = 2\n");
  EXPECT_EQ(c.get_int("x"), 2);
}

TEST(Config, RejectsMalformedLines) {
  EXPECT_THROW(Config::from_string("just a line without equals\n"), Error);
  EXPECT_THROW(Config::from_string("= value\n"), Error);
}

TEST(Config, TypeValidation) {
  const Config c = Config::from_string("n = 12x\nf = 1.5.2\nb = maybe\n");
  EXPECT_THROW(c.get_int("n"), Error);
  EXPECT_THROW(c.get_double("f"), Error);
  EXPECT_THROW(c.get_bool("b"), Error);
}

TEST(Config, Booleans) {
  const Config c =
      Config::from_string("a = true\nb = 0\nc = YES\nd = off\n");
  EXPECT_TRUE(c.get_bool("a"));
  EXPECT_FALSE(c.get_bool("b"));
  EXPECT_TRUE(c.get_bool("c"));
  EXPECT_FALSE(c.get_bool("d"));
}

TEST(Config, DefaultsAndRequired) {
  const Config c = Config::from_string("x = 5\n");
  EXPECT_EQ(c.get_int("x", 9), 5);
  EXPECT_EQ(c.get_int("missing", 9), 9);
  EXPECT_THROW(c.get_int("missing"), Error);
}

TEST(Config, FromArgs) {
  const char* argv[] = {"k1=v1", "k2=42"};
  const Config c = Config::from_args(2, argv);
  EXPECT_EQ(c.get_string("k1"), "v1");
  EXPECT_EQ(c.get_int("k2"), 42);
  const char* bad[] = {"notkeyvalue"};
  EXPECT_THROW(Config::from_args(1, bad), Error);
}

TEST(Config, MergeOtherWins) {
  Config a = Config::from_string("x = 1\ny = 2\n");
  const Config b = Config::from_string("y = 3\nz = 4\n");
  a.merge(b);
  EXPECT_EQ(a.get_int("x"), 1);
  EXPECT_EQ(a.get_int("y"), 3);
  EXPECT_EQ(a.get_int("z"), 4);
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(Config::from_file("/nonexistent/simcov.cfg"), Error);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, RowArityChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, CsvQuoting) {
  TextTable t({"x"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_resources(4, 128), "{4,128}");
}

}  // namespace
}  // namespace simcov
