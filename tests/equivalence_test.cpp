// Cross-backend equivalence: the serial reference, the CPU-parallel
// baseline, and the virtual-GPU implementation must produce bit-identical
// simulation state at every step for any decomposition, rank count, tile
// size, and optimization variant.  This is the strongest form of the
// paper's correctness evaluation (§4.1) — their Fig. 5 / Table 2 compare
// statistically; the counter-based RNG design makes exact comparison
// possible here.

#include <gtest/gtest.h>

#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/reference_sim.hpp"
#include "simcov_cpu/cpu_sim.hpp"
#include "simcov_gpu/gpu_sim.hpp"

namespace simcov {
namespace {

SimParams small_params() {
  SimParams p = SimParams::bench_fast();
  p.dim_x = 48;
  p.dim_y = 48;
  p.num_steps = 120;
  p.num_foi = 3;
  p.seed = 1234;
  // Aggressive dynamics so T cells appear and compete within 120 steps.
  p.tcell_initial_delay = 20;
  p.tcell_generation_rate = 6.0;
  p.incubation_period = 8;
  p.expressing_period = 40;
  p.apoptosis_period = 12;
  p.virus_diffusion = 0.4;
  p.infectivity = 0.06;
  p.chem_production = 0.4;
  p.chem_diffusion = 0.8;
  p.tile_side = 8;
  p.tile_check_period = 4;
  return p;
}

std::vector<std::uint64_t> reference_digests(const SimParams& p) {
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim ref(p, foi_uniform_random(grid, p.num_foi, p.seed));
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(p.num_steps));
  for (std::int64_t s = 0; s < p.num_steps; ++s) {
    ref.step();
    out.push_back(ref.state_digest());
  }
  return out;
}

int first_divergence(const std::vector<std::uint64_t>& a,
                     const std::vector<std::uint64_t>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return static_cast<int>(i);
  }
  return -1;
}

TEST(Equivalence, CpuMatchesReferenceAcrossRankCounts) {
  const SimParams p = small_params();
  const auto ref = reference_digests(p);
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);
  for (int ranks : {1, 2, 4, 6}) {
    cpu::CpuSimOptions opt;
    opt.num_ranks = ranks;
    opt.record_digests = true;
    const auto r = cpu::run_cpu_sim(p, foi, opt);
    ASSERT_EQ(r.digests.size(), ref.size()) << "ranks=" << ranks;
    EXPECT_EQ(first_divergence(ref, r.digests), -1) << "ranks=" << ranks;
  }
}

TEST(Equivalence, CpuLinearDecompositionMatches) {
  const SimParams p = small_params();
  const auto ref = reference_digests(p);
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);
  cpu::CpuSimOptions opt;
  opt.num_ranks = 4;
  opt.decomp = Decomposition::Kind::kLinear;
  opt.record_digests = true;
  const auto r = cpu::run_cpu_sim(p, foi, opt);
  EXPECT_EQ(first_divergence(ref, r.digests), -1);
}

TEST(Equivalence, GpuMatchesReferenceAllVariants) {
  const SimParams p = small_params();
  const auto ref = reference_digests(p);
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);
  for (const auto& variant :
       {gpu::GpuVariant::unoptimized(), gpu::GpuVariant::fast_reduction_only(),
        gpu::GpuVariant::memory_tiling_only(), gpu::GpuVariant::combined()}) {
    gpu::GpuSimOptions opt;
    opt.num_ranks = 4;
    opt.variant = variant;
    opt.record_digests = true;
    const auto r = gpu::run_gpu_sim(p, foi, opt);
    ASSERT_EQ(r.digests.size(), ref.size()) << variant.name();
    EXPECT_EQ(first_divergence(ref, r.digests), -1) << variant.name();
  }
}

TEST(Equivalence, GpuMatchesReferenceAcrossRankCounts) {
  const SimParams p = small_params();
  const auto ref = reference_digests(p);
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);
  for (int ranks : {1, 2, 4, 9}) {
    gpu::GpuSimOptions opt;
    opt.num_ranks = ranks;
    opt.record_digests = true;
    const auto r = gpu::run_gpu_sim(p, foi, opt);
    EXPECT_EQ(first_divergence(ref, r.digests), -1) << "ranks=" << ranks;
  }
}

/// Tile size x check period sweep: the §3.2 activation policy must be
/// invisible to simulation semantics for every legal combination.
using TileParam = std::tuple<int, int>;  // tile_side, check_period

class TileSweepEquivalence : public ::testing::TestWithParam<TileParam> {};

TEST_P(TileSweepEquivalence, GpuMatchesReference) {
  const auto [tile, period] = GetParam();
  SimParams p = small_params();
  p.num_steps = 80;
  p.tile_side = tile;
  p.tile_check_period = period;
  const auto ref = reference_digests(p);
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);
  gpu::GpuSimOptions opt;
  opt.num_ranks = 4;
  opt.record_digests = true;
  const auto r = gpu::run_gpu_sim(p, foi, opt);
  EXPECT_EQ(first_divergence(ref, r.digests), -1)
      << "tile=" << tile << " period=" << period;
}

INSTANTIATE_TEST_SUITE_P(TilePolicies, TileSweepEquivalence,
                         ::testing::Values(TileParam{2, 1}, TileParam{2, 2},
                                           TileParam{4, 2}, TileParam{4, 4},
                                           TileParam{8, 1}, TileParam{8, 8},
                                           TileParam{16, 16},
                                           TileParam{16, 5}));

TEST(Equivalence, UnevenGridAndRankCounts) {
  SimParams p = small_params();
  p.dim_x = 50;   // not divisible by tiles or rank grids
  p.dim_y = 34;
  p.num_steps = 80;
  const auto ref = reference_digests(p);
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);
  for (int ranks : {3, 5, 6}) {
    cpu::CpuSimOptions copt;
    copt.num_ranks = ranks;
    copt.record_digests = true;
    EXPECT_EQ(first_divergence(ref, cpu::run_cpu_sim(p, foi, copt).digests),
              -1)
        << "cpu ranks=" << ranks;
    gpu::GpuSimOptions gopt;
    gopt.num_ranks = ranks;
    gopt.record_digests = true;
    EXPECT_EQ(first_divergence(ref, gpu::run_gpu_sim(p, foi, gopt).digests),
              -1)
        << "gpu ranks=" << ranks;
  }
}

TEST(Equivalence, WithAirwayStructure) {
  SimParams p = small_params();
  p.num_steps = 100;
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  // A branching-airway-like cross of empty voxels.
  std::vector<VoxelId> empties;
  for (std::int32_t i = 0; i < 48; ++i) {
    empties.push_back(grid.to_id({24, i, 0}));
    empties.push_back(grid.to_id({i, 24, 0}));
  }
  std::vector<VoxelId> foi = {grid.to_id({10, 10, 0}),
                              grid.to_id({40, 40, 0})};
  ReferenceSim ref(p, foi, empties);
  std::vector<std::uint64_t> ref_digests;
  for (std::int64_t s = 0; s < p.num_steps; ++s) {
    ref.step();
    ref_digests.push_back(ref.state_digest());
  }
  cpu::CpuSimOptions copt;
  copt.num_ranks = 4;
  copt.record_digests = true;
  EXPECT_EQ(first_divergence(ref_digests,
                             cpu::run_cpu_sim(p, foi, copt, empties).digests),
            -1);
  gpu::GpuSimOptions gopt;
  gopt.num_ranks = 4;
  gopt.record_digests = true;
  EXPECT_EQ(first_divergence(ref_digests,
                             gpu::run_gpu_sim(p, foi, gopt, empties).digests),
            -1);
}

TEST(Equivalence, StressManyTCellsCrossBoundaries) {
  // Saturate the domain with T cells so conflicts (including cross-rank and
  // three-rank-corner competitions) are frequent, then require exact
  // agreement AND that the scenario actually exercised what it claims.
  SimParams p = small_params();
  p.num_steps = 150;
  p.num_foi = 12;
  p.tcell_initial_delay = 5;
  p.tcell_generation_rate = 40.0;
  p.chem_production = 0.8;
  p.chem_diffusion = 1.0;
  const auto ref_digests = reference_digests(p);
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);

  ReferenceSim ref(p, foi);
  ref.run(p.num_steps);
  ASSERT_GT(ref.history().back().tcells_tissue, 200u)
      << "stress config produced too few T cells to be a stress test";
  ASSERT_GT(ref.history().back().apoptotic() + ref.history().back().dead(),
            50u);

  cpu::CpuSimOptions copt;
  copt.num_ranks = 9;  // 3x3 rank grid: four interior corners
  copt.record_digests = true;
  const auto c = cpu::run_cpu_sim(p, foi, copt);
  EXPECT_EQ(first_divergence(ref_digests, c.digests), -1);
  EXPECT_GT(c.total_rpcs, 100u);  // boundary competition really happened

  gpu::GpuSimOptions gopt;
  gopt.num_ranks = 9;
  gopt.record_digests = true;
  const auto g = gpu::run_gpu_sim(p, foi, gopt);
  EXPECT_EQ(first_divergence(ref_digests, g.digests), -1);
}

/// Seed sweep: equivalence must hold for arbitrary stochastic trajectories,
/// not just the default seed's.
class SeedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedEquivalence, AllBackendsMatchReference) {
  SimParams p = small_params();
  p.seed = GetParam();
  p.num_steps = 90;
  const auto ref = reference_digests(p);
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);
  cpu::CpuSimOptions copt;
  copt.num_ranks = 4;
  copt.record_digests = true;
  EXPECT_EQ(first_divergence(ref, cpu::run_cpu_sim(p, foi, copt).digests), -1);
  gpu::GpuSimOptions gopt;
  gopt.num_ranks = 4;
  gopt.record_digests = true;
  EXPECT_EQ(first_divergence(ref, gpu::run_gpu_sim(p, foi, gopt).digests), -1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedEquivalence,
                         ::testing::Values(1ULL, 7ULL, 99ULL, 2024ULL,
                                           0xdeadbeefULL));

TEST(Equivalence, CpuAndGpuAgreeWithEachOtherOnLongRun) {
  SimParams p = small_params();
  p.num_steps = 220;
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);
  cpu::CpuSimOptions copt;
  copt.num_ranks = 6;
  copt.record_digests = true;
  gpu::GpuSimOptions gopt;
  gopt.num_ranks = 6;
  gopt.record_digests = true;
  const auto c = cpu::run_cpu_sim(p, foi, copt);
  const auto g = gpu::run_gpu_sim(p, foi, gopt);
  EXPECT_EQ(first_divergence(c.digests, g.digests), -1);
}

}  // namespace
}  // namespace simcov
