// Active-tile tracking policy (§3.2): border tiles always active, one-tile
// buffer ring, and the safety property that justifies periodic checking —
// activity moving at most one voxel per step cannot reach an inactive tile
// between sweeps when the check period is at most one tile side.

#include <gtest/gtest.h>

#include <vector>

#include "simcov_gpu/layout.hpp"
#include "simcov_gpu/tiles.hpp"

namespace simcov::gpu {
namespace {

TEST(Tiles, DisabledTilingKeepsEverythingActive) {
  const TiledLayout lay(32, 32, 8);
  ActiveTileSet tiles(lay, /*tiling_enabled=*/false);
  EXPECT_EQ(tiles.active_count(), 16u);
  std::vector<std::uint8_t> raw(16, 0);  // no activity anywhere
  tiles.update_from_sweep(raw);
  EXPECT_EQ(tiles.active_count(), 16u);  // still everything
}

TEST(Tiles, BorderTilesAlwaysActive) {
  const TiledLayout lay(40, 40, 8);  // 5x5 tiles
  ActiveTileSet tiles(lay, true);
  std::vector<std::uint8_t> raw(25, 0);
  tiles.update_from_sweep(raw);
  // Only the centre 3x3 minus ... border ring of 16 tiles stays active.
  EXPECT_EQ(tiles.active_count(), 16u);
  EXPECT_TRUE(tiles.is_active(0));
  EXPECT_FALSE(tiles.is_active(6));  // (1,1) interior
  EXPECT_FALSE(tiles.is_active(12));  // (2,2) centre
}

TEST(Tiles, BufferRingIncludesDiagonals) {
  const TiledLayout lay(56, 56, 8);  // 7x7 tiles; centre is (3,3) = 24
  ActiveTileSet tiles(lay, true);
  std::vector<std::uint8_t> raw(49, 0);
  raw[24] = 1;
  tiles.update_from_sweep(raw);
  // centre + full 3x3 ring + 24-tile border = 9 + 24 = 33.
  EXPECT_EQ(tiles.active_count(), 33u);
  for (std::int32_t dy = -1; dy <= 1; ++dy) {
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      EXPECT_TRUE(tiles.is_active((3 + dy) * 7 + (3 + dx)));
    }
  }
  EXPECT_FALSE(tiles.is_active(2 * 7 + 5));  // (5,2): outside the ring
}

TEST(Tiles, DeactivationHappensAtSweeps) {
  const TiledLayout lay(56, 56, 8);
  ActiveTileSet tiles(lay, true);
  std::vector<std::uint8_t> raw(49, 0);
  raw[24] = 1;
  tiles.update_from_sweep(raw);
  const auto with_activity = tiles.active_count();
  raw[24] = 0;  // activity gone
  tiles.update_from_sweep(raw);
  EXPECT_LT(tiles.active_count(), with_activity);
  EXPECT_EQ(tiles.active_count(), 24u);  // only the border ring remains
}

TEST(Tiles, ActiveListMatchesFlags) {
  const TiledLayout lay(40, 40, 8);
  ActiveTileSet tiles(lay, true);
  std::vector<std::uint8_t> raw(25, 0);
  raw[12] = 1;
  tiles.update_from_sweep(raw);
  std::size_t count = 0;
  for (std::uint32_t t : tiles.active_list()) {
    EXPECT_TRUE(tiles.is_active(static_cast<std::int32_t>(t)));
    ++count;
  }
  EXPECT_EQ(count, tiles.active_count());
}

TEST(Tiles, WrongSweepSizeRejected) {
  const TiledLayout lay(32, 32, 8);
  ActiveTileSet tiles(lay, true);
  std::vector<std::uint8_t> raw(9, 0);
  EXPECT_THROW(tiles.update_from_sweep(raw), Error);
}

/// Safety property behind the paper's "maximum check period = tile side"
/// rule: simulate a token that moves one cell per step from any position in
/// an active tile; for every check period P <= tile side, the token is
/// still inside the activated set (tile + ring) after P steps.
class TileSafety : public ::testing::TestWithParam<int> {};

TEST_P(TileSafety, ActivityCannotEscapeBufferRingBetweenSweeps) {
  const int period = GetParam();
  const int tile = 8;
  ASSERT_LE(period, tile);
  const TiledLayout lay(11 * tile, 11 * tile, tile);
  ActiveTileSet tiles(lay, true);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(lay.num_tiles()), 0);
  const std::int32_t centre_tile = 5 * 11 + 5;
  raw[static_cast<std::size_t>(centre_tile)] = 1;
  tiles.update_from_sweep(raw);

  // Worst case: the token starts at a corner of the centre tile and walks
  // straight outward for `period` steps.
  const std::int32_t x0 = 5 * tile, y0 = 5 * tile;  // tile corner
  const std::int32_t walks[4][2] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
  for (const auto& w : walks) {
    std::int32_t x = x0, y = y0;
    for (int s = 0; s < period; ++s) {
      x += w[0];
      y += w[1];
      ASSERT_TRUE(tiles.is_active(lay.tile_of(x, y)))
          << "escaped at step " << s << " pos " << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, TileSafety, ::testing::Values(1, 2, 4, 8));

TEST(Tiles, RaggedEdgeKeepsInnerRingActive) {
  // 25 voxels with tile 8 -> tiles at x = 0..7, 8..15, 16..23, 24 (1 wide).
  // Activity entering the 1-wide edge tile from a ghost can cross it in a
  // single step, so the ring just inside the ragged edge must never sleep.
  const TiledLayout lay(25, 32, 8);  // 4x4 tiles, ragged in x only
  ActiveTileSet tiles(lay, true);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(lay.num_tiles()), 0);
  tiles.update_from_sweep(raw);
  for (std::int32_t ty = 0; ty < 4; ++ty) {
    EXPECT_TRUE(tiles.is_active(ty * 4 + 2))  // tx == tiles_x-2
        << "ragged inner ring tile (2," << ty << ") must stay active";
  }
  // The non-ragged y direction keeps its normal interior inactive.
  EXPECT_FALSE(tiles.is_active(1 * 4 + 1));
}

TEST(Tiles, NonRaggedDomainsHaveNoExtraRing) {
  const TiledLayout lay(32, 32, 8);
  ActiveTileSet tiles(lay, true);
  std::vector<std::uint8_t> raw(16, 0);
  tiles.update_from_sweep(raw);
  EXPECT_FALSE(tiles.is_active(1 * 4 + 1));
  EXPECT_FALSE(tiles.is_active(2 * 4 + 2));
}

}  // namespace
}  // namespace simcov::gpu
