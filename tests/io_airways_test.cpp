// I/O (rendering, CSV, checkpoints) and the airway structure generator.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/airways.hpp"
#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/reference_sim.hpp"
#include "io/snapshot.hpp"

namespace simcov {
namespace {

namespace fs = std::filesystem;

SimParams fast() {
  SimParams p = SimParams::bench_fast();
  p.dim_x = 32;
  p.dim_y = 32;
  p.num_foi = 2;
  p.tcell_initial_delay = 20;
  p.tcell_generation_rate = 6.0;
  return p;
}

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("simcov_test_" + std::to_string(::getpid()));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

// ---------------------------------------------------------------------------
// Airways
// ---------------------------------------------------------------------------

TEST(Airways, TreeBifurcates) {
  const Grid g(128, 128, 1);
  AirwayParams p;
  p.generations = 4;
  const auto tree = airway_tree(g, p);
  // A full binary tree of depth 4: 1 + 2 + 4 + 8 = 15 segments.
  EXPECT_EQ(tree.size(), 15u);
  EXPECT_EQ(tree[0].generation, 0);
  // Children are shorter and thinner than the root.
  double root_len = std::hypot(tree[0].x1 - tree[0].x0, tree[0].y1 - tree[0].y0);
  for (const auto& s : tree) {
    if (s.generation == 0) continue;
    EXPECT_LT(std::hypot(s.x1 - s.x0, s.y1 - s.y0), root_len);
    EXPECT_LT(s.halfwidth, tree[0].halfwidth + 1e-12);
  }
}

TEST(Airways, VoxelsAreSortedUniqueInBounds) {
  const Grid g(96, 96, 1);
  AirwayParams p;
  const auto voxels = airway_voxels(g, p);
  EXPECT_GT(voxels.size(), 50u);
  EXPECT_TRUE(std::is_sorted(voxels.begin(), voxels.end()));
  EXPECT_EQ(std::adjacent_find(voxels.begin(), voxels.end()), voxels.end());
  for (VoxelId v : voxels) EXPECT_LT(v, g.num_voxels());
}

TEST(Airways, DeterministicInSeed) {
  const Grid g(96, 96, 1);
  AirwayParams a, b;
  a.seed = b.seed = 3;
  EXPECT_EQ(airway_voxels(g, a), airway_voxels(g, b));
  b.seed = 4;
  EXPECT_NE(airway_voxels(g, a), airway_voxels(g, b));
}

TEST(Airways, ExtrudesThroughZ) {
  const Grid g2(64, 64, 1), g3(64, 64, 3);
  AirwayParams p;
  const auto flat = airway_voxels(g2, p);
  const auto deep = airway_voxels(g3, p);
  EXPECT_EQ(deep.size(), 3 * flat.size());
}

TEST(Airways, InvalidParamsRejected) {
  const Grid g(64, 64, 1);
  AirwayParams p;
  p.generations = 0;
  EXPECT_THROW(airway_tree(g, p), Error);
  p.generations = 4;
  p.root_halfwidth = 0.1;
  EXPECT_THROW(airway_tree(g, p), Error);
}

TEST(Airways, UsableAsSimulationStructure) {
  SimParams p = fast();
  p.dim_x = 64;
  p.dim_y = 64;
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  AirwayParams ap;
  ap.generations = 4;
  const auto airways = airway_voxels(g, ap);
  // Seed away from the tree.
  std::vector<VoxelId> foi = {g.to_id({4, 60, 0})};
  ReferenceSim sim(p, foi, airways);
  sim.run(60);
  EXPECT_EQ(sim.history().back().epi_counts[0], airways.size());  // kEmpty
}

// ---------------------------------------------------------------------------
// Rendering + CSV
// ---------------------------------------------------------------------------

TEST(Io, RenderStateColorsStates) {
  SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  std::vector<VoxelId> airway = {g.to_id({0, 0, 0})};
  ReferenceSim sim(p, {g.to_id({16, 16, 0})}, airway);
  const io::Image img = io::render_state(sim);
  ASSERT_EQ(img.width, 32);
  ASSERT_EQ(img.height, 32);
  ASSERT_EQ(img.rgb.size(), 3u * 32 * 32);
  // Airway voxel renders black, healthy tissue light.
  EXPECT_EQ(img.pixel(0, 0)[0], 0);
  EXPECT_GT(img.pixel(5, 5)[0], 200);
}

TEST(Io, WritePpmProducesValidHeader) {
  TempDir dir;
  io::Image img;
  img.width = 4;
  img.height = 2;
  img.rgb.assign(24, 128);
  const std::string path = dir.file("img.ppm");
  io::write_ppm(path, img);
  std::ifstream in(path, std::ios::binary);
  std::string magic, dims;
  std::getline(in, magic);
  std::getline(in, dims);
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(dims, "4 2");
}

TEST(Io, WritePpmRejectsBadTargets) {
  io::Image img;
  img.width = 1;
  img.height = 1;
  img.rgb.assign(3, 0);
  EXPECT_THROW(io::write_ppm("/nonexistent_dir/x.ppm", img), Error);
  img.width = 0;
  EXPECT_THROW(io::write_ppm("/tmp/x.ppm", img), Error);
}

TEST(Io, SeriesCsvRoundTripShape) {
  TempDir dir;
  SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim sim(p, foi_uniform_random(g, 2, p.seed));
  sim.run(10);
  const std::string path = dir.file("series.csv");
  io::write_series_csv(path, sim.history());
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 11);  // header + 10 steps
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

TEST(Io, CheckpointResumesBitIdentically) {
  SimParams p = fast();
  p.num_steps = 120;
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(g, 2, p.seed);

  // Uninterrupted run.
  ReferenceSim full(p, foi);
  full.run(120);

  // Run 60 steps, checkpoint through a stream, resume 60 more.
  ReferenceSim first(p, foi);
  first.run(60);
  std::stringstream buf;
  first.save(buf);
  ReferenceSim resumed = ReferenceSim::load(buf);
  EXPECT_EQ(resumed.current_step(), 60u);
  EXPECT_EQ(resumed.state_digest(), first.state_digest());
  resumed.run(60);
  EXPECT_EQ(resumed.state_digest(), full.state_digest());
  EXPECT_EQ(resumed.history().size(), full.history().size());
  EXPECT_EQ(resumed.history().back().tcells_tissue,
            full.history().back().tcells_tissue);
}

TEST(Io, CheckpointFileHelpers) {
  TempDir dir;
  SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim sim(p, foi_uniform_random(g, 2, p.seed));
  sim.run(25);
  const std::string path = dir.file("ckpt.bin");
  io::save_checkpoint(path, sim);
  ReferenceSim loaded = io::load_checkpoint(path);
  EXPECT_EQ(loaded.state_digest(), sim.state_digest());
  EXPECT_THROW(io::load_checkpoint(dir.file("missing.bin")), Error);
}

TEST(Io, CorruptCheckpointRejected) {
  std::stringstream buf;
  buf << "not a checkpoint at all";
  EXPECT_THROW(ReferenceSim::load(buf), Error);
  // Truncated: valid magic, nothing else.
  std::stringstream buf2;
  buf2.write("SCV1", 4);
  EXPECT_THROW(ReferenceSim::load(buf2), Error);
}

}  // namespace
}  // namespace simcov
