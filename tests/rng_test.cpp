// Counter-based RNG: determinism, stream independence, statistical smoke
// checks, bid construction (§3.1 tie-freedom).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace simcov {
namespace {

using VoxelId = std::uint64_t;

TEST(CounterRng, DeterministicAcrossInstances) {
  const CounterRng a(99), b(99);
  for (std::uint64_t step = 0; step < 100; ++step) {
    EXPECT_EQ(a.draw(step, 7, RngStream::kInfection),
              b.draw(step, 7, RngStream::kInfection));
  }
}

TEST(CounterRng, SeedChangesDraws) {
  const CounterRng a(1), b(2);
  int same = 0;
  for (std::uint64_t step = 0; step < 64; ++step) {
    same += (a.draw(step, 0, RngStream::kGeneric) ==
             b.draw(step, 0, RngStream::kGeneric));
  }
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, StreamsAreIndependent) {
  const CounterRng rng(5);
  EXPECT_NE(rng.draw(3, 11, RngStream::kTCellBid),
            rng.draw(3, 11, RngStream::kTCellBindBid));
  EXPECT_NE(rng.draw(3, 11, RngStream::kInfection),
            rng.draw(3, 11, RngStream::kExtravasate));
}

TEST(CounterRng, SaltChangesDraws) {
  const CounterRng rng(5);
  EXPECT_NE(rng.draw(1, 2, RngStream::kGeneric, 0),
            rng.draw(1, 2, RngStream::kGeneric, 1));
}

TEST(CounterRng, UniformInUnitInterval) {
  const CounterRng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform(0, static_cast<std::uint64_t>(i),
                                 RngStream::kGeneric);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(CounterRng, UniformIntInRangeAndRoughlyUniform) {
  const CounterRng rng(23);
  const std::uint32_t k = 7;
  std::vector<int> counts(k, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    const std::uint32_t v =
        rng.uniform_int(1, static_cast<std::uint64_t>(i), RngStream::kGeneric, k);
    ASSERT_LT(v, k);
    ++counts[v];
  }
  for (std::uint32_t b = 0; b < k; ++b) {
    EXPECT_NEAR(counts[b], n / static_cast<int>(k), n / k / 10.0) << b;
  }
}

TEST(CounterRng, BernoulliEdgeCases) {
  const CounterRng rng(3);
  EXPECT_FALSE(rng.bernoulli(0, 0, RngStream::kGeneric, 0.0));
  EXPECT_FALSE(rng.bernoulli(0, 0, RngStream::kGeneric, -1.0));
  EXPECT_TRUE(rng.bernoulli(0, 0, RngStream::kGeneric, 1.0));
  EXPECT_TRUE(rng.bernoulli(0, 0, RngStream::kGeneric, 2.0));
}

TEST(CounterRng, BernoulliMatchesProbability) {
  const CounterRng rng(31);
  const double p = 0.3;
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(2, static_cast<std::uint64_t>(i),
                          RngStream::kGeneric, p);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(CounterRng, PoissonMeanAndVariance) {
  const CounterRng rng(41);
  const double mean = 12.0;
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double k = rng.poisson(0, static_cast<std::uint64_t>(i),
                                 RngStream::kIncubationPeriod, mean);
    sum += k;
    sq += k * k;
  }
  const double m = sum / n;
  const double var = sq / n - m * m;
  EXPECT_NEAR(m, mean, 0.15);
  EXPECT_NEAR(var, mean, 0.6);  // Poisson: variance == mean
}

TEST(CounterRng, PoissonZeroMean) {
  const CounterRng rng(1);
  EXPECT_EQ(rng.poisson(0, 0, RngStream::kGeneric, 0.0), 0u);
}

TEST(CounterRng, PoissonNegativeMeanThrows) {
  const CounterRng rng(1);
  EXPECT_THROW(rng.poisson(0, 0, RngStream::kGeneric, -1.0), Error);
}

TEST(Bid, EncodesSourceVoxel) {
  const CounterRng rng(77);
  const std::uint64_t bid = make_bid(rng, 10, 123456, RngStream::kTCellBid);
  EXPECT_EQ(bid_source(bid), 123456u);
}

TEST(Bid, DistinctSourcesNeverTie) {
  // The paper accepts a vanishing tie probability; the voxel-id low bits
  // make ties impossible outright.
  const CounterRng rng(77);
  std::set<std::uint64_t> bids;
  for (VoxelId v = 0; v < 4096; ++v) {
    bids.insert(make_bid(rng, 3, v, RngStream::kTCellBid));
  }
  EXPECT_EQ(bids.size(), 4096u);
}

TEST(Bid, WinnerIndependentOfComparisonOrder) {
  const CounterRng rng(7);
  std::vector<std::uint64_t> bids;
  for (VoxelId v = 10; v < 20; ++v) {
    bids.push_back(make_bid(rng, 4, v, RngStream::kTCellBid));
  }
  std::uint64_t forward = 0;
  for (auto b : bids) forward = std::max(forward, b);
  std::uint64_t backward = 0;
  for (auto it = bids.rbegin(); it != bids.rend(); ++it) {
    backward = std::max(backward, *it);
  }
  EXPECT_EQ(forward, backward);
}

}  // namespace
}  // namespace simcov
