// Backend-specific behaviour: statistics consistency, communication and
// device counters, variant effects, and misuse rejection for both parallel
// implementations plus the harness wrappers.

#include <gtest/gtest.h>

#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/reference_sim.hpp"
#include "harness/experiment.hpp"
#include "simcov_cpu/cpu_sim.hpp"
#include "simcov_gpu/gpu_sim.hpp"

namespace simcov {
namespace {

SimParams small() {
  SimParams p = SimParams::bench_fast();
  p.dim_x = 48;
  p.dim_y = 48;
  p.num_steps = 100;
  p.num_foi = 3;
  p.tcell_initial_delay = 20;
  p.tcell_generation_rate = 6.0;
  p.incubation_period = 8;
  return p;
}

std::vector<VoxelId> foi_for(const SimParams& p) {
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  return foi_uniform_random(g, p.num_foi, p.seed);
}

ReferenceSim run_reference(const SimParams& p) {
  ReferenceSim ref(p, foi_for(p));
  ref.run(p.num_steps);
  return ref;
}

void expect_history_matches(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Integer statistics are exact; float totals are summed in different
    // orders across backends, so compare with a tight relative tolerance.
    ASSERT_EQ(a[i].epi_counts, b[i].epi_counts) << "step " << i;
    ASSERT_EQ(a[i].tcells_tissue, b[i].tcells_tissue) << "step " << i;
    ASSERT_EQ(a[i].extravasated, b[i].extravasated) << "step " << i;
    ASSERT_NEAR(a[i].virus_total, b[i].virus_total,
                1e-9 * (1.0 + a[i].virus_total))
        << "step " << i;
    ASSERT_NEAR(a[i].chem_total, b[i].chem_total,
                1e-9 * (1.0 + a[i].chem_total))
        << "step " << i;
  }
}

// ---------------------------------------------------------------------------
// SIMCoV-CPU
// ---------------------------------------------------------------------------

TEST(CpuSim, HistoryMatchesReference) {
  const SimParams p = small();
  const auto ref = run_reference(p);
  cpu::CpuSimOptions opt;
  opt.num_ranks = 4;
  const auto r = cpu::run_cpu_sim(p, foi_for(p), opt);
  expect_history_matches(ref.history(), r.history);
}

TEST(CpuSim, CrossBoundaryTrafficHappens) {
  const SimParams p = small();
  cpu::CpuSimOptions opt;
  opt.num_ranks = 4;
  const auto r = cpu::run_cpu_sim(p, foi_for(p), opt);
  EXPECT_GT(r.total_rpcs, 0u) << "no T cell ever crossed a rank boundary — "
                                 "the test configuration is too tame";
  EXPECT_GT(r.total_put_bytes, 0u);  // concentration halos
  EXPECT_GT(r.cost.total_s, 0.0);
}

TEST(CpuSim, RunToRunReproducible) {
  const SimParams p = small();
  cpu::CpuSimOptions opt;
  opt.num_ranks = 4;
  opt.record_digests = true;
  const auto a = cpu::run_cpu_sim(p, foi_for(p), opt);
  const auto b = cpu::run_cpu_sim(p, foi_for(p), opt);
  EXPECT_EQ(a.digests, b.digests);
  expect_history_matches(a.history, b.history);
}

TEST(CpuSim, SingleRankNeedsNoCommunication) {
  const SimParams p = small();
  cpu::CpuSimOptions opt;
  opt.num_ranks = 1;
  const auto r = cpu::run_cpu_sim(p, foi_for(p), opt);
  EXPECT_EQ(r.total_rpcs, 0u);
  EXPECT_EQ(r.total_put_bytes, 0u);
}

TEST(CpuSim, Runs3DAndMatchesReference) {
  SimParams p = small();
  p.dim_x = 24;
  p.dim_y = 24;
  p.dim_z = 4;
  p.num_steps = 80;
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(g, 3, p.seed);
  ReferenceSim ref(p, foi);
  std::vector<std::uint64_t> ref_digests;
  for (std::int64_t s = 0; s < p.num_steps; ++s) {
    ref.step();
    ref_digests.push_back(ref.state_digest());
  }
  for (int ranks : {1, 4, 6}) {
    cpu::CpuSimOptions opt;
    opt.num_ranks = ranks;
    opt.record_digests = true;
    const auto r = cpu::run_cpu_sim(p, foi, opt);
    ASSERT_EQ(r.digests, ref_digests) << "ranks=" << ranks;
  }
}

TEST(CpuSim, EmptyVoxelsRespected) {
  SimParams p = small();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  std::vector<VoxelId> empties;
  for (std::int32_t y = 0; y < p.dim_y; ++y) {
    empties.push_back(g.to_id({24, y, 0}));
  }
  ReferenceSim ref(p, foi_for(p), empties);
  ref.run(p.num_steps);
  cpu::CpuSimOptions opt;
  opt.num_ranks = 4;
  opt.record_digests = true;
  const auto r = cpu::run_cpu_sim(p, foi_for(p), opt, empties);
  EXPECT_EQ(r.digests.back(), ref.state_digest());
}

// ---------------------------------------------------------------------------
// SIMCoV-GPU
// ---------------------------------------------------------------------------

TEST(GpuSim, HistoryMatchesReference) {
  const SimParams p = small();
  const auto ref = run_reference(p);
  gpu::GpuSimOptions opt;
  opt.num_ranks = 4;
  const auto r = gpu::run_gpu_sim(p, foi_for(p), opt);
  expect_history_matches(ref.history(), r.history);
}

TEST(GpuSim, DeviceCountersPopulated) {
  const SimParams p = small();
  gpu::GpuSimOptions opt;
  opt.num_ranks = 4;
  const auto r = gpu::run_gpu_sim(p, foi_for(p), opt);
  EXPECT_GT(r.device_total.kernel_launches, 0u);
  EXPECT_GT(r.device_total.global_read_bytes, 0u);
  EXPECT_GT(r.device_total.threads_executed, 0u);
  EXPECT_GT(r.total_put_bytes, 0u);  // halo waves
  EXPECT_GT(r.cost.total_s, 0.0);
}

TEST(GpuSim, TilingSkipsInactiveWork) {
  // On a sparse simulation the tiling variant must execute far fewer
  // threads than the unoptimized full-sweep variant.
  SimParams p = small();
  p.dim_x = 128;
  p.dim_y = 128;
  p.num_foi = 1;
  p.num_steps = 40;
  p.tile_side = 4;               // many tiles, small always-active border
  p.tile_check_period = 4;
  p.tcell_initial_delay = 1000;  // no T cells
  p.min_virus = 1e-3;            // tight floors keep the fields localized
  p.min_chem = 1e-3;
  gpu::GpuSimOptions tiled;
  tiled.num_ranks = 1;
  tiled.variant = gpu::GpuVariant::memory_tiling_only();
  gpu::GpuSimOptions full;
  full.num_ranks = 1;
  full.variant = gpu::GpuVariant::unoptimized();
  const auto rt = gpu::run_gpu_sim(p, foi_for(p), tiled);
  const auto rf = gpu::run_gpu_sim(p, foi_for(p), full);
  EXPECT_LT(rt.device_total.threads_executed,
            rf.device_total.threads_executed / 2);
  expect_history_matches(rt.history, rf.history);
}

TEST(GpuSim, FastReductionSlashesAtomics) {
  const SimParams p = small();
  gpu::GpuSimOptions tree;
  tree.num_ranks = 2;
  tree.variant = gpu::GpuVariant::fast_reduction_only();
  gpu::GpuSimOptions atomic;
  atomic.num_ranks = 2;
  atomic.variant = gpu::GpuVariant::unoptimized();
  const auto rt = gpu::run_gpu_sim(p, foi_for(p), tree);
  const auto ra = gpu::run_gpu_sim(p, foi_for(p), atomic);
  EXPECT_LT(rt.device_total.atomic_ops, ra.device_total.atomic_ops / 10);
}

TEST(GpuSim, VariantNames) {
  EXPECT_EQ(gpu::GpuVariant::unoptimized().name(), "Unoptimized");
  EXPECT_EQ(gpu::GpuVariant::fast_reduction_only().name(), "Fast Reduction");
  EXPECT_EQ(gpu::GpuVariant::memory_tiling_only().name(), "Memory Tiling");
  EXPECT_EQ(gpu::GpuVariant::combined().name(), "Combined");
}

TEST(GpuSim, Rejects3D) {
  SimParams p = small();
  p.dim_z = 2;
  gpu::GpuSimOptions opt;
  opt.num_ranks = 2;
  EXPECT_THROW(gpu::run_gpu_sim(p, {}, opt), Error);
}

TEST(GpuSim, RunToRunReproducible) {
  const SimParams p = small();
  gpu::GpuSimOptions opt;
  opt.num_ranks = 4;
  opt.record_digests = true;
  const auto a = gpu::run_gpu_sim(p, foi_for(p), opt);
  const auto b = gpu::run_gpu_sim(p, foi_for(p), opt);
  EXPECT_EQ(a.digests, b.digests);
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

TEST(Harness, ResolveFoiDeterministic) {
  harness::RunSpec spec;
  spec.params = small();
  const auto a = spec.resolve_foi();
  const auto b = spec.resolve_foi();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), static_cast<std::size_t>(spec.params.num_foi));
  spec.foi = {1, 2, 3};
  EXPECT_EQ(spec.resolve_foi().size(), 3u);
}

TEST(Harness, BackendsAgreeThroughWrappers) {
  harness::RunSpec spec;
  spec.params = small();
  spec.params.num_steps = 60;
  const auto ref = harness::run_reference(spec);
  const auto c = harness::run_cpu(spec, 4);
  const auto g = harness::run_gpu(spec, 4);
  expect_history_matches(ref.history, c.history);
  expect_history_matches(ref.history, g.history);
  EXPECT_GT(c.modeled_seconds, 0.0);
  EXPECT_GT(g.modeled_seconds, 0.0);
  EXPECT_DOUBLE_EQ(harness::speedup(c, g),
                   c.modeled_seconds / g.modeled_seconds);
}

TEST(Harness, CpusForGpusMatchesPaperRatio) {
  EXPECT_EQ(harness::cpus_for_gpus(4), 128);
  EXPECT_EQ(harness::cpus_for_gpus(64), 2048);
}

}  // namespace
}  // namespace simcov
