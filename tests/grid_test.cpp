// Grid geometry: id/coordinate round trips and the neighbour contract.

#include <gtest/gtest.h>

#include "core/grid.hpp"

namespace simcov {
namespace {

TEST(Grid, RoundTrip2D) {
  const Grid g(7, 5, 1);
  for (VoxelId id = 0; id < g.num_voxels(); ++id) {
    EXPECT_EQ(g.to_id(g.to_coord(id)), id);
  }
}

TEST(Grid, RoundTrip3D) {
  const Grid g(4, 3, 5);
  EXPECT_EQ(g.num_voxels(), 60u);
  for (VoxelId id = 0; id < g.num_voxels(); ++id) {
    EXPECT_EQ(g.to_id(g.to_coord(id)), id);
  }
}

TEST(Grid, IdIsRowMajorXFastest) {
  const Grid g(10, 10, 1);
  EXPECT_EQ(g.to_id({3, 2, 0}), 23u);
  EXPECT_EQ(g.to_id({0, 0, 0}), 0u);
  EXPECT_EQ(g.to_id({9, 9, 0}), 99u);
}

TEST(Grid, NeighbourContractOrder2D) {
  const Grid g(5, 5, 1);
  std::array<Coord, 6> nb;
  const int n = g.neighbours({2, 2, 0}, nb);
  ASSERT_EQ(n, 4);
  EXPECT_EQ(nb[0], (Coord{1, 2, 0}));  // -x first
  EXPECT_EQ(nb[1], (Coord{3, 2, 0}));  // +x
  EXPECT_EQ(nb[2], (Coord{2, 1, 0}));  // -y
  EXPECT_EQ(nb[3], (Coord{2, 3, 0}));  // +y
}

TEST(Grid, NeighboursClippedAtBoundary) {
  const Grid g(5, 5, 1);
  std::array<Coord, 6> nb;
  EXPECT_EQ(g.neighbours({0, 0, 0}, nb), 2);
  EXPECT_EQ(nb[0], (Coord{1, 0, 0}));  // +x survives, -x clipped
  EXPECT_EQ(nb[1], (Coord{0, 1, 0}));
  EXPECT_EQ(g.neighbours({4, 2, 0}, nb), 3);
}

TEST(Grid, Neighbours3DIncludeZ) {
  const Grid g(3, 3, 3);
  std::array<Coord, 6> nb;
  EXPECT_EQ(g.neighbours({1, 1, 1}, nb), 6);
  EXPECT_EQ(nb[4], (Coord{1, 1, 0}));
  EXPECT_EQ(nb[5], (Coord{1, 1, 2}));
  // 2D grids must never look across z even at z bounds.
  const Grid g2(3, 3, 1);
  EXPECT_EQ(g2.neighbours({1, 1, 0}, nb), 4);
}

TEST(Grid, SingleVoxelGridHasNoNeighbours) {
  const Grid g(1, 1, 1);
  std::array<Coord, 6> nb;
  EXPECT_EQ(g.neighbours({0, 0, 0}, nb), 0);
}

TEST(Grid, InvalidDimensionsThrow) {
  EXPECT_THROW(Grid(0, 5, 1), Error);
  EXPECT_THROW(Grid(5, -1, 1), Error);
  EXPECT_THROW(Grid(1 << 16, 1 << 16, 2), Error);  // > 2^32 voxels
}

TEST(Grid, InBounds) {
  const Grid g(4, 4, 1);
  EXPECT_TRUE(g.in_bounds({0, 0, 0}));
  EXPECT_TRUE(g.in_bounds({3, 3, 0}));
  EXPECT_FALSE(g.in_bounds({4, 0, 0}));
  EXPECT_FALSE(g.in_bounds({0, -1, 0}));
  EXPECT_FALSE(g.in_bounds({0, 0, 1}));
}

}  // namespace
}  // namespace simcov
