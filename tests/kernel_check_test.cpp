// KernelCheck: the virtual-GPU race & determinism analyzer.
//
// Each negative test runs a deliberately broken kernel twice over the
// design: with the checker off it completes silently (the sequential
// substrate executes *one* legal schedule, so the race is invisible), and
// with the checker on the launch throws a diagnostic naming the rule, the
// kernel, the buffer and the first conflicting pair.  Positive tests pin
// down that the blessed patterns — disjoint writes, atomic reductions,
// phased shared-memory trees — stay silent, that schedule permutation
// flags order-dependent floating-point reductions without perturbing
// canonical results, and that the full GPU simulation is race-free and
// bit-deterministic end to end.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/params.hpp"
#include "gpusim/gpusim.hpp"
#include "simcov_gpu/gpu_sim.hpp"
#include "util/error.hpp"

namespace simcov::gpusim {
namespace {

/// Scoped override (or removal, when value == nullptr) of an environment
/// variable, restoring the previous state on destruction.  The CI
/// kernel-check job exports SIMCOV_KERNEL_CHECK=1 for the whole suite, so
/// tests that rely on a specific checker mode must pin the variable.
struct EnvVarOverride {
  EnvVarOverride(const char* var, const char* value) : name(var) {
    const char* prev_raw = std::getenv(var);  // NOLINT(concurrency-mt-unsafe)
    had_prev = prev_raw != nullptr;
    if (had_prev) prev = prev_raw;
    if (value != nullptr) {
      ::setenv(var, value, 1);  // NOLINT(concurrency-mt-unsafe)
    } else {
      ::unsetenv(var);  // NOLINT(concurrency-mt-unsafe)
    }
  }
  ~EnvVarOverride() {
    if (had_prev) {
      ::setenv(name, prev.c_str(), 1);  // NOLINT(concurrency-mt-unsafe)
    } else {
      ::unsetenv(name);  // NOLINT(concurrency-mt-unsafe)
    }
  }
  EnvVarOverride(const EnvVarOverride&) = delete;
  EnvVarOverride& operator=(const EnvVarOverride&) = delete;

  const char* name;
  std::string prev;
  bool had_prev = false;
};

DeviceOptions access_checked() {
  return DeviceOptions{.check_kernels = true, .permute_schedules = false,
                       .defer_check_report = false};
}
DeviceOptions permuted() {
  return DeviceOptions{.check_kernels = true, .permute_schedules = true,
                       .defer_check_report = false};
}

/// Runs `fn` and returns the KernelCheck diagnostic ("" if it ran clean).
template <typename F>
std::string launch_error(F&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

// ---- enablement ----------------------------------------------------------

TEST(KernelCheck, OffByDefaultRacesRunSilently) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0);
  EXPECT_EQ(dev.checker(), nullptr);
  DeviceBuffer<int> buf(dev, 1, 0);
  // Every thread writes element 0 — a write-write race, invisible without
  // the checker because the sequential schedule executes it benignly.
  dev.parallel_for({1, 4, "k_seeded_ww"}, [&](auto& t) {
    t.global(buf).write(0, static_cast<int>(t.thread_idx()));
  });
  EXPECT_FALSE(dev.kernel_active());
}

TEST(KernelCheck, EnvVarEnablesAccessChecking) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", "1");
  Device dev(0);
  ASSERT_NE(dev.checker(), nullptr);
  EXPECT_TRUE(dev.checker()->access_checking());
  EXPECT_FALSE(dev.checker()->permute_schedules());
}

TEST(KernelCheck, EnvVarPermuteEnablesBothModes) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", "permute");
  Device dev(0);
  ASSERT_NE(dev.checker(), nullptr);
  EXPECT_TRUE(dev.checker()->access_checking());
  EXPECT_TRUE(dev.checker()->permute_schedules());
}

TEST(KernelCheck, EnvVarZeroIsOff) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", "0");
  Device dev(0);
  EXPECT_EQ(dev.checker(), nullptr);
}

// ---- seeded races: global memory -----------------------------------------

TEST(KernelCheck, WriteWriteRaceDetected) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<int> buf(dev, 4, 0, "race_target");
  const std::string err = launch_error([&] {
    dev.parallel_for({1, 4, "k_seeded_ww"}, [&](auto& t) {
      t.global(buf).write(0, static_cast<int>(t.thread_idx()));
    });
  });
  EXPECT_NE(err.find("write-write race"), std::string::npos) << err;
  EXPECT_NE(err.find("k_seeded_ww"), std::string::npos) << err;
  EXPECT_NE(err.find("race_target"), std::string::npos) << err;
  EXPECT_FALSE(dev.kernel_active());  // launch depth unwound despite throw
}

TEST(KernelCheck, DiagnosticsCarryKernelNameConfigAndFirstPair) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<int> buf(dev, 4, 0, "race_target");
  const std::string err = launch_error([&] {
    dev.parallel_for({1, 4, "k_seeded_ww"}, [&](auto& t) {
      t.global(buf).write(0, 1);
    });
  });
  EXPECT_NE(err.find("'k_seeded_ww' <<1x4>>"), std::string::npos) << err;
  EXPECT_NE(err.find("buffer 'race_target' element 0"), std::string::npos)
      << err;
  // First conflicting pair: thread 0's write vs thread 1's.
  EXPECT_NE(err.find("(block 0, thread 0, phase 0) vs "
                     "(block 0, thread 1, phase 0)"),
            std::string::npos)
      << err;
}

TEST(KernelCheck, ReadWriteRaceDetected) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<int> buf(dev, 2, 0, "rw_target");
  const std::string err = launch_error([&] {
    dev.parallel_for({1, 4, "k_seeded_rw"}, [&](auto& t) {
      auto g = t.global(buf);
      if (t.thread_idx() == 0) {
        g.write(0, 7);
      } else {
        g.read(0);
      }
    });
  });
  EXPECT_NE(err.find("read-write race"), std::string::npos) << err;
}

TEST(KernelCheck, AtomicPlainMixDetected) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<int> buf(dev, 1, 0, "mix_target");
  const std::string err = launch_error([&] {
    dev.parallel_for({1, 4, "k_seeded_mix"}, [&](auto& t) {
      auto g = t.global(buf);
      if (t.thread_idx() == 0) {
        g.write(0, 1);  // plain store racing the other threads' atomics
      } else {
        g.atomic_add(0, 1);
      }
    });
  });
  EXPECT_NE(err.find("atomic-plain mix"), std::string::npos) << err;
}

TEST(KernelCheck, CrossBlockWriteConflictDetected) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<int> buf(dev, 1, 0, "xblock");
  // Blocks are never ordered within a launch, phases or not.
  const std::string err = launch_error([&] {
    dev.launch_blocks({2, 2, "k_xblock"}, [&](auto& blk) {
      blk.for_each_thread([&](std::uint32_t tid) {
        if (tid == 0) blk.global(buf).write(0, 1);
      });
    });
  });
  EXPECT_NE(err.find("write-write race"), std::string::npos) << err;
  EXPECT_NE(err.find("block 0"), std::string::npos) << err;
  EXPECT_NE(err.find("block 1"), std::string::npos) << err;
}

TEST(KernelCheck, AliasedViewsOfOneBufferDetected) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<int> buf(dev, 2, 0, "aliased");
  // Two spans over the same storage: the shadow keys on the underlying
  // allocation, so the conflict is found across views.
  const std::string err = launch_error([&] {
    dev.parallel_for({1, 2, "k_aliased"}, [&](auto& t) {
      auto a = t.global(buf);
      auto b = t.global(buf);
      if (t.thread_idx() == 0) {
        a.write(0, 1);
      } else {
        b.write(0, 2);
      }
    });
  });
  EXPECT_NE(err.find("write-write race"), std::string::npos) << err;
  EXPECT_NE(err.find("aliased"), std::string::npos) << err;
}

// ---- seeded races: shared memory -----------------------------------------

TEST(KernelCheck, SharedSamePhaseWriteIsPhaseViolation) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  // The exact pattern the tile sweep used to have: every thread of the
  // block raises a single shared flag in the same phase.
  const std::string err = launch_error([&] {
    dev.launch_blocks({1, 4, "k_shared_flag"}, [&](auto& blk) {
      auto found = blk.template shared<std::uint32_t>(1);
      blk.for_each_thread([&](std::uint32_t) { found[0] = 1; });
    });
  });
  EXPECT_NE(err.find("shared-memory phase violation"), std::string::npos)
      << err;
  EXPECT_NE(err.find("k_shared_flag"), std::string::npos) << err;
}

TEST(KernelCheck, SharedReadOfOtherThreadsSlotSamePhaseDetected) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  const std::string err = launch_error([&] {
    dev.launch_blocks({1, 4, "k_shared_norace_missing_sync"}, [&](auto& blk) {
      auto sh = blk.template shared<int>(4);
      blk.for_each_thread([&](std::uint32_t tid) {
        sh[tid] = static_cast<int>(tid);
        // Reading the neighbour's slot in the *same* phase only works
        // because threads run sequentially here — a missing __syncthreads.
        if (tid > 0) (void)static_cast<int>(sh[tid - 1]);
      });
    });
  });
  EXPECT_NE(err.find("shared-memory phase violation (read-write)"),
            std::string::npos)
      << err;
}

TEST(KernelCheck, SharedPhasedTreeReductionIsClean) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<int> out(dev, 1, 0, "tree_out");
  dev.launch_blocks({2, 4, "k_tree"}, [&](auto& blk) {
    auto sh = blk.template shared<int>(4);
    blk.for_each_thread(
        [&](std::uint32_t tid) { sh[tid] = static_cast<int>(tid) + 1; });
    for (std::uint32_t off = 2; off > 0; off >>= 1) {
      blk.for_each_thread([&](std::uint32_t tid) {
        if (tid < off) sh[tid] += sh[tid + off];
      });
    }
    blk.for_each_thread([&](std::uint32_t tid) {
      if (tid == 0) blk.global(out).atomic_add(0, sh[0]);
    });
  });
  std::vector<int> host(1);
  out.copy_to_host(host);
  EXPECT_EQ(host[0], 2 * (1 + 2 + 3 + 4));
  ASSERT_NE(dev.checker(), nullptr);
  EXPECT_TRUE(dev.checker()->clean());
  EXPECT_GT(dev.checker()->accesses_checked(), 0u);
}

// ---- clean patterns stay silent ------------------------------------------

TEST(KernelCheck, DisjointWritesClean) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<std::uint64_t> buf(dev, 64, 0, "disjoint");
  dev.parallel_for({4, 16, "k_disjoint"}, [&](auto& t) {
    t.global(buf).write(t.global_index(), t.global_index());
  });
  EXPECT_TRUE(dev.checker()->clean());
  EXPECT_EQ(dev.checker()->launches_checked(), 1u);
}

TEST(KernelCheck, AtomicReductionClean) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<std::uint64_t> sum(dev, 1, 0, "sum");
  dev.parallel_for({2, 32, "k_atomic_sum"}, [&](auto& t) {
    t.global(sum).atomic_add(0, t.global_index());
  });
  std::vector<std::uint64_t> host(1);
  sum.copy_to_host(host);
  EXPECT_EQ(host[0], 64u * 63u / 2u);
  EXPECT_TRUE(dev.checker()->clean());
}

TEST(KernelCheck, SameThreadReadModifyWriteClean) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<int> buf(dev, 8, 1, "rmw");
  dev.parallel_for({1, 8, "k_rmw"}, [&](auto& t) {
    auto g = t.global(buf);
    const std::size_t i = t.thread_idx();
    for (int k = 0; k < 4; ++k) g.write(i, g.read(i) * 2);
  });
  EXPECT_TRUE(dev.checker()->clean());
}

TEST(KernelCheck, FreshLaunchForgetsPreviousAccesses) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, access_checked());
  DeviceBuffer<int> buf(dev, 1, 0, "sequential");
  // Same element written by different threads in *different launches*:
  // launches are synchronization points, so this must stay silent.
  dev.parallel_for({1, 2, "k_first"}, [&](auto& t) {
    if (t.thread_idx() == 0) t.global(buf).write(0, 1);
  });
  dev.parallel_for({1, 2, "k_second"}, [&](auto& t) {
    if (t.thread_idx() == 1) t.global(buf).write(0, 2);
  });
  EXPECT_TRUE(dev.checker()->clean());
  EXPECT_EQ(dev.checker()->launches_checked(), 2u);
}

// ---- schedule permutation ------------------------------------------------

TEST(KernelCheck, SeededPermutationIsDeterministicAndComplete) {
  const auto p1 = seeded_permutation(42, 17);
  const auto p2 = seeded_permutation(42, 17);
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, seeded_permutation(43, 17));
  std::vector<bool> seen(17, false);
  for (const std::uint64_t v : p1) {
    ASSERT_LT(v, 17u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(KernelCheck, PermutationFlagsOrderDependentFloatReduction) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, permuted());
  DeviceBuffer<double> sum(dev, 1, 0.0, "fp_sum");
  // (0.1 + 0.2) + 0.3 != (0.3 + 0.2) + 0.1 in binary floating point: the
  // access checker rightly accepts the atomics, but the result depends on
  // thread order — exactly what the bit-for-bit replay diff catches.
  const std::string err = launch_error([&] {
    dev.parallel_for({1, 3, "k_fp_reduce"}, [&](auto& t) {
      t.global(sum).atomic_add(0, 0.1 * (t.thread_idx() + 1));
    });
  });
  EXPECT_NE(err.find("schedule-dependent result"), std::string::npos) << err;
  EXPECT_NE(err.find("fp_sum"), std::string::npos) << err;
  EXPECT_NE(err.find("k_fp_reduce"), std::string::npos) << err;
}

TEST(KernelCheck, PermutationCleanForIntegerAtomicsAndCountsOnce) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, permuted());
  DeviceBuffer<std::uint64_t> sum(dev, 1, 0, "int_sum");
  dev.parallel_for({2, 8, "k_int_reduce"}, [&](auto& t) {
    t.global(sum).atomic_add(0, 1);
  });
  std::vector<std::uint64_t> host(1);
  sum.copy_to_host(host);
  EXPECT_EQ(host[0], 16u);
  // Replays restore DeviceStats: counters describe the canonical run only.
  EXPECT_EQ(dev.stats().kernel_launches, 1u);
  EXPECT_EQ(dev.stats().threads_executed, 16u);
  EXPECT_EQ(dev.stats().atomic_ops, 16u);
  EXPECT_EQ(dev.checker()->launches_permuted(), 1u);
  EXPECT_TRUE(dev.checker()->clean());
}

TEST(KernelCheck, PermutationKeepsCanonicalResult) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  auto run = [](Device& dev) {
    DeviceBuffer<std::uint64_t> buf(dev, 32, 0, "squares");
    dev.parallel_for({2, 16, "k_squares"}, [&](auto& t) {
      t.global(buf).write(t.global_index(),
                          t.global_index() * t.global_index());
    });
    std::vector<std::uint64_t> host(32);
    buf.copy_to_host(host);
    return host;
  };
  Device plain(0);
  Device checked(1, permuted());
  EXPECT_EQ(run(plain), run(checked));
}

TEST(KernelCheck, ToleratedVarianceIsCountedNotFatal) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  Device dev(0, permuted());
  DeviceBuffer<double> sum(dev, 1, 0.0, "fp_sum");
  sum.tolerate_schedule_variance("test: intentionally order-tolerant");
  dev.parallel_for({1, 3, "k_fp_reduce"}, [&](auto& t) {
    t.global(sum).atomic_add(0, 0.1 * (t.thread_idx() + 1));
  });
  EXPECT_EQ(dev.checker()->violation_count(), 0u);
  EXPECT_GE(dev.checker()->tolerated_diffs(), 1u);
  // The exemption is scoped to that one launch: the same kernel without a
  // fresh annotation is flagged again.  (Reset the accumulator first so the
  // re-run reproduces the known order-dependent sums bit for bit.)
  sum.fill(0.0);
  const std::string err = launch_error([&] {
    dev.parallel_for({1, 3, "k_fp_reduce"}, [&](auto& t) {
      t.global(sum).atomic_add(0, 0.1 * (t.thread_idx() + 1));
    });
  });
  EXPECT_NE(err.find("schedule-dependent result"), std::string::npos) << err;
}

// ---- full simulation ------------------------------------------------------

SimParams checker_sim_params() {
  SimParams p = SimParams::bench_fast();
  p.dim_x = 32;
  p.dim_y = 32;
  p.num_steps = 60;
  p.num_foi = 2;
  p.seed = 99;
  p.tcell_initial_delay = 15;
  p.tcell_generation_rate = 4.0;
  p.incubation_period = 8;
  p.tile_side = 8;
  p.tile_check_period = 4;
  return p;
}

TEST(KernelCheck, FullGpuSimCleanUnderCheckerAndUnperturbed) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  const SimParams p = checker_sim_params();
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);

  gpu::GpuSimOptions plain;
  plain.record_digests = true;
  const auto base = gpu::run_gpu_sim(p, foi, plain);

  gpu::GpuSimOptions checked = plain;
  checked.check_kernels = true;
  const auto r = gpu::run_gpu_sim(p, foi, checked);
  EXPECT_EQ(r.check_violations, 0u);
  EXPECT_GT(r.check_accesses, 0u);
  EXPECT_EQ(r.digests, base.digests);  // observation does not perturb
  EXPECT_EQ(base.check_accesses, 0u);  // and off means off
}

TEST(KernelCheck, SmokeScenarioBitIdenticalUnderPermutedSchedules) {
  EnvVarOverride guard("SIMCOV_KERNEL_CHECK", nullptr);
  // The cli_gpu_smoke configuration: every launch of every step must
  // produce bit-identical buffers under reversed and shuffled schedules,
  // and the permuted run's digests must equal the plain run's.
  SimParams p;
  p.dim_x = 48;
  p.dim_y = 48;
  p.num_steps = 40;
  p.num_foi = 2;
  p.incubation_period = 10;
  p.tcell_initial_delay = 15;
  p.tcell_generation_rate = 4.0;
  const Grid grid(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(grid, p.num_foi, p.seed);

  gpu::GpuSimOptions plain;
  plain.record_digests = true;
  const auto base = gpu::run_gpu_sim(p, foi, plain);

  gpu::GpuSimOptions perm = plain;
  perm.check_kernels = true;
  perm.permute_schedules = true;
  const auto r = gpu::run_gpu_sim(p, foi, perm);
  EXPECT_EQ(r.check_violations, 0u);
  EXPECT_EQ(r.digests, base.digests);
  EXPECT_EQ(r.device_total.kernel_launches,
            base.device_total.kernel_launches);
}

}  // namespace
}  // namespace simcov::gpusim
