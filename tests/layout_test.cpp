// Tiled memory layout (§3.2, Fig. 3): index round trips, strip placement,
// tile membership — parameterized over domain shapes and tile sizes
// including non-dividing (ragged) tiles.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "simcov_gpu/layout.hpp"

namespace simcov::gpu {
namespace {

using Param = std::tuple<int, int, int>;  // w, h, tile

class TiledLayoutP : public ::testing::TestWithParam<Param> {};

TEST_P(TiledLayoutP, InteriorIndicesAreUniqueAndInBounds) {
  const auto [w, h, tile] = GetParam();
  const TiledLayout lay(w, h, tile);
  std::set<std::uint32_t> seen;
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      const std::uint32_t s = lay.index(x, y);
      ASSERT_LT(s, lay.interior_slots());
      ASSERT_TRUE(seen.insert(s).second) << "collision at " << x << "," << y;
    }
  }
}

TEST_P(TiledLayoutP, SlotToXyInvertsIndex) {
  const auto [w, h, tile] = GetParam();
  const TiledLayout lay(w, h, tile);
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      std::int32_t rx, ry;
      lay.slot_to_xy(lay.index(x, y), rx, ry);
      ASSERT_EQ(rx, x);
      ASSERT_EQ(ry, y);
    }
  }
}

TEST_P(TiledLayoutP, GhostStripsAreDisjointFromInteriorAndEachOther) {
  const auto [w, h, tile] = GetParam();
  const TiledLayout lay(w, h, tile);
  std::set<std::uint32_t> seen;
  for (std::int32_t y = 0; y < h; ++y) {
    seen.insert(lay.index(-1, y));
    seen.insert(lay.index(w, y));
  }
  for (std::int32_t x = 0; x < w; ++x) {
    seen.insert(lay.index(x, -1));
    seen.insert(lay.index(x, h));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(2 * w + 2 * h));
  for (std::uint32_t s : seen) {
    ASSERT_GE(s, lay.interior_slots());
    ASSERT_LT(s, lay.size());
  }
}

TEST_P(TiledLayoutP, TileMembershipConsistent) {
  const auto [w, h, tile] = GetParam();
  const TiledLayout lay(w, h, tile);
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      const std::int32_t t = lay.tile_of(x, y);
      ASSERT_GE(t, 0);
      ASSERT_LT(t, lay.num_tiles());
      // The slot must live inside the tile's contiguous block.
      const std::uint32_t s = lay.index(x, y);
      const auto spt = static_cast<std::uint32_t>(lay.slots_per_tile());
      ASSERT_EQ(static_cast<std::int32_t>(s / spt), t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledLayoutP,
    ::testing::Values(Param{16, 16, 4}, Param{16, 16, 8}, Param{32, 16, 8},
                      Param{17, 13, 4},   // ragged edge tiles
                      Param{9, 9, 8},     // mostly padding
                      Param{8, 8, 8},     // single tile
                      Param{5, 3, 1},     // 1x1 tiles
                      Param{64, 48, 16}));

TEST(TiledLayout, VoxelsWithinATileAreContiguous) {
  const TiledLayout lay(16, 16, 4);
  // Fig. 3B: the tile's voxels occupy one contiguous block, row-major
  // within the tile (the zig-zag path).
  const std::uint32_t base = lay.index(4, 4);  // origin of tile (1,1)
  EXPECT_EQ(lay.index(5, 4), base + 1);
  EXPECT_EQ(lay.index(4, 5), base + 4);
  EXPECT_EQ(lay.index(7, 7), base + 15);
}

TEST(TiledLayout, BorderTiles) {
  const TiledLayout lay(32, 32, 8);  // 4x4 tiles
  int border = 0;
  for (std::int32_t t = 0; t < lay.num_tiles(); ++t) {
    border += lay.is_border_tile(t);
  }
  EXPECT_EQ(border, 12);  // all but the inner 2x2
  EXPECT_TRUE(lay.is_border_tile(0));
  EXPECT_FALSE(lay.is_border_tile(5));  // tile (1,1)
}

TEST(TiledLayout, SizeAccounting) {
  const TiledLayout lay(17, 13, 4);  // 5x4 tiles of 16 slots + ghosts
  EXPECT_EQ(lay.tiles_x(), 5);
  EXPECT_EQ(lay.tiles_y(), 4);
  EXPECT_EQ(lay.interior_slots(), 5u * 4u * 16u);
  EXPECT_EQ(lay.size(), lay.interior_slots() + 2u * 13u + 2u * 17u);
}

TEST(TiledLayout, InvalidConfigsThrow) {
  EXPECT_THROW(TiledLayout(0, 4, 2), Error);
  EXPECT_THROW(TiledLayout(4, 4, 0), Error);
  EXPECT_THROW(TiledLayout(64, 64, 33), Error);  // block-per-tile limit
}

}  // namespace
}  // namespace simcov::gpu
