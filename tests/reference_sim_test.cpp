// Serial reference simulator: simulation invariants, determinism, and
// model-level behaviours (infection spreads, T cells respond, airways are
// respected).

#include <gtest/gtest.h>

#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/reference_sim.hpp"

namespace simcov {
namespace {

SimParams fast(std::int32_t dim = 48) {
  SimParams p = SimParams::bench_fast();
  p.dim_x = dim;
  p.dim_y = dim;
  p.num_foi = 3;
  p.tcell_initial_delay = 30;
  p.tcell_generation_rate = 6.0;
  p.incubation_period = 10;
  return p;
}

TEST(ReferenceSim, EpiCountsAlwaysSumToGridSize) {
  const SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim sim(p, foi_uniform_random(g, p.num_foi, p.seed));
  for (int s = 0; s < 150; ++s) {
    sim.step();
    const StepStats& st = sim.history().back();
    std::uint64_t total = 0;
    for (auto c : st.epi_counts) total += c;
    ASSERT_EQ(total, g.num_voxels());
  }
}

TEST(ReferenceSim, InfectionSpreadsAndImmuneSystemResponds) {
  const SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim sim(p, foi_uniform_random(g, p.num_foi, p.seed));
  sim.run(200);
  const StepStats& st = sim.history().back();
  EXPECT_GT(st.virus_total, 0.0);
  EXPECT_GT(st.chem_total, 0.0);
  EXPECT_GT(st.incubating() + st.expressing() + st.apoptotic() + st.dead(),
            0u);
  EXPECT_GT(st.tcells_tissue, 0u);  // extravasation happened
  EXPECT_GT(st.apoptotic() + st.dead(), 0u);
}

TEST(ReferenceSim, BindingsOccur) {
  // A run long enough for T cells to find expressing cells must show
  // binding (apoptotic cells exist while T cells are present).
  const SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim sim(p, foi_uniform_random(g, p.num_foi, p.seed));
  bool saw_apoptotic = false;
  for (int s = 0; s < 250 && !saw_apoptotic; ++s) {
    sim.step();
    saw_apoptotic = sim.history().back().apoptotic() > 0;
  }
  EXPECT_TRUE(saw_apoptotic);
}

TEST(ReferenceSim, AtMostOneTCellPerVoxelAndCountsMatch) {
  const SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim sim(p, foi_uniform_random(g, p.num_foi, p.seed));
  for (int s = 0; s < 120; ++s) {
    sim.step();
    std::uint64_t counted = 0;
    for (VoxelId v = 0; v < g.num_voxels(); ++v) {
      const VoxelState vs = sim.voxel(v);
      ASSERT_LE(vs.tcell, 1);
      if (vs.tcell) {
        counted++;
        ASSERT_GT(vs.tcell_timer + vs.tcell_bind, 0u);
      }
    }
    ASSERT_EQ(counted, sim.history().back().tcells_tissue);
  }
}

TEST(ReferenceSim, FieldsStayInUnitRange) {
  const SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim sim(p, foi_uniform_random(g, p.num_foi, p.seed));
  sim.run(100);
  for (VoxelId v = 0; v < g.num_voxels(); ++v) {
    const VoxelState vs = sim.voxel(v);
    ASSERT_GE(vs.virus, 0.0f);
    ASSERT_LE(vs.virus, 1.0f);
    ASSERT_GE(vs.chem, 0.0f);
    ASSERT_LE(vs.chem, 1.0f);
  }
}

TEST(ReferenceSim, EmptyVoxelsExcludeEverything) {
  SimParams p = fast(32);
  p.num_foi = 0;
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  // A vertical airway column through the middle.
  std::vector<VoxelId> empties;
  for (std::int32_t y = 0; y < 32; ++y) empties.push_back(g.to_id({16, y, 0}));
  // Seed next to the airway.
  ReferenceSim sim(p, {g.to_id({15, 16, 0})}, empties);
  sim.run(150);
  for (VoxelId v : empties) {
    const VoxelState vs = sim.voxel(v);
    ASSERT_EQ(vs.epi_state, EpiState::kEmpty);
    ASSERT_EQ(vs.tcell, 0);  // T cells never enter airways
  }
}

TEST(ReferenceSim, FoiOnEmptyVoxelRejected) {
  SimParams p = fast(16);
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  const VoxelId v = g.to_id({4, 4, 0});
  EXPECT_THROW(ReferenceSim(p, {v}, {v}), Error);
}

TEST(ReferenceSim, DeterministicForSameSeed) {
  const SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(g, p.num_foi, p.seed);
  ReferenceSim a(p, foi), b(p, foi);
  a.run(100);
  b.run(100);
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(a.history().back().tcells_tissue, b.history().back().tcells_tissue);
}

TEST(ReferenceSim, DifferentSeedsDiverge) {
  SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  const auto foi = foi_uniform_random(g, p.num_foi, 1);
  ReferenceSim a(p, foi);
  p.seed = p.seed + 1;
  ReferenceSim b(p, foi);
  a.run(60);
  b.run(60);
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(ReferenceSim, NoFoiMeansNothingHappens) {
  SimParams p = fast();
  p.num_foi = 0;
  ReferenceSim sim(p, {});
  sim.run(80);
  const StepStats& st = sim.history().back();
  EXPECT_EQ(st.virus_total, 0.0);
  EXPECT_EQ(st.tcells_tissue, 0u);
  EXPECT_EQ(st.healthy(),
            static_cast<std::uint64_t>(p.dim_x) * static_cast<std::uint64_t>(p.dim_y));
}

TEST(ReferenceSim, VirusMonotoneGrowthBeforeImmuneResponse) {
  SimParams p = fast();
  p.tcell_initial_delay = 1000000;  // no T cells ever
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim sim(p, foi_uniform_random(g, p.num_foi, p.seed));
  sim.run(150);
  const auto virus = series_virus(sim.history());
  // Once production outpaces decay the total should trend upward; compare
  // windows rather than every step (decay can dip early).
  EXPECT_GT(virus[149], virus[75]);
  EXPECT_GT(virus[75], virus[20]);
  EXPECT_EQ(sim.history().back().tcells_tissue, 0u);
}

TEST(ReferenceSim, ThreeDGridRuns) {
  SimParams p = fast(12);
  p.dim_z = 4;
  p.num_foi = 2;
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim sim(p, foi_uniform_random(g, p.num_foi, p.seed));
  sim.run(60);
  EXPECT_GT(sim.history().back().virus_total, 0.0);
}

TEST(ReferenceSim, VascularPoolFeedsTissue) {
  const SimParams p = fast();
  const Grid g(p.dim_x, p.dim_y, p.dim_z);
  ReferenceSim sim(p, foi_uniform_random(g, p.num_foi, p.seed));
  sim.run(250);
  std::uint64_t total_extrav = 0;
  for (const auto& st : sim.history()) total_extrav += st.extravasated;
  EXPECT_GT(total_extrav, 0u);
  EXPECT_GE(sim.vascular_pool(), 0.0);
}

}  // namespace
}  // namespace simcov
