// Performance model: pricing, phase accounting, the bulk-synchronous
// max-fold, and area-scale extrapolation.

#include <gtest/gtest.h>

#include "perfmodel/cost_model.hpp"

namespace simcov::perfmodel {
namespace {

MachineSpec spec() { return MachineSpec::perlmutter_like(); }

TEST(CostModel, ZeroSampleIsFree) {
  const CostModel m(spec(), Backend::kGpu, 4);
  EXPECT_DOUBLE_EQ(m.price(WorkSample{}), 0.0);
}

TEST(CostModel, GpuPricingMonotoneInEachCounter) {
  const CostModel m(spec(), Backend::kGpu, 4);
  WorkSample base;
  const double t0 = m.price(base);
  auto bump = [&](auto mutate) {
    WorkSample s = base;
    mutate(s);
    return m.price(s);
  };
  EXPECT_GT(bump([](WorkSample& s) { s.dev.kernel_launches = 10; }), t0);
  EXPECT_GT(bump([](WorkSample& s) { s.dev.threads_executed = 1000; }), t0);
  EXPECT_GT(bump([](WorkSample& s) { s.dev.global_read_bytes = 1 << 20; }), t0);
  EXPECT_GT(bump([](WorkSample& s) { s.dev.atomic_ops = 1000; }), t0);
  EXPECT_GT(bump([](WorkSample& s) { s.dev.h2d_bytes = 1 << 20; }), t0);
  EXPECT_GT(bump([](WorkSample& s) { s.comm.puts = 4; }), t0);
  EXPECT_GT(bump([](WorkSample& s) { s.comm.put_bytes = 1 << 20; }), t0);
  EXPECT_GT(bump([](WorkSample& s) { s.comm.reductions = 1; }), t0);
  EXPECT_GT(bump([](WorkSample& s) { s.comm.broadcasts = 1; }), t0);
  EXPECT_GT(bump([](WorkSample& s) { s.comm.broadcast_bytes = 1 << 20; }), t0);
}

TEST(CostModel, BroadcastsArePricedOnBothBackends) {
  // Regression: broadcasts used to be invisible to the perfmodel.
  WorkSample s;
  s.comm.broadcasts = 10;
  s.comm.broadcast_bytes = 1 << 20;
  EXPECT_GT(CostModel(spec(), Backend::kGpu, 4).price(s), 0.0);
  EXPECT_GT(CostModel(spec(), Backend::kCpu, 4).price(s), 0.0);
  // Like the reductions, latency grows with log2 of the world size.
  WorkSample lat;
  lat.comm.broadcasts = 100;
  const CostModel small(spec(), Backend::kGpu, 3);
  const CostModel big(spec(), Backend::kGpu, 63);
  EXPECT_NEAR(big.price(lat), 3.0 * small.price(lat), 1e-9);
}

TEST(CostModel, CpuPricingUsesCpuCounters) {
  const CostModel m(spec(), Backend::kCpu, 4);
  WorkSample s;
  s.dev.global_read_bytes = 1 << 30;  // GPU counters ignored on CPU
  EXPECT_DOUBLE_EQ(m.price(s), 0.0);
  s.cpu_voxel_updates = 1000;
  EXPECT_GT(m.price(s), 0.0);
}

TEST(CostModel, MemPenaltyScalesTrafficAndAtomics) {
  const CostModel m(spec(), Backend::kGpu, 4);
  WorkSample s;
  s.dev.global_read_bytes = 1 << 20;
  s.dev.atomic_ops = 1000;
  const double fast = m.price(s);
  s.mem_penalty = 1.6;
  EXPECT_NEAR(m.price(s), 1.6 * fast, 1e-12);
}

TEST(CostModel, AreaScaleExtrapolatesPerVoxelWork) {
  WorkSample s;
  s.cpu_voxel_updates = 1000;
  const CostModel m1(spec(), Backend::kCpu, 4, 1.0);
  const CostModel m4(spec(), Backend::kCpu, 4, 4.0);
  EXPECT_NEAR(m4.price(s), 4.0 * m1.price(s), 1e-12);
  // Halo bytes scale with the boundary: sqrt(area).
  WorkSample h;
  h.comm.put_bytes = 1 << 20;
  EXPECT_NEAR(m4.price(h), 2.0 * m1.price(h), 1e-12);
}

TEST(CostModel, CollectivesScaleWithLogWorldSize) {
  WorkSample s;
  s.comm.reductions = 100;
  const CostModel small(spec(), Backend::kGpu, 3);
  const CostModel big(spec(), Backend::kGpu, 63);
  EXPECT_NEAR(big.price(s), 3.0 * small.price(s), 1e-9);  // log2(64)/log2(4)
}

TEST(CostModel, InvalidConstruction) {
  EXPECT_THROW(CostModel(spec(), Backend::kGpu, 0), Error);
  EXPECT_THROW(CostModel(spec(), Backend::kGpu, 4, 0.5), Error);
}

TEST(RankCostLog, AccumulatesPhasesPerStep) {
  const CostModel m(spec(), Backend::kCpu, 2);
  RankCostLog log(m);
  WorkSample s;
  s.cpu_voxel_updates = 100;
  log.add(Phase::kTCells, s);
  log.add(Phase::kTCells, s);  // same phase twice accumulates
  log.add(Phase::kReduceStats, s);
  log.end_step();
  log.end_step();  // an empty step
  ASSERT_EQ(log.num_steps(), 2u);
  EXPECT_NEAR(log.cost(0, Phase::kTCells), 2 * m.price(s), 1e-15);
  EXPECT_NEAR(log.cost(0, Phase::kReduceStats), m.price(s), 1e-15);
  EXPECT_DOUBLE_EQ(log.cost(1, Phase::kTCells), 0.0);
  EXPECT_THROW(log.cost(2, Phase::kTCells), Error);
}

TEST(Fold, TakesPerStepPerPhaseMax) {
  const CostModel m(spec(), Backend::kCpu, 2);
  RankCostLog a(m), b(m);
  WorkSample big, small;
  big.cpu_voxel_updates = 1000;
  small.cpu_voxel_updates = 10;
  // Step 0: a busy in tcells, b busy in reduce.
  a.add(Phase::kTCells, big);
  b.add(Phase::kTCells, small);
  a.add(Phase::kReduceStats, small);
  b.add(Phase::kReduceStats, big);
  a.end_step();
  b.end_step();
  std::vector<RankCostLog> logs;
  logs.push_back(a);
  logs.push_back(b);
  const RunCost rc = fold(std::span<const RankCostLog>(logs));
  const double expect = 2 * m.price(big);  // max in each phase is `big`
  EXPECT_NEAR(rc.total_s, expect, 1e-15);
  EXPECT_NEAR(rc.update_agents_s(), m.price(big), 1e-15);
  EXPECT_NEAR(rc.reduce_stats_s(), m.price(big), 1e-15);
}

TEST(Fold, RejectsMismatchedStepCounts) {
  const CostModel m(spec(), Backend::kCpu, 2);
  RankCostLog a(m), b(m);
  a.end_step();
  std::vector<RankCostLog> logs;
  logs.push_back(a);
  logs.push_back(b);
  EXPECT_THROW(fold(std::span<const RankCostLog>(logs)), Error);
}

TEST(Phases, NamesAndCategories) {
  EXPECT_STREQ(phase_name(Phase::kReduceStats), "reduce_stats");
  EXPECT_STREQ(phase_name(Phase::kTileSweep), "tile_sweep");
  EXPECT_TRUE(is_update_phase(Phase::kTCells));
  EXPECT_TRUE(is_update_phase(Phase::kHalo));
  EXPECT_FALSE(is_update_phase(Phase::kReduceStats));
}

}  // namespace
}  // namespace simcov::perfmodel
