#pragma once
// SIMCoV-CPU: the baseline parallel implementation (paper §2.2, §4).
//
// One PGAS rank per CPU core (the original runs one UPC++ process per
// core).  Each rank owns a sub-domain with a one-voxel ghost ring, tracks an
// *active list* of voxels that can possibly change, resolves T cell spatial
// competition with RPC round-trips to the voxel owner (bid + reply), and
// exchanges concentration boundary strips with bulk copies.  Statistics are
// reduced every step with a UPC++-style collective.
//
// The implementation reproduces the serial reference bit-for-bit for any
// rank count and decomposition (tests/equivalence_test.cpp); its
// communication and work counters feed the performance model.

#include <cstdint>
#include <vector>

#include "core/decomposition.hpp"
#include "core/params.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "pgas/comm_stats.hpp"
#include "perfmodel/cost_model.hpp"
#include "perfmodel/machine.hpp"

namespace simcov::cpu {

struct CpuSimOptions {
  int num_ranks = 4;
  Decomposition::Kind decomp = Decomposition::Kind::kBlock2D;
  bool record_digests = false;  ///< per-step full-state digests (tests)
  perfmodel::MachineSpec machine = perfmodel::MachineSpec::perlmutter_like();
  /// Modeled-time extrapolation to paper-scale grids (see CostModel).
  double area_scale = 1.0;
};

struct CpuRunResult {
  TimeSeries history;                       ///< reduced stats per step
  std::vector<std::uint64_t> digests;       ///< per step, if recorded
  perfmodel::RunCost cost;                  ///< modeled bulk-synchronous time
  std::uint64_t total_rpcs = 0;
  std::uint64_t total_put_bytes = 0;
  /// Full per-rank communication counters (including the per-destination
  /// comm matrix in CommStats::peers), indexed by rank id.
  std::vector<pgas::CommStats> comm_by_rank;
};

/// Runs the full simulation SPMD over options.num_ranks ranks and returns
/// the reduced history plus modeled cost.
CpuRunResult run_cpu_sim(const SimParams& params,
                         const std::vector<VoxelId>& foi,
                         const CpuSimOptions& options,
                         const std::vector<VoxelId>& empty_voxels = {});

}  // namespace simcov::cpu
