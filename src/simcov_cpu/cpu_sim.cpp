#include "simcov_cpu/cpu_sim.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <mutex>
#include <span>
#include <unordered_map>

#include "core/grid.hpp"
#include "core/rules.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_clock.hpp"
#include "obs/trace.hpp"
#include "pgas/runtime.hpp"
#include "util/error.hpp"

namespace simcov::cpu {

namespace {

constexpr bool transient_epi(EpiState s) {
  return s == EpiState::kIncubating || s == EpiState::kExpressing ||
         s == EpiState::kApoptotic;
}

/// Channel numbering for halo strips: face * 3 + payload kind.
enum HaloKind : int { kStatePack = 0, kVirusTmp = 1, kChemTmp = 2 };
constexpr int channel_of(int face, int kind) { return face * 3 + kind; }

/// Bytes per voxel in the end-of-step state pack: epi(1) + virus(4) + chem(4).
constexpr std::size_t kStatePackBytes = 9;

struct RemoteIntent {
  std::uint8_t kind;          ///< rules::IntentKind
  VoxelId target;             ///< global id, owned by the receiving rank
  VoxelId source;             ///< global id of the bidding T cell's voxel
  std::uint64_t bid;
  std::uint32_t timer;        ///< T cell tissue life (carried on move)
  int source_rank;
};

class CpuRank;
using Registry = std::vector<CpuRank*>;

/// Per-rank SIMCoV-CPU simulation state and step logic.
class CpuRank {
 public:
  CpuRank(pgas::Rank& rank, const SimParams& params, const Decomposition& dec,
          const std::vector<VoxelId>& foi,
          const std::vector<VoxelId>& empties,
          const perfmodel::CostModel& model, Registry& registry)
      : rank_(rank), params_(params),
        grid_(params.dim_x, params.dim_y, params.dim_z),
        sub_(dec.sub(rank.id())), rng_(params.seed), registry_(registry),
        cost_log_(model), pclock_(rank.id()) {
    // 2D or 3D: the rank decomposition cuts x/y and keeps z whole (like
    // the original SIMCoV-CPU's 2D decomposition of a 3D volume), so all
    // cross-rank interactions stay on x/y faces; z neighbours are local.
    w_ = sub_.extent.x;
    h_ = sub_.extent.y;
    dz_ = sub_.extent.z;
    pw_ = w_ + 2;
    plane_ = static_cast<std::int32_t>(pw_ * (h_ + 2));
    const std::size_t n =
        static_cast<std::size_t>(plane_) * static_cast<std::size_t>(dz_);
    // Ghost ring starts as kEmpty so un-exchanged ghosts never look like
    // tissue; real values arrive with the first halo exchange.
    epi_state_.assign(n, EpiState::kEmpty);
    epi_timer_.assign(n, 0);
    tcell_.assign(n, 0);
    tcell_timer_.assign(n, 0);
    tcell_bind_.assign(n, 0);
    virus_.assign(n, 0.0f);
    chem_.assign(n, 0.0f);
    tmp_.assign(n, 0.0f);
    occupancy_.assign(n, 0);
    active_.assign(n, 0);
    in_list_.assign(n, 0);
    for (std::int32_t z = 0; z < dz_; ++z) {
      for (std::int32_t y = 0; y < h_; ++y) {
        for (std::int32_t x = 0; x < w_; ++x) {
          epi_state_[static_cast<std::size_t>(lidx(x, y, z))] =
              EpiState::kHealthy;
        }
      }
    }
    epi_counts_[static_cast<std::size_t>(EpiState::kHealthy)] =
        static_cast<std::uint64_t>(w_) * static_cast<std::uint64_t>(h_) *
        static_cast<std::uint64_t>(dz_);

    for (VoxelId v : empties) {
      const Coord c = grid_.to_coord(v);
      if (!sub_.contains(c)) continue;
      auto& s = epi_state_[static_cast<std::size_t>(lidx_of(c))];
      if (s != EpiState::kEmpty) {
        s = EpiState::kEmpty;
        --epi_counts_[static_cast<std::size_t>(EpiState::kHealthy)];
        ++epi_counts_[static_cast<std::size_t>(EpiState::kEmpty)];
      }
    }
    for (VoxelId v : foi) {
      const Coord c = grid_.to_coord(v);
      if (!sub_.contains(c)) continue;
      virus_[static_cast<std::size_t>(lidx_of(c))] = params_.initial_virus;
    }

    register_channels();
  }

  // Non-copyable: peers hold pointers to us through the registry.
  CpuRank(const CpuRank&) = delete;
  CpuRank& operator=(const CpuRank&) = delete;

  /// Initial halo exchange + initial active list.  Call after the registry
  /// is fully populated (one barrier after construction).
  void initialize() {
    obs::ScopedSpan span("initialize", rank_.id());
    exchange_state_halo();
    for (std::int32_t z = 0; z < dz_; ++z) {
      for (std::int32_t y = 0; y < h_; ++y) {
        for (std::int32_t x = 0; x < w_; ++x) {
          if (is_active_voxel(lidx(x, y, z))) {
            mark_active_with_neighbours(x, y, z);
          }
        }
      }
    }
    scan_ghosts_for_activation();
    std::sort(active_list_.begin(), active_list_.end());
  }

  void step() {
    StepStats stats;
    const bool emit_metrics = obs::metrics().enabled();
    if (emit_metrics) step_comm_snapshot_ = rank_.stats();
    pclock_.begin_step();
    snapshot_counters();
    phase_tcells(stats);
    record_phase(perfmodel::Phase::kTCells);
    phase_epithelial();
    record_phase(perfmodel::Phase::kEpithelial);
    phase_concentrations(stats);
    record_phase(perfmodel::Phase::kConcentrations);
    rebuild_active_list();
    exchange_state_halo();
    scan_ghosts_for_activation();
    record_phase(perfmodel::Phase::kHalo);
    phase_reduce(stats);
    record_phase(perfmodel::Phase::kReduceStats);
    pclock_.end_step();
    if (emit_metrics) emit_step_metrics();
    cost_log_.end_step();
    history_.push_back(stats);
    ++step_;
  }

  std::uint64_t local_digest() const {
    std::uint64_t d = 0;
    for (std::int32_t z = 0; z < dz_; ++z) {
      for (std::int32_t y = 0; y < h_; ++y) {
        for (std::int32_t x = 0; x < w_; ++x) {
          const std::size_t v = static_cast<std::size_t>(lidx(x, y, z));
          d ^= rules::voxel_digest(gid(x, y, z), epi_state_[v], epi_timer_[v],
                                   tcell_[v], tcell_timer_[v], tcell_bind_[v],
                                   virus_[v], chem_[v]);
        }
      }
    }
    return d;
  }

  const TimeSeries& history() const { return history_; }
  const perfmodel::RankCostLog& cost_log() const { return cost_log_; }

  // ---- RPC handlers (run on this rank's thread during progress()) -------
  void on_remote_intent(const RemoteIntent& ri) {
    auto& field =
        (ri.kind == static_cast<std::uint8_t>(rules::IntentKind::kMove))
            ? bid_move_
            : bid_bind_;
    auto [it, inserted] = field.try_emplace(ri.target, ri.bid);
    if (!inserted) it->second = std::max(it->second, ri.bid);
    remote_intents_.push_back(ri);
    work_.cpu_list_ops += 2;
  }

  void on_win_reply(std::uint8_t kind, VoxelId source) {
    const std::size_t vi =
        static_cast<std::size_t>(lidx_of(grid_.to_coord(source)));
    if (kind == static_cast<std::uint8_t>(rules::IntentKind::kMove)) {
      // Our T cell moved into a neighbour rank's territory: erase it here.
      tcell_[vi] = 0;
      tcell_timer_[vi] = 0;
    } else {
      tcell_bind_[vi] =
          static_cast<std::uint32_t>(params_.tcell_binding_period);
    }
    work_.cpu_list_ops += 1;
  }

 private:
  // ---- indexing -----------------------------------------------------------
  std::int32_t lidx(std::int32_t x, std::int32_t y, std::int32_t z) const {
    // x in [-1, w_], y in [-1, h_] (per-plane ghost ring); z in [0, dz_).
    return z * plane_ + (y + 1) * pw_ + (x + 1);
  }
  std::int32_t lidx_of(const Coord& c) const {
    return lidx(c.x - sub_.origin.x, c.y - sub_.origin.y, c.z);
  }
  VoxelId gid(std::int32_t x, std::int32_t y, std::int32_t z) const {
    return grid_.to_id({sub_.origin.x + x, sub_.origin.y + y, z});
  }
  struct LocalXyz {
    std::int32_t x, y, z;
  };
  LocalXyz local_xyz(std::int32_t v) const {
    const std::int32_t z = v / plane_;
    const std::int32_t rem = v % plane_;
    return {rem % pw_ - 1, rem / pw_ - 1, z};
  }
  bool owns_global(const Coord& c) const { return sub_.contains(c); }

  // ---- setup ---------------------------------------------------------------
  void register_channels() {
    for (int f = 0; f < kNumFaces; ++f) {
      if (sub_.neighbour[static_cast<std::size_t>(f)] < 0) continue;
      const std::size_t len = face_len(f);
      rank_.register_channel(channel_of(f, kStatePack), len * kStatePackBytes);
      rank_.register_channel(channel_of(f, kVirusTmp), len * sizeof(float));
      rank_.register_channel(channel_of(f, kChemTmp), len * sizeof(float));
    }
  }

  std::size_t face_len2d(int face) const {
    return (face == kFaceXNeg || face == kFaceXPos)
               ? static_cast<std::size_t>(h_)
               : static_cast<std::size_t>(w_);
  }
  /// Strip length of a face: one row per z plane.
  std::size_t face_len(int face) const {
    return face_len2d(face) * static_cast<std::size_t>(dz_);
  }

  /// The i-th local voxel of this rank's boundary slab along `face`
  /// (i enumerates z-major: plane z = i / face_len2d).
  std::int32_t boundary_idx(int face, std::size_t i) const {
    const auto z = static_cast<std::int32_t>(i / face_len2d(face));
    const auto j = static_cast<std::int32_t>(i % face_len2d(face));
    switch (face) {
      case kFaceXNeg: return lidx(0, j, z);
      case kFaceXPos: return lidx(w_ - 1, j, z);
      case kFaceYNeg: return lidx(j, 0, z);
      default: return lidx(j, h_ - 1, z);
    }
  }
  /// The i-th ghost voxel just outside `face`.
  std::int32_t ghost_idx(int face, std::size_t i) const {
    const auto z = static_cast<std::int32_t>(i / face_len2d(face));
    const auto j = static_cast<std::int32_t>(i % face_len2d(face));
    switch (face) {
      case kFaceXNeg: return lidx(-1, j, z);
      case kFaceXPos: return lidx(w_, j, z);
      case kFaceYNeg: return lidx(j, -1, z);
      default: return lidx(j, h_, z);
    }
  }
  static int opposite(int face) { return face ^ 1; }

  // ---- active list ----------------------------------------------------------
  bool is_active_voxel(std::int32_t v) const {
    const std::size_t i = static_cast<std::size_t>(v);
    return virus_[i] > 0.0f || chem_[i] > 0.0f || tcell_[i] != 0 ||
           transient_epi(epi_state_[i]);
  }

  void mark_active(std::int32_t x, std::int32_t y, std::int32_t z) {
    if (x < 0 || x >= w_ || y < 0 || y >= h_ || z < 0 || z >= dz_) {
      return;  // ghosts aren't ours; z never leaves the rank
    }
    const std::size_t v = static_cast<std::size_t>(lidx(x, y, z));
    if (!active_[v]) {
      active_[v] = 1;
      active_list_.push_back(static_cast<std::int32_t>(v));
      ++work_.cpu_list_ops;
    }
  }

  void mark_active_with_neighbours(std::int32_t x, std::int32_t y,
                                   std::int32_t z) {
    mark_active(x, y, z);
    mark_active(x - 1, y, z);
    mark_active(x + 1, y, z);
    mark_active(x, y - 1, z);
    mark_active(x, y + 1, z);
    if (dz_ > 1) {
      mark_active(x, y, z - 1);
      mark_active(x, y, z + 1);
    }
  }

  void rebuild_active_list() {
    std::vector<std::int32_t> old;
    old.swap(active_list_);
    for (std::int32_t v : old) active_[static_cast<std::size_t>(v)] = 0;
    work_.cpu_list_ops += old.size();
    for (std::int32_t v : old) {
      if (!is_active_voxel(v)) continue;
      const auto c = local_xyz(v);
      mark_active_with_neighbours(c.x, c.y, c.z);
    }
    for (std::int32_t v : tcell_list_) {
      const auto c = local_xyz(v);
      mark_active_with_neighbours(c.x, c.y, c.z);
    }
    std::sort(active_list_.begin(), active_list_.end());
    work_.cpu_list_ops += active_list_.size();
  }

  // ---- halo exchange ----------------------------------------------------------
  void exchange_state_halo() {
    std::vector<std::byte> buf;
    for (int f = 0; f < kNumFaces; ++f) {
      const int nb = sub_.neighbour[static_cast<std::size_t>(f)];
      if (nb < 0) continue;
      const std::size_t len = face_len(f);
      buf.resize(len * kStatePackBytes);
      for (std::size_t i = 0; i < len; ++i) {
        const std::size_t v = static_cast<std::size_t>(boundary_idx(f, i));
        std::byte* p = buf.data() + i * kStatePackBytes;
        p[0] = static_cast<std::byte>(epi_state_[v]);
        std::memcpy(p + 1, &virus_[v], sizeof(float));
        std::memcpy(p + 5, &chem_[v], sizeof(float));
      }
      rank_.put(nb, channel_of(opposite(f), kStatePack), buf);
    }
    rank_.barrier();
    for (int f = 0; f < kNumFaces; ++f) {
      const int nb = sub_.neighbour[static_cast<std::size_t>(f)];
      if (nb < 0) continue;
      const std::size_t len = face_len(f);
      auto data = rank_.channel(channel_of(f, kStatePack));
      for (std::size_t i = 0; i < len; ++i) {
        const std::size_t v = static_cast<std::size_t>(ghost_idx(f, i));
        const std::byte* p = data.data() + i * kStatePackBytes;
        epi_state_[v] = static_cast<EpiState>(p[0]);
        std::memcpy(&virus_[v], p + 1, sizeof(float));
        std::memcpy(&chem_[v], p + 5, sizeof(float));
      }
    }
    rank_.barrier();
  }

  void exchange_tmp_halo(int kind) {
    std::vector<float> buf;
    for (int f = 0; f < kNumFaces; ++f) {
      const int nb = sub_.neighbour[static_cast<std::size_t>(f)];
      if (nb < 0) continue;
      const std::size_t len = face_len(f);
      buf.resize(len);
      for (std::size_t i = 0; i < len; ++i) {
        buf[i] = tmp_[static_cast<std::size_t>(boundary_idx(f, i))];
      }
      rank_.put(nb, channel_of(opposite(f), kind),
                std::as_bytes(std::span<const float>(buf)));
    }
    rank_.barrier();
    for (int f = 0; f < kNumFaces; ++f) {
      const int nb = sub_.neighbour[static_cast<std::size_t>(f)];
      if (nb < 0) continue;
      const std::size_t len = face_len(f);
      auto data = rank_.channel(channel_of(f, kind));
      for (std::size_t i = 0; i < len; ++i) {
        float x;
        std::memcpy(&x, data.data() + i * sizeof(float), sizeof(float));
        const std::size_t v = static_cast<std::size_t>(ghost_idx(f, i));
        tmp_[v] = x;
        // A neighbour's boundary just became non-zero: the adjacent own
        // voxel must join this step's diffusion pass (ghost activation).
        if (x > 0.0f) {
          const auto c = local_xyz(boundary_idx(f, i));
          mark_active(c.x, c.y, c.z);
        }
      }
    }
    rank_.barrier();
  }

  void scan_ghosts_for_activation() {
    for (int f = 0; f < kNumFaces; ++f) {
      if (sub_.neighbour[static_cast<std::size_t>(f)] < 0) continue;
      const std::size_t len = face_len(f);
      for (std::size_t i = 0; i < len; ++i) {
        const std::size_t g = static_cast<std::size_t>(ghost_idx(f, i));
        if (virus_[g] > 0.0f || chem_[g] > 0.0f ||
            transient_epi(epi_state_[g])) {
          const auto c = local_xyz(boundary_idx(f, i));
          mark_active(c.x, c.y, c.z);
        }
      }
    }
  }

  // ---- phases -----------------------------------------------------------------
  void phase_tcells(StepStats& stats) {
    bid_move_.clear();
    bid_bind_.clear();
    remote_intents_.clear();
    arrivals_.clear();

    // Aging / unbinding; occupancy snapshot ("stage start") is taken after
    // aging, so cells that die this step do not block movers.
    struct LocalIntent {
      std::int32_t source;  ///< local idx
      std::uint32_t timer;
      rules::Intent intent;
    };
    std::vector<LocalIntent> local_intents;
    for (std::int32_t v : tcell_list_) {
      const std::size_t vi = static_cast<std::size_t>(v);
      ++work_.cpu_voxel_updates;
      bool eligible = false;
      if (tcell_bind_[vi] > 0) {
        --tcell_bind_[vi];
      } else if (tcell_timer_[vi] <= 1) {
        tcell_[vi] = 0;
        tcell_timer_[vi] = 0;
      } else {
        --tcell_timer_[vi];
        eligible = true;
      }
      occupancy_[vi] = tcell_[vi];
      if (!eligible) continue;

      const auto c = local_xyz(v);
      const Coord gc{sub_.origin.x + c.x, sub_.origin.y + c.y, c.z};
      rules::NeighbourView nb;
      std::array<Coord, 6> coords;
      nb.count = grid_.neighbours(gc, coords);
      for (int i = 0; i < nb.count; ++i) {
        const Coord& nc = coords[static_cast<std::size_t>(i)];
        nb.ids[static_cast<std::size_t>(i)] = grid_.to_id(nc);
        nb.epi[static_cast<std::size_t>(i)] =
            epi_state_[static_cast<std::size_t>(lidx_of(nc))];
      }
      const rules::Intent intent =
          rules::tcell_intent(rng_, step_, grid_.to_id(gc), epi_state_[vi], nb);
      if (intent.kind == rules::IntentKind::kNone) continue;

      const Coord tc = grid_.to_coord(intent.target);
      if (owns_global(tc)) {
        auto& field = (intent.kind == rules::IntentKind::kMove) ? bid_move_
                                                                : bid_bind_;
        auto [it, inserted] = field.try_emplace(intent.target, intent.bid);
        if (!inserted) it->second = std::max(it->second, intent.bid);
        local_intents.push_back({v, tcell_timer_[vi], intent});
        work_.cpu_list_ops += 2;
      } else {
        // Cross-boundary competition: RPC the bid to the owner.
        const int owner_rank = owner_of(tc);
        RemoteIntent ri{static_cast<std::uint8_t>(intent.kind), intent.target,
                        grid_.to_id(gc), intent.bid, tcell_timer_[vi],
                        rank_.id()};
        CpuRank* owner = registry_[static_cast<std::size_t>(owner_rank)];
        rank_.rpc(owner_rank, [owner, ri] { owner->on_remote_intent(ri); },
                  sizeof(RemoteIntent));
      }
    }
    rank_.rpc_quiescence();  // all bids delivered

    // Resolution: the owner of each contested voxel decides; winners of
    // remote intents get a reply RPC (the "communicate the result" round).
    for (const auto& li : local_intents) {
      if (!apply_local_winner(li.intent, li.timer)) continue;
      const std::size_t src = static_cast<std::size_t>(li.source);
      if (li.intent.kind == rules::IntentKind::kMove) {
        tcell_[src] = 0;
        tcell_timer_[src] = 0;
      } else {
        tcell_bind_[src] =
            static_cast<std::uint32_t>(params_.tcell_binding_period);
      }
    }
    for (const auto& ri : remote_intents_) {
      const rules::Intent intent{static_cast<rules::IntentKind>(ri.kind),
                                 ri.target, ri.bid};
      if (!apply_local_winner(intent, ri.timer)) continue;
      CpuRank* src = registry_[static_cast<std::size_t>(ri.source_rank)];
      const std::uint8_t kind = ri.kind;
      const VoxelId source = ri.source;
      rank_.rpc(ri.source_rank,
                [src, kind, source] { src->on_win_reply(kind, source); },
                /*approx_bytes=*/16);
    }
    rank_.rpc_quiescence();  // all replies delivered

    // Extravasation: globally keyed attempts, applied by the voxel owner.
    const std::uint64_t attempts = rules::num_extravasation_attempts(
        pool_, params_.max_extravasate_per_step);
    std::uint64_t successes = 0;
    for (std::uint64_t i = 0; i < attempts; ++i) {
      ++work_.cpu_list_ops;
      const VoxelId u =
          rules::attempt_voxel(rng_, step_, i, grid_.num_voxels());
      const Coord uc = grid_.to_coord(u);
      if (!owns_global(uc)) continue;
      const std::size_t ui = static_cast<std::size_t>(lidx_of(uc));
      if (!rules::attempt_accepted(rng_, step_, i, chem_[ui])) continue;
      if (epi_state_[ui] == EpiState::kEmpty) continue;
      if (tcell_[ui]) continue;
      tcell_[ui] = 1;
      tcell_timer_[ui] =
          static_cast<std::uint32_t>(params_.tcell_tissue_period);
      tcell_bind_[ui] = 0;
      arrivals_.push_back(static_cast<std::int32_t>(ui));
      ++successes;
    }
    stats.extravasated = successes;

    // Rebuild the T cell list (dedup via in_list_: an arrival's voxel may
    // coincide with a stale old-list entry whose occupant died or left).
    std::vector<std::int32_t> candidates;
    candidates.swap(tcell_list_);
    candidates.insert(candidates.end(), arrivals_.begin(), arrivals_.end());
    for (std::int32_t v : candidates) {
      const std::size_t vi = static_cast<std::size_t>(v);
      if (tcell_[vi] && !in_list_[vi]) {
        in_list_[vi] = 1;
        tcell_list_.push_back(v);
      }
    }
    for (std::int32_t v : tcell_list_) {
      in_list_[static_cast<std::size_t>(v)] = 0;
    }
    // Occupancy snapshots only exist at candidate positions; reset them so
    // stale entries cannot block movers in later steps.
    for (std::int32_t v : candidates) {
      occupancy_[static_cast<std::size_t>(v)] = 0;
    }
    work_.cpu_list_ops += 2 * candidates.size();
  }

  /// Applies the target-side effect if (intent, bid) wins at a voxel this
  /// rank owns.  Returns true on a win (caller handles the source side).
  bool apply_local_winner(const rules::Intent& intent, std::uint32_t timer) {
    const std::size_t t =
        static_cast<std::size_t>(lidx_of(grid_.to_coord(intent.target)));
    if (intent.kind == rules::IntentKind::kMove) {
      auto it = bid_move_.find(intent.target);
      if (it == bid_move_.end() || it->second != intent.bid) return false;
      if (occupancy_[t]) return false;  // ran into another T cell
      tcell_[t] = 1;
      tcell_timer_[t] = timer;
      tcell_bind_[t] = 0;
      arrivals_.push_back(static_cast<std::int32_t>(t));
      return true;
    }
    auto it = bid_bind_.find(intent.target);
    if (it == bid_bind_.end() || it->second != intent.bid) return false;
    if (epi_state_[t] != EpiState::kExpressing) return false;
    epi_state_[t] = EpiState::kApoptotic;
    epi_timer_[t] = rules::sample_period(rng_, step_, intent.target,
                                         RngStream::kApoptosisPeriod,
                                         params_.apoptosis_period);
    --epi_counts_[static_cast<std::size_t>(EpiState::kExpressing)];
    ++epi_counts_[static_cast<std::size_t>(EpiState::kApoptotic)];
    return true;
  }

  int owner_of(const Coord& c) const {
    // Only face neighbours are reachable (von Neumann interactions, ghost
    // width 1): derive the rank from the crossed face.
    if (c.x < sub_.origin.x) return sub_.neighbour[kFaceXNeg];
    if (c.x >= sub_.origin.x + sub_.extent.x) return sub_.neighbour[kFaceXPos];
    if (c.y < sub_.origin.y) return sub_.neighbour[kFaceYNeg];
    return sub_.neighbour[kFaceYPos];
  }

  void phase_epithelial() {
    for (std::int32_t v : active_list_) {
      const std::size_t vi = static_cast<std::size_t>(v);
      const EpiState s = epi_state_[vi];
      if (s == EpiState::kEmpty || s == EpiState::kDead) continue;
      ++work_.cpu_voxel_updates;
      const auto c = local_xyz(v);
      const rules::EpiUpdate u = rules::update_epithelial(
          rng_, step_, gid(c.x, c.y, c.z), s, epi_timer_[vi], virus_[vi],
          params_);
      if (u.state != s) {
        --epi_counts_[static_cast<std::size_t>(s)];
        ++epi_counts_[static_cast<std::size_t>(u.state)];
      }
      epi_state_[vi] = u.state;
      epi_timer_[vi] = u.timer;
    }
  }

  void phase_concentrations(StepStats& stats) {
    run_field(virus_, [](EpiState s) { return rules::produces_virus(s); },
              params_.virus_production, params_.virus_decay,
              params_.virus_diffusion, params_.min_virus, kVirusTmp);
    run_field(chem_, [](EpiState s) { return rules::produces_chem(s); },
              params_.chem_production, params_.chem_decay,
              params_.chem_diffusion, params_.min_chem, kChemTmp);

    // Field totals: inactive voxels are exactly zero, so summing the active
    // list equals the full-grid sum.
    for (std::int32_t v : active_list_) {
      const std::size_t vi = static_cast<std::size_t>(v);
      stats.virus_total += static_cast<double>(virus_[vi]);
      stats.chem_total += static_cast<double>(chem_[vi]);
      ++work_.cpu_voxel_updates;
    }
  }

  template <typename ProducesFn>
  void run_field(std::vector<float>& field, ProducesFn produces,
                 double production, double decay, double diffusion,
                 double floor_eps, int tmp_kind) {
    // Pass 1: production + decay into tmp (tmp is all-zero elsewhere).
    for (std::int32_t v : active_list_) {
      const std::size_t vi = static_cast<std::size_t>(v);
      tmp_[vi] = rules::produce_decay(field[vi], produces(epi_state_[vi]),
                                      production, decay);
      ++work_.cpu_voxel_updates;
    }
    // Boundary tmp strips to neighbours (may extend the active list when a
    // neighbour's boundary became non-zero this step).
    exchange_tmp_halo(tmp_kind);
    // Pass 2: diffusion over the (possibly extended) active list; results
    // staged so in-list neighbours read pre-diffusion tmp values.
    diffused_.clear();
    for (std::int32_t v : active_list_) {
      const std::size_t vi = static_cast<std::size_t>(v);
      const auto c = local_xyz(v);
      const Coord gc{sub_.origin.x + c.x, sub_.origin.y + c.y, c.z};
      std::array<Coord, 6> coords;
      const int cnt = grid_.neighbours(gc, coords);
      double sum = 0.0;
      for (int i = 0; i < cnt; ++i) {
        sum += static_cast<double>(tmp_[static_cast<std::size_t>(
            lidx_of(coords[static_cast<std::size_t>(i)]))]);
      }
      diffused_.push_back(
          rules::diffuse(tmp_[vi], sum, cnt, diffusion, floor_eps));
      ++work_.cpu_voxel_updates;
    }
    for (std::size_t k = 0; k < active_list_.size(); ++k) {
      field[static_cast<std::size_t>(active_list_[k])] = diffused_[k];
    }
    // Re-zero tmp (interior writes + ghost strips) for the next field.
    for (std::int32_t v : active_list_) {
      tmp_[static_cast<std::size_t>(v)] = 0.0f;
    }
    for (int f = 0; f < kNumFaces; ++f) {
      if (sub_.neighbour[static_cast<std::size_t>(f)] < 0) continue;
      for (std::size_t i = 0; i < face_len(f); ++i) {
        tmp_[static_cast<std::size_t>(ghost_idx(f, i))] = 0.0f;
      }
    }
    work_.cpu_list_ops += active_list_.size();
  }

  void phase_reduce(StepStats& stats) {
    for (int s = 0; s < kNumEpiStates; ++s) {
      stats.epi_counts[static_cast<std::size_t>(s)] =
          epi_counts_[static_cast<std::size_t>(s)];
    }
    stats.tcells_tissue = tcell_list_.size();
    const auto flat = stats.flatten();
    const auto reduced =
        rank_.allreduce_sum(std::span<const double>(flat.data(), flat.size()));
    std::array<double, StepStats::kFlatSize> arr{};
    std::copy(reduced.begin(), reduced.end(), arr.begin());
    stats = StepStats::unflatten(arr);
    pool_ = rules::pool_after_step(pool_, step_, params_, stats.extravasated);
    stats.tcells_vascular = pool_;
  }

  // ---- cost accounting ---------------------------------------------------------
  void snapshot_counters() {
    comm_snapshot_ = rank_.stats();
    work_ = {};
    step_voxel_updates_ = 0;
  }

  void record_phase(perfmodel::Phase phase) {
    perfmodel::WorkSample sample;
    sample.comm = rank_.stats().since(comm_snapshot_);
    sample.cpu_voxel_updates = work_.cpu_voxel_updates;
    sample.cpu_list_ops = work_.cpu_list_ops;
    cost_log_.add(phase, sample);
    comm_snapshot_ = rank_.stats();
    step_voxel_updates_ += work_.cpu_voxel_updates;
    work_ = {};
    // The modeled phases double as the measured trace spans (one vocabulary
    // for cost model and Perfetto track).
    pclock_.phase_end(perfmodel::phase_name(phase));
  }

  /// Per-step metric series: halo traffic, RPC volume, barrier skew, and
  /// the active-list working set.
  void emit_step_metrics() {
    auto& m = obs::metrics();
    const int r = rank_.id();
    const pgas::CommStats d = rank_.stats().since(step_comm_snapshot_);
    m.step_value("cpu.halo_bytes", r, step_, static_cast<double>(d.put_bytes));
    m.step_value("cpu.rpcs", r, step_, static_cast<double>(d.rpcs_sent));
    m.step_value("pgas.barrier_wait_ns", r, step_,
                 static_cast<double>(d.barrier_wait_ns));
    m.step_value("cpu.active_voxels", r, step_,
                 static_cast<double>(active_list_.size()));
    m.step_value("cpu.voxels_touched", r, step_,
                 static_cast<double>(step_voxel_updates_));
  }

  struct WorkCounters {
    std::uint64_t cpu_voxel_updates = 0;
    std::uint64_t cpu_list_ops = 0;
  };

  // ---- members -------------------------------------------------------------------
  pgas::Rank& rank_;
  SimParams params_;
  Grid grid_;
  Subdomain sub_;
  CounterRng rng_;
  Registry& registry_;

  std::int32_t w_ = 0, h_ = 0, dz_ = 1, pw_ = 0, plane_ = 0;
  std::uint64_t step_ = 0;
  double pool_ = 0.0;

  std::vector<EpiState> epi_state_;
  std::vector<std::uint32_t> epi_timer_;
  std::vector<std::uint8_t> tcell_;
  std::vector<std::uint32_t> tcell_timer_;
  std::vector<std::uint32_t> tcell_bind_;
  std::vector<float> virus_;
  std::vector<float> chem_;
  std::vector<float> tmp_;
  std::vector<std::uint8_t> occupancy_;
  std::vector<std::uint8_t> active_;
  std::vector<std::uint8_t> in_list_;

  std::vector<std::int32_t> active_list_;
  std::vector<std::int32_t> tcell_list_;
  std::vector<std::int32_t> arrivals_;
  std::vector<float> diffused_;

  std::unordered_map<VoxelId, std::uint64_t> bid_move_;
  std::unordered_map<VoxelId, std::uint64_t> bid_bind_;
  std::vector<RemoteIntent> remote_intents_;

  std::array<std::uint64_t, kNumEpiStates> epi_counts_{};

  TimeSeries history_;
  perfmodel::RankCostLog cost_log_;
  obs::PhaseClock pclock_;
  pgas::CommStats comm_snapshot_;
  pgas::CommStats step_comm_snapshot_;
  WorkCounters work_;
  std::uint64_t step_voxel_updates_ = 0;
};

}  // namespace

CpuRunResult run_cpu_sim(const SimParams& params,
                         const std::vector<VoxelId>& foi,
                         const CpuSimOptions& options,
                         const std::vector<VoxelId>& empty_voxels) {
  params.validate();
  SIMCOV_REQUIRE(options.num_ranks >= 1, "need at least one rank");
  const Grid grid(params.dim_x, params.dim_y, params.dim_z);
  const Decomposition dec(grid, options.num_ranks, options.decomp);
  const perfmodel::CostModel model(options.machine, perfmodel::Backend::kCpu,
                                   options.num_ranks, options.area_scale);

  pgas::Runtime rt(options.num_ranks);
  Registry registry(static_cast<std::size_t>(options.num_ranks), nullptr);
  CpuRunResult result;
  std::vector<const perfmodel::RankCostLog*> logs(
      static_cast<std::size_t>(options.num_ranks));

  rt.run([&](pgas::Rank& rank) {
    CpuRank sim(rank, params, dec, foi, empty_voxels, model, registry);
    registry[static_cast<std::size_t>(rank.id())] = &sim;
    // SPMD sanity: rank 0 broadcasts a digest of its parameter set and every
    // rank checks its own copy against it.  Setup traffic happens before the
    // first step's counter snapshot, so this stays outside the modeled
    // per-phase costs.
    const std::uint64_t pdigest = std::hash<std::string>{}(params.summary());
    SIMCOV_REQUIRE(rank.broadcast_value<std::uint64_t>(0, pdigest) == pdigest,
                   "ranks disagree on the simulation parameter set");
    rank.barrier();
    sim.initialize();
    rank.barrier();

    std::vector<std::uint64_t> digests;
    for (std::int64_t s = 0; s < params.num_steps; ++s) {
      sim.step();
      if (options.record_digests) {
        digests.push_back(rank.allreduce_xor(sim.local_digest()));
      }
    }
    rank.barrier();
    if (rank.id() == 0) {
      result.history = sim.history();
      result.digests = std::move(digests);
    }
    logs[static_cast<std::size_t>(rank.id())] = &sim.cost_log();
    rank.barrier();
    if (rank.id() == 0) {
      result.cost =
          perfmodel::fold(std::span<const perfmodel::RankCostLog* const>(logs));
    }
    rank.barrier();  // keep all sims alive until the fold completes
  });

  const pgas::CommStats total = rt.total_stats();
  result.total_rpcs = total.rpcs_sent;
  result.total_put_bytes = total.put_bytes;
  result.comm_by_rank.reserve(static_cast<std::size_t>(options.num_ranks));
  for (int r = 0; r < options.num_ranks; ++r) {
    result.comm_by_rank.push_back(rt.rank_stats(r));
  }
  return result;
}

}  // namespace simcov::cpu
