#pragma once
// Per-step aggregate statistics and time-series utilities.
//
// SIMCoV logs these aggregates every timestep (total virions, T cells in
// tissue, epithelial cells per state, ...) to interpret infection dynamics;
// the correctness evaluation (§4.1, Fig. 5 and Table 2) compares them
// between backends.  Reducing them every step is also the workload that the
// fast-reduction optimization (§3.3) targets.

#include <array>
#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace simcov {

struct StepStats {
  double virus_total = 0.0;
  double chem_total = 0.0;
  std::array<std::uint64_t, kNumEpiStates> epi_counts{};  ///< by EpiState
  std::uint64_t tcells_tissue = 0;
  std::uint64_t extravasated = 0;  ///< successes this step
  double tcells_vascular = 0.0;    ///< pool size (replicated, not reduced)

  std::uint64_t healthy() const {
    return epi_counts[static_cast<std::size_t>(EpiState::kHealthy)];
  }
  std::uint64_t incubating() const {
    return epi_counts[static_cast<std::size_t>(EpiState::kIncubating)];
  }
  std::uint64_t expressing() const {
    return epi_counts[static_cast<std::size_t>(EpiState::kExpressing)];
  }
  std::uint64_t apoptotic() const {
    return epi_counts[static_cast<std::size_t>(EpiState::kApoptotic)];
  }
  std::uint64_t dead() const {
    return epi_counts[static_cast<std::size_t>(EpiState::kDead)];
  }

  /// Flattens to doubles for a PGAS reduction; unflatten() reverses.
  /// Layout: [virus, chem, epi_counts..., tcells_tissue, extravasated].
  static constexpr std::size_t kFlatSize = 2 + kNumEpiStates + 2;
  std::array<double, kFlatSize> flatten() const;
  static StepStats unflatten(const std::array<double, kFlatSize>& flat);
};

using TimeSeries = std::vector<StepStats>;

/// Extracts one statistic as a series.
std::vector<double> series_virus(const TimeSeries& ts);
std::vector<double> series_tcells(const TimeSeries& ts);
std::vector<double> series_apoptotic(const TimeSeries& ts);

/// Peak (max) of a series; 0 for empty input.
double peak(const std::vector<double>& series);

/// Percent agreement of two values as reported in Table 2:
/// 100 * (1 - |a-b| / max(|a|,|b|)); returns 100 when both are 0.
double percent_agreement(double a, double b);

/// Mean and sample standard deviation of a set of values.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd mean_std(const std::vector<double>& values);

/// Element-wise min/max/mean envelope over multiple trials (Fig. 5's shaded
/// band).  All series must have equal length.
struct Envelope {
  std::vector<double> min, max, mean;
};
Envelope envelope(const std::vector<std::vector<double>>& trials);

}  // namespace simcov
