#include "core/ode_baseline.hpp"

#include <cmath>

#include "util/error.hpp"

namespace simcov::ode {

void OdeParams::validate() const {
  SIMCOV_REQUIRE(n_cells > 0, "n_cells must be positive");
  SIMCOV_REQUIRE(beta >= 0 && eclipse_k >= 0 && delta >= 0 && kappa >= 0,
                 "rates must be non-negative");
  SIMCOV_REQUIRE(production >= 0 && clearance >= 0, "bad virion rates");
  SIMCOV_REQUIRE(dt > 0 && dt <= 1.0, "dt must be in (0, 1] steps");
  SIMCOV_REQUIRE(std::fmod(1.0, dt) < 1e-12 || std::fmod(1.0, dt) > 1.0 - 1e-12,
                 "dt must divide one simulation step evenly");
}

namespace {

struct Deriv {
  double t, i1, i2, v, e, dead;
};

Deriv derivatives(const OdeParams& p, const OdeState& raw, double time) {
  // Rates are evaluated on the non-negative part of the state: RK4 stages
  // can momentarily undershoot zero on stiff (aggressive-response)
  // parameterizations, and negative populations must not generate negative
  // rates (standard positivity guard for population ODEs).
  OdeState s = raw;
  s.t = std::max(s.t, 0.0);
  s.i1 = std::max(s.i1, 0.0);
  s.i2 = std::max(s.i2, 0.0);
  s.v = std::max(s.v, 0.0);
  s.e = std::max(s.e, 0.0);
  Deriv d{};
  const double infection = p.beta * s.t * s.v;
  const double killing = p.kappa * s.e * s.i2;
  d.t = -infection;
  d.i1 = infection - p.eclipse_k * s.i1;
  d.i2 = p.eclipse_k * s.i1 - p.delta * s.i2 - killing;
  d.v = p.production * s.i2 - p.clearance * s.v;
  const double source = (time >= p.effector_delay) ? p.effector_source : 0.0;
  d.e = source + p.effector_expand * s.e * s.i2 / (s.i2 + p.effector_half) -
        p.effector_decay * s.e;
  d.dead = p.delta * s.i2 + killing;
  return d;
}

OdeState advance(const OdeState& s, const Deriv& d, double h) {
  OdeState out;
  out.t = s.t + h * d.t;
  out.i1 = s.i1 + h * d.i1;
  out.i2 = s.i2 + h * d.i2;
  out.v = s.v + h * d.v;
  out.e = s.e + h * d.e;
  out.dead = s.dead + h * d.dead;
  return out;
}

Deriv combine(const Deriv& k1, const Deriv& k2, const Deriv& k3,
              const Deriv& k4) {
  auto mix = [](double a, double b, double c, double d) {
    return (a + 2 * b + 2 * c + d) / 6.0;
  };
  return {mix(k1.t, k2.t, k3.t, k4.t),     mix(k1.i1, k2.i1, k3.i1, k4.i1),
          mix(k1.i2, k2.i2, k3.i2, k4.i2), mix(k1.v, k2.v, k3.v, k4.v),
          mix(k1.e, k2.e, k3.e, k4.e),     mix(k1.dead, k2.dead, k3.dead, k4.dead)};
}

OdeState clamp_nonnegative(OdeState s) {
  s.t = std::max(s.t, 0.0);
  s.i1 = std::max(s.i1, 0.0);
  s.i2 = std::max(s.i2, 0.0);
  s.v = std::max(s.v, 0.0);
  s.e = std::max(s.e, 0.0);
  s.dead = std::max(s.dead, 0.0);
  return s;
}

}  // namespace

OdeState rk4_step(const OdeParams& p, const OdeState& s, double time,
                  double dt) {
  const Deriv k1 = derivatives(p, s, time);
  const Deriv k2 = derivatives(p, advance(s, k1, dt / 2), time + dt / 2);
  const Deriv k3 = derivatives(p, advance(s, k2, dt / 2), time + dt / 2);
  const Deriv k4 = derivatives(p, advance(s, k3, dt), time + dt);
  return clamp_nonnegative(advance(s, combine(k1, k2, k3, k4), dt));
}

std::vector<OdeState> integrate(const OdeParams& p, std::int64_t steps) {
  p.validate();
  SIMCOV_REQUIRE(steps >= 0, "steps must be non-negative");
  OdeState s;
  s.t = p.n_cells;
  s.v = p.v0;
  std::vector<OdeState> out;
  out.reserve(static_cast<std::size_t>(steps) + 1);
  out.push_back(s);
  const auto substeps = static_cast<int>(std::lround(1.0 / p.dt));
  double time = 0.0;
  for (std::int64_t step = 0; step < steps; ++step) {
    for (int k = 0; k < substeps; ++k) {
      s = rk4_step(p, s, time, p.dt);
      time += p.dt;
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace simcov::ode
