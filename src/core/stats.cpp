#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace simcov {

const char* epi_state_name(EpiState s) {
  switch (s) {
    case EpiState::kEmpty: return "empty";
    case EpiState::kHealthy: return "healthy";
    case EpiState::kIncubating: return "incubating";
    case EpiState::kExpressing: return "expressing";
    case EpiState::kApoptotic: return "apoptotic";
    case EpiState::kDead: return "dead";
  }
  return "?";
}

std::array<double, StepStats::kFlatSize> StepStats::flatten() const {
  std::array<double, kFlatSize> out{};
  out[0] = virus_total;
  out[1] = chem_total;
  for (int s = 0; s < kNumEpiStates; ++s) {
    out[static_cast<std::size_t>(2 + s)] =
        static_cast<double>(epi_counts[static_cast<std::size_t>(s)]);
  }
  out[2 + kNumEpiStates] = static_cast<double>(tcells_tissue);
  out[3 + kNumEpiStates] = static_cast<double>(extravasated);
  return out;
}

StepStats StepStats::unflatten(const std::array<double, kFlatSize>& flat) {
  StepStats st;
  st.virus_total = flat[0];
  st.chem_total = flat[1];
  for (int s = 0; s < kNumEpiStates; ++s) {
    st.epi_counts[static_cast<std::size_t>(s)] =
        static_cast<std::uint64_t>(flat[static_cast<std::size_t>(2 + s)] + 0.5);
  }
  st.tcells_tissue =
      static_cast<std::uint64_t>(flat[2 + kNumEpiStates] + 0.5);
  st.extravasated =
      static_cast<std::uint64_t>(flat[3 + kNumEpiStates] + 0.5);
  return st;
}

std::vector<double> series_virus(const TimeSeries& ts) {
  std::vector<double> out;
  out.reserve(ts.size());
  for (const auto& s : ts) out.push_back(s.virus_total);
  return out;
}

std::vector<double> series_tcells(const TimeSeries& ts) {
  std::vector<double> out;
  out.reserve(ts.size());
  for (const auto& s : ts) out.push_back(static_cast<double>(s.tcells_tissue));
  return out;
}

std::vector<double> series_apoptotic(const TimeSeries& ts) {
  std::vector<double> out;
  out.reserve(ts.size());
  for (const auto& s : ts) out.push_back(static_cast<double>(s.apoptotic()));
  return out;
}

double peak(const std::vector<double>& series) {
  double p = 0.0;
  for (double v : series) p = std::max(p, v);
  return p;
}

double percent_agreement(double a, double b) {
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) return 100.0;
  return 100.0 * (1.0 - std::abs(a - b) / denom);
}

MeanStd mean_std(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() < 2) return out;
  double ss = 0.0;
  for (double v : values) ss += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(ss / static_cast<double>(values.size() - 1));
  return out;
}

Envelope envelope(const std::vector<std::vector<double>>& trials) {
  SIMCOV_REQUIRE(!trials.empty(), "envelope needs at least one trial");
  const std::size_t n = trials[0].size();
  for (const auto& t : trials) {
    SIMCOV_REQUIRE(t.size() == n, "envelope trials differ in length");
  }
  Envelope env;
  env.min.assign(n, 0.0);
  env.max.assign(n, 0.0);
  env.mean.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double lo = trials[0][i], hi = trials[0][i], sum = 0.0;
    for (const auto& t : trials) {
      lo = std::min(lo, t[i]);
      hi = std::max(hi, t[i]);
      sum += t[i];
    }
    env.min[i] = lo;
    env.max[i] = hi;
    env.mean[i] = sum / static_cast<double>(trials.size());
  }
  return env;
}

}  // namespace simcov
