#pragma once
// Foci-of-infection (FOI) seeding.
//
// SIMCoV seeds infection at spatially distinct voxels; the number of FOI is
// a key performance variable (Fig. 8) because each focus becomes a growing
// active region.  The paper's discussion (§6) motivates CT-scan-derived
// initial conditions with "large patchy lesions" rather than points — the
// ct_lesions generator below synthesizes that scenario for the lung_slice
// example and the stress benches.

#include <cstdint>
#include <vector>

#include "core/grid.hpp"
#include "core/types.hpp"

namespace simcov {

/// `count` distinct voxels, uniformly at random, deterministic in `seed`.
/// The same (grid, count, seed) yields the same set on every backend.
std::vector<VoxelId> foi_uniform_random(const Grid& grid, std::int64_t count,
                                        std::uint64_t seed);

/// CT-like patchy lesions: `num_lesions` random centres, each dilated into a
/// roughly disc-shaped blob whose radius is Poisson-distributed around
/// `mean_radius`.  Returns the union of lesion voxels (deduplicated).
std::vector<VoxelId> foi_ct_lesions(const Grid& grid, std::int64_t num_lesions,
                                    double mean_radius, std::uint64_t seed);

/// A regular lattice of FOI (deterministic, evenly spread) — useful for
/// load-balance experiments where imbalance must be controlled.
std::vector<VoxelId> foi_lattice(const Grid& grid, std::int64_t count);

}  // namespace simcov
