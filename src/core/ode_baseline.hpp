#pragma once
// Well-mixed ODE within-host infection model (comparison baseline).
//
// The paper positions SIMCoV against earlier ODE models (§2.2: Hernandez-
// Vargas & Velasco-Hernandez; Wang et al.), in which "populations of cells,
// virus and other entities [are] well-mixed ... all possible interactions
// are equally likely regardless of where the entities are located".  This
// module implements that baseline: a target-cell-limited TIV model with an
// eclipse phase and a simple effector-cell response, integrated with
// classic RK4.  The ode_vs_abm example contrasts its exponential early
// growth with the spatial model's front-limited growth — the original
// motivation for SIMCoV's spatial structure.
//
// State variables (densities over one epithelium of N cells):
//   T   healthy target cells          I1  eclipse-phase (incubating) cells
//   I2  virion-producing cells        V   free virions
//   E   effector (T cell) strength    D   cumulative dead cells
//
//   T'  = -beta T V
//   I1' =  beta T V - k I1
//   I2' =  k I1 - delta I2 - kappa E I2
//   V'  =  p I2 - c V
//   E'  =  s(t >= t_delay) + r E I2 / (I2 + K) - d E
//   D'  =  delta I2 + kappa E I2

#include <cstdint>
#include <vector>

namespace simcov::ode {

struct OdeParams {
  double n_cells = 1e4;     ///< epithelium size (matches an ABM grid)
  double beta = 4e-6;       ///< infection rate per virion per cell
  double eclipse_k = 1.0 / 30.0;   ///< eclipse exit rate (1/steps)
  double delta = 1.0 / 120.0;      ///< infected-cell death rate
  double production = 0.1;  ///< virions per infectious cell per step
  double clearance = 0.01;  ///< virion clearance rate
  double kappa = 5e-4;      ///< killing rate per effector unit
  double effector_source = 0.5;    ///< effector influx after the delay
  double effector_delay = 120.0;   ///< steps before the response starts
  double effector_expand = 0.02;   ///< proliferation rate near infection
  double effector_half = 50.0;     ///< half-saturation of proliferation
  double effector_decay = 1.0 / 300.0;
  double v0 = 1.0;          ///< initial virions
  double dt = 0.5;          ///< RK4 step, in simulation timesteps

  void validate() const;
};

struct OdeState {
  double t = 0.0;   ///< healthy target cells (set from n_cells at start)
  double i1 = 0.0;
  double i2 = 0.0;
  double v = 0.0;
  double e = 0.0;
  double dead = 0.0;

  double total_cells() const { return t + i1 + i2 + dead; }
};

/// Integrates from the standard initial condition (all cells healthy,
/// v = v0) and returns one state per whole simulation step, `steps + 1`
/// entries including the initial condition.
std::vector<OdeState> integrate(const OdeParams& params, std::int64_t steps);

/// One RK4 step of size dt from `s` (exposed for convergence tests).
OdeState rk4_step(const OdeParams& params, const OdeState& s, double time,
                  double dt);

}  // namespace simcov::ode
