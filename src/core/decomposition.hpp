#pragma once
// Domain decomposition: assigning grid sub-domains to ranks.
//
// SIMCoV-CPU subdivides the simulation space using linear, 2D or 3D
// decomposition (paper Fig. 1B); SIMCoV-GPU uses 2D decomposition for 2D
// simulations (Fig. 3A).  Both backends here share this module.  Sub-domains
// keep the z extent whole (the paper's evaluation is 2D); uneven divisions
// are supported by spreading the remainder over the leading ranks.

#include <array>
#include <cstdint>
#include <vector>

#include "core/grid.hpp"

namespace simcov {

/// Face indices in contract order (matches Grid::kOffsets x/y entries).
enum Face : int { kFaceXNeg = 0, kFaceXPos = 1, kFaceYNeg = 2, kFaceYPos = 3 };
constexpr int kNumFaces = 4;

struct Subdomain {
  int rank = 0;
  Coord origin;                      ///< inclusive global origin
  Coord extent;                      ///< size in voxels
  std::array<int, kNumFaces> neighbour{-1, -1, -1, -1};  ///< rank per face

  std::int64_t num_voxels() const {
    return static_cast<std::int64_t>(extent.x) * extent.y * extent.z;
  }
  bool contains(const Coord& c) const {
    return c.x >= origin.x && c.x < origin.x + extent.x && c.y >= origin.y &&
           c.y < origin.y + extent.y && c.z >= origin.z &&
           c.z < origin.z + extent.z;
  }
};

class Decomposition {
 public:
  enum class Kind { kLinear, kBlock2D };

  /// Builds a decomposition of `grid` over `num_ranks` ranks.  kLinear cuts
  /// the y axis into strips; kBlock2D arranges ranks in an rx-by-ry grid
  /// chosen as close to square (and to the domain's aspect ratio) as the
  /// rank count allows.
  Decomposition(const Grid& grid, int num_ranks, Kind kind);

  /// Explicit 2D rank grid (rx * ry must equal num_ranks).
  Decomposition(const Grid& grid, int rx, int ry);

  int num_ranks() const { return static_cast<int>(subs_.size()); }
  int rank_grid_x() const { return rx_; }
  int rank_grid_y() const { return ry_; }
  const Subdomain& sub(int rank) const;

  /// Which rank owns a global coordinate.
  int owner(const Coord& c) const;

 private:
  void build(const Grid& grid);

  int rx_ = 1, ry_ = 1;
  std::int32_t gx_, gy_, gz_;
  std::vector<Subdomain> subs_;
  std::vector<std::int32_t> x_starts_, y_starts_;  ///< split boundaries
};

/// Splits `n` into `parts` near-equal pieces; returns the start of piece `i`
/// (piece sizes are n/parts plus one for the first n%parts pieces).
std::int32_t split_start(std::int32_t n, int parts, int i);

}  // namespace simcov
