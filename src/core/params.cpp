#include "core/params.hpp"

#include <sstream>

#include "util/error.hpp"

namespace simcov {

SimParams SimParams::covid_default() { return SimParams{}; }

SimParams SimParams::bench_fast() {
  SimParams p;
  p.num_steps = 600;
  p.num_foi = 4;
  p.virus_diffusion = 0.3;
  p.virus_production = 0.08;
  p.infectivity = 0.02;
  p.chem_production = 0.2;
  p.incubation_period = 30;
  p.expressing_period = 120;
  p.apoptosis_period = 40;
  p.tcell_initial_delay = 120;
  p.tcell_generation_rate = 8.0;
  p.tcell_vascular_period = 600;
  p.tcell_tissue_period = 300;
  p.tcell_binding_period = 5;
  return p;
}

void SimParams::apply(const Config& cfg) {
  for (const auto& key : cfg.keys()) {
    if (key == "dim_x") dim_x = static_cast<std::int32_t>(cfg.get_int(key));
    else if (key == "dim_y") dim_y = static_cast<std::int32_t>(cfg.get_int(key));
    else if (key == "dim_z") dim_z = static_cast<std::int32_t>(cfg.get_int(key));
    else if (key == "num_steps") num_steps = cfg.get_int(key);
    else if (key == "seed") seed = static_cast<std::uint64_t>(cfg.get_int(key));
    else if (key == "num_foi") num_foi = cfg.get_int(key);
    else if (key == "initial_virus") initial_virus = static_cast<float>(cfg.get_double(key));
    else if (key == "virus_diffusion") virus_diffusion = cfg.get_double(key);
    else if (key == "virus_decay") virus_decay = cfg.get_double(key);
    else if (key == "virus_production") virus_production = cfg.get_double(key);
    else if (key == "min_virus") min_virus = cfg.get_double(key);
    else if (key == "infectivity") infectivity = cfg.get_double(key);
    else if (key == "chem_diffusion") chem_diffusion = cfg.get_double(key);
    else if (key == "chem_decay") chem_decay = cfg.get_double(key);
    else if (key == "chem_production") chem_production = cfg.get_double(key);
    else if (key == "min_chem") min_chem = cfg.get_double(key);
    else if (key == "incubation_period") incubation_period = cfg.get_double(key);
    else if (key == "expressing_period") expressing_period = cfg.get_double(key);
    else if (key == "apoptosis_period") apoptosis_period = cfg.get_double(key);
    else if (key == "tcell_generation_rate") tcell_generation_rate = cfg.get_double(key);
    else if (key == "tcell_initial_delay") tcell_initial_delay = cfg.get_int(key);
    else if (key == "tcell_vascular_period") tcell_vascular_period = cfg.get_double(key);
    else if (key == "tcell_tissue_period") tcell_tissue_period = cfg.get_double(key);
    else if (key == "tcell_binding_period") tcell_binding_period = cfg.get_int(key);
    else if (key == "max_extravasate_per_step") max_extravasate_per_step = cfg.get_int(key);
    else if (key == "tile_side") tile_side = static_cast<std::int32_t>(cfg.get_int(key));
    else if (key == "tile_check_period") tile_check_period = static_cast<std::int32_t>(cfg.get_int(key));
    else if (key == "block_dim") block_dim = static_cast<std::int32_t>(cfg.get_int(key));
    else throw Error("unknown simulation parameter '" + key + "'");
  }
}

void SimParams::validate() const {
  SIMCOV_REQUIRE(dim_x >= 1 && dim_y >= 1 && dim_z >= 1,
                 "grid dimensions must be positive");
  SIMCOV_REQUIRE(num_voxels() < (1LL << 32),
                 "grid exceeds 2^32 voxels (VoxelId packing limit)");
  SIMCOV_REQUIRE(num_steps >= 0, "num_steps must be non-negative");
  SIMCOV_REQUIRE(num_foi >= 0 && num_foi <= num_voxels(),
                 "num_foi out of range");
  SIMCOV_REQUIRE(virus_diffusion >= 0.0 && virus_diffusion <= 1.0,
                 "virus_diffusion must be in [0,1] for stencil stability");
  SIMCOV_REQUIRE(chem_diffusion >= 0.0 && chem_diffusion <= 1.0,
                 "chem_diffusion must be in [0,1] for stencil stability");
  SIMCOV_REQUIRE(virus_decay >= 0.0 && virus_decay <= 1.0, "bad virus_decay");
  SIMCOV_REQUIRE(chem_decay >= 0.0 && chem_decay <= 1.0, "bad chem_decay");
  SIMCOV_REQUIRE(infectivity >= 0.0, "infectivity must be non-negative");
  SIMCOV_REQUIRE(incubation_period >= 0 && expressing_period >= 0 &&
                     apoptosis_period >= 0,
                 "state periods must be non-negative");
  SIMCOV_REQUIRE(tcell_binding_period >= 1, "binding period must be >= 1");
  SIMCOV_REQUIRE(tcell_vascular_period >= 1 && tcell_tissue_period >= 1,
                 "T cell periods must be >= 1");
  SIMCOV_REQUIRE(max_extravasate_per_step >= 0, "bad extravasation cap");
  SIMCOV_REQUIRE(tile_side >= 1, "tile_side must be >= 1");
  SIMCOV_REQUIRE(tile_check_period >= 1 && tile_check_period <= tile_side,
                 "tile_check_period must be in [1, tile_side] "
                 "(the one-tile activation buffer is only safe if activity "
                 "cannot cross a tile between sweeps; see paper section 3.2)");
  SIMCOV_REQUIRE(block_dim >= 1 && block_dim <= 1024, "bad block_dim");
}

std::string SimParams::summary() const {
  std::ostringstream os;
  os << dim_x << "x" << dim_y << "x" << dim_z << " voxels, " << num_steps
     << " steps, " << num_foi << " FOI, seed " << seed;
  return os.str();
}

}  // namespace simcov
