#pragma once
// Branching airway structure generator.
//
// SIMCoV models lung structure "by leaving some voxels empty without
// epithelial cells"; the paper's discussion (§6) proposes overlaying
// "fractal branching airways" on the voxel grid once full-lung scale is
// reachable.  This module generates such structures: a recursive bifurcating
// tree of airway segments rasterized into empty-voxel sets, usable by every
// backend (empty voxels block T cells, carry no epithelium, and host no
// infection).
//
// The generator is deterministic in its seed and parameters, so parallel
// backends can build identical structures without communication.

#include <cstdint>
#include <vector>

#include "core/grid.hpp"
#include "core/types.hpp"

namespace simcov {

struct AirwayParams {
  int generations = 5;          ///< bifurcation depth
  double root_length = 0.25;    ///< first segment length, fraction of dim_y
  double length_ratio = 0.72;   ///< child/parent length (Weibel-like ~0.7)
  double root_halfwidth = 2.0;  ///< root lumen half-width in voxels
  double width_ratio = 0.75;    ///< child/parent width
  double branch_angle = 0.6;    ///< radians off the parent direction
  double angle_jitter = 0.15;   ///< +- uniform jitter per branch (radians)
  std::uint64_t seed = 7;
};

/// One rasterized airway segment (for tests and visualization).
struct AirwaySegment {
  double x0, y0, x1, y1;  ///< endpoints in voxel coordinates
  double halfwidth;
  int generation;
};

/// Generates the segment tree rooted at the top-centre of the grid, growing
/// in +y.  Segments may leave the grid; rasterization clips them.
std::vector<AirwaySegment> airway_tree(const Grid& grid,
                                       const AirwayParams& params);

/// Rasterizes the tree into a deduplicated, sorted set of empty voxels on
/// the z = 0 plane (2D structure; for 3D grids the same cross-section is
/// extruded through all z layers, modelling a bronchial slice stack).
std::vector<VoxelId> airway_voxels(const Grid& grid,
                                   const AirwayParams& params);

}  // namespace simcov
