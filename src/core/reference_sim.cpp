#include "core/reference_sim.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace simcov {

namespace {

struct SourceIntent {
  VoxelId source;
  std::uint32_t timer;  ///< the T cell's remaining tissue life
  rules::Intent intent;
};

}  // namespace

ReferenceSim::ReferenceSim(const SimParams& params, std::vector<VoxelId> foi,
                           std::vector<VoxelId> empty_voxels)
    : params_(params), grid_(params.dim_x, params.dim_y, params.dim_z),
      rng_(params.seed) {
  params_.validate();
  const std::size_t n = static_cast<std::size_t>(grid_.num_voxels());
  epi_state_.assign(n, EpiState::kHealthy);
  epi_timer_.assign(n, 0);
  tcell_.assign(n, 0);
  tcell_timer_.assign(n, 0);
  tcell_bind_.assign(n, 0);
  virus_.assign(n, 0.0f);
  chem_.assign(n, 0.0f);
  bid_move_.assign(n, 0);
  bid_bind_.assign(n, 0);
  occupancy_.assign(n, 0);
  field_tmp_.assign(n, 0.0f);

  for (VoxelId v : empty_voxels) {
    SIMCOV_REQUIRE(v < grid_.num_voxels(), "empty voxel id out of range");
    epi_state_[static_cast<std::size_t>(v)] = EpiState::kEmpty;
  }
  for (VoxelId v : foi) {
    SIMCOV_REQUIRE(v < grid_.num_voxels(), "FOI voxel id out of range");
    SIMCOV_REQUIRE(epi_state_[static_cast<std::size_t>(v)] != EpiState::kEmpty,
                   "FOI voxel is an airway (empty) voxel");
    virus_[static_cast<std::size_t>(v)] = params_.initial_virus;
  }
}

void ReferenceSim::run(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) step();
}

void ReferenceSim::step() {
  StepStats stats;
  phase_tcells(stats);
  phase_epithelial();
  phase_concentrations();
  phase_reduce(stats);
  history_.push_back(stats);
  ++step_;
}

rules::NeighbourView ReferenceSim::neighbour_view(const Coord& c) const {
  rules::NeighbourView nb;
  std::array<Coord, 6> coords;
  nb.count = grid_.neighbours(c, coords);
  for (int i = 0; i < nb.count; ++i) {
    const VoxelId id = grid_.to_id(coords[static_cast<std::size_t>(i)]);
    nb.ids[static_cast<std::size_t>(i)] = id;
    nb.epi[static_cast<std::size_t>(i)] = epi_state_[static_cast<std::size_t>(id)];
  }
  return nb;
}

void ReferenceSim::phase_tcells(StepStats& stats) {
  const std::size_t n = static_cast<std::size_t>(grid_.num_voxels());

  // --- Aging / unbinding.  Bound cells count down their binding and do not
  // age; free cells age and die at 0.  A cell whose binding just completed
  // becomes free but is not eligible to move until the next step.
  std::vector<SourceIntent> intents;
  std::fill(bid_move_.begin(), bid_move_.end(), 0);
  std::fill(bid_bind_.begin(), bid_bind_.end(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (!tcell_[v]) {
      occupancy_[v] = 0;
      continue;
    }
    bool eligible = false;
    if (tcell_bind_[v] > 0) {
      --tcell_bind_[v];
    } else {
      if (tcell_timer_[v] <= 1) {
        // Dies this step.
        tcell_[v] = 0;
        tcell_timer_[v] = 0;
      } else {
        --tcell_timer_[v];
        eligible = true;
      }
    }
    occupancy_[v] = tcell_[v];
    if (!eligible) continue;

    // --- Intent.
    const Coord c = grid_.to_coord(static_cast<VoxelId>(v));
    const rules::Intent intent = rules::tcell_intent(
        rng_, step_, static_cast<VoxelId>(v), epi_state_[v],
        neighbour_view(c));
    if (intent.kind == rules::IntentKind::kNone) continue;
    intents.push_back({static_cast<VoxelId>(v), tcell_timer_[v], intent});
    auto& field = (intent.kind == rules::IntentKind::kMove) ? bid_move_
                                                            : bid_bind_;
    field[static_cast<std::size_t>(intent.target)] =
        std::max(field[static_cast<std::size_t>(intent.target)], intent.bid);
  }

  // --- Resolution + application.
  for (const auto& si : intents) {
    const std::size_t tgt = static_cast<std::size_t>(si.intent.target);
    const std::size_t src = static_cast<std::size_t>(si.source);
    if (si.intent.kind == rules::IntentKind::kMove) {
      if (bid_move_[tgt] != si.intent.bid) continue;  // lost the tiebreak
      if (occupancy_[tgt]) continue;                  // ran into another T cell
      tcell_[src] = 0;
      tcell_timer_[src] = 0;
      tcell_[tgt] = 1;
      tcell_timer_[tgt] = si.timer;
      tcell_bind_[tgt] = 0;
    } else {
      if (bid_bind_[tgt] != si.intent.bid) continue;
      if (epi_state_[tgt] != EpiState::kExpressing) continue;
      epi_state_[tgt] = EpiState::kApoptotic;
      epi_timer_[tgt] = rules::sample_period(rng_, step_, si.intent.target,
                                             RngStream::kApoptosisPeriod,
                                             params_.apoptosis_period);
      tcell_bind_[src] =
          static_cast<std::uint32_t>(params_.tcell_binding_period);
    }
  }

  // --- Extravasation.
  const std::uint64_t attempts = rules::num_extravasation_attempts(
      pool_, params_.max_extravasate_per_step);
  std::uint64_t successes = 0;
  for (std::uint64_t i = 0; i < attempts; ++i) {
    const VoxelId u = rules::attempt_voxel(rng_, step_, i, grid_.num_voxels());
    const std::size_t ui = static_cast<std::size_t>(u);
    if (!rules::attempt_accepted(rng_, step_, i, chem_[ui])) continue;
    if (epi_state_[ui] == EpiState::kEmpty) continue;
    if (tcell_[ui]) continue;
    tcell_[ui] = 1;
    tcell_timer_[ui] = static_cast<std::uint32_t>(params_.tcell_tissue_period);
    tcell_bind_[ui] = 0;
    ++successes;
  }
  stats.extravasated = successes;
}

void ReferenceSim::phase_epithelial() {
  const std::size_t n = static_cast<std::size_t>(grid_.num_voxels());
  for (std::size_t v = 0; v < n; ++v) {
    const EpiState s = epi_state_[v];
    if (s == EpiState::kEmpty || s == EpiState::kDead) continue;
    const rules::EpiUpdate u = rules::update_epithelial(
        rng_, step_, static_cast<VoxelId>(v), s, epi_timer_[v], virus_[v],
        params_);
    epi_state_[v] = u.state;
    epi_timer_[v] = u.timer;
  }
}

void ReferenceSim::phase_concentrations() {
  const std::size_t n = static_cast<std::size_t>(grid_.num_voxels());

  auto run_field = [&](std::vector<float>& field, auto produces_fn,
                       double production, double decay, double diffusion,
                       double floor_eps) {
    // Pass 1: production + decay into the temp buffer.
    for (std::size_t v = 0; v < n; ++v) {
      field_tmp_[v] = rules::produce_decay(field[v], produces_fn(epi_state_[v]),
                                           production, decay);
    }
    // Pass 2: diffusion reading the temp buffer.
    for (std::size_t v = 0; v < n; ++v) {
      const Coord c = grid_.to_coord(static_cast<VoxelId>(v));
      std::array<Coord, 6> coords;
      const int cnt = grid_.neighbours(c, coords);
      double sum = 0.0;
      for (int i = 0; i < cnt; ++i) {
        sum += static_cast<double>(
            field_tmp_[static_cast<std::size_t>(grid_.to_id(coords[static_cast<std::size_t>(i)]))]);
      }
      field[v] = rules::diffuse(field_tmp_[v], sum, cnt, diffusion, floor_eps);
    }
  };

  run_field(virus_, [](EpiState s) { return rules::produces_virus(s); },
            params_.virus_production, params_.virus_decay,
            params_.virus_diffusion, params_.min_virus);
  run_field(chem_, [](EpiState s) { return rules::produces_chem(s); },
            params_.chem_production, params_.chem_decay,
            params_.chem_diffusion, params_.min_chem);
}

void ReferenceSim::phase_reduce(StepStats& stats) {
  const std::size_t n = static_cast<std::size_t>(grid_.num_voxels());
  for (std::size_t v = 0; v < n; ++v) {
    stats.virus_total += static_cast<double>(virus_[v]);
    stats.chem_total += static_cast<double>(chem_[v]);
    ++stats.epi_counts[static_cast<std::size_t>(epi_state_[v])];
    stats.tcells_tissue += tcell_[v];
  }
  pool_ = rules::pool_after_step(pool_, step_, params_, stats.extravasated);
  stats.tcells_vascular = pool_;
}

std::uint64_t ReferenceSim::state_digest() const {
  const std::size_t n = static_cast<std::size_t>(grid_.num_voxels());
  std::uint64_t d = 0;
  for (std::size_t v = 0; v < n; ++v) {
    d ^= rules::voxel_digest(static_cast<VoxelId>(v), epi_state_[v],
                             epi_timer_[v], tcell_[v], tcell_timer_[v],
                             tcell_bind_[v], virus_[v], chem_[v]);
  }
  return d;
}

VoxelState ReferenceSim::voxel(VoxelId v) const {
  SIMCOV_REQUIRE(v < grid_.num_voxels(), "voxel id out of range");
  const std::size_t i = static_cast<std::size_t>(v);
  return {epi_state_[i], epi_timer_[i],  tcell_[i],
          tcell_timer_[i], tcell_bind_[i], virus_[i], chem_[i]};
}

namespace {

constexpr char kMagic[4] = {'S', 'C', 'V', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  SIMCOV_REQUIRE(in.good(), "checkpoint truncated");
  return v;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in, std::size_t expected_size) {
  const auto n = read_pod<std::uint64_t>(in);
  SIMCOV_REQUIRE(expected_size == 0 || n == expected_size,
                 "checkpoint array size mismatch");
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  SIMCOV_REQUIRE(in.good(), "checkpoint truncated");
  return v;
}

}  // namespace

void ReferenceSim::save(std::ostream& out) const {
  out.write(kMagic, 4);
  write_pod<std::uint32_t>(out, sizeof(SimParams));
  write_pod(out, params_);
  write_pod(out, step_);
  write_pod(out, pool_);
  write_vec(out, epi_state_);
  write_vec(out, epi_timer_);
  write_vec(out, tcell_);
  write_vec(out, tcell_timer_);
  write_vec(out, tcell_bind_);
  write_vec(out, virus_);
  write_vec(out, chem_);
  write_vec(out, history_);
  SIMCOV_REQUIRE(out.good(), "checkpoint write failed");
}

ReferenceSim::ReferenceSim(LoadTag, std::istream& in)
    : params_([&] {
        char magic[4];
        in.read(magic, 4);
        SIMCOV_REQUIRE(in.good() && std::equal(magic, magic + 4, kMagic),
                       "not a SIMCoV checkpoint");
        SIMCOV_REQUIRE(read_pod<std::uint32_t>(in) == sizeof(SimParams),
                       "checkpoint written by an incompatible build");
        return read_pod<SimParams>(in);
      }()),
      grid_(params_.dim_x, params_.dim_y, params_.dim_z), rng_(params_.seed) {
  params_.validate();
  step_ = read_pod<std::uint64_t>(in);
  pool_ = read_pod<double>(in);
  const std::size_t n = static_cast<std::size_t>(grid_.num_voxels());
  epi_state_ = read_vec<EpiState>(in, n);
  epi_timer_ = read_vec<std::uint32_t>(in, n);
  tcell_ = read_vec<std::uint8_t>(in, n);
  tcell_timer_ = read_vec<std::uint32_t>(in, n);
  tcell_bind_ = read_vec<std::uint32_t>(in, n);
  virus_ = read_vec<float>(in, n);
  chem_ = read_vec<float>(in, n);
  history_ = read_vec<StepStats>(in, 0);
  bid_move_.assign(n, 0);
  bid_bind_.assign(n, 0);
  occupancy_.assign(n, 0);
  field_tmp_.assign(n, 0.0f);
}

ReferenceSim ReferenceSim::load(std::istream& in) {
  return ReferenceSim(LoadTag{}, in);
}

std::uint64_t ReferenceSim::tissue_tcell_count() const {
  std::uint64_t c = 0;
  for (auto t : tcell_) c += t;
  return c;
}

}  // namespace simcov
