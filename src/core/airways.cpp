#include "core/airways.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace simcov {

namespace {

struct Builder {
  const Grid& grid;
  const AirwayParams& p;
  CounterRng rng;
  std::vector<AirwaySegment> segments;
  std::uint64_t node_id = 0;

  void branch(double x, double y, double angle, double length,
              double halfwidth, int gen) {
    if (gen >= p.generations || length < 1.0) return;
    const double x1 = x + std::sin(angle) * length;
    const double y1 = y + std::cos(angle) * length;
    segments.push_back({x, y, x1, y1, halfwidth, gen});
    const std::uint64_t id = node_id++;
    // Child angles: parent direction +- branch angle with jitter.
    const double j1 = (rng.uniform(0, id, RngStream::kGeneric, 1) - 0.5) *
                      2.0 * p.angle_jitter;
    const double j2 = (rng.uniform(0, id, RngStream::kGeneric, 2) - 0.5) *
                      2.0 * p.angle_jitter;
    const double child_len = length * p.length_ratio;
    const double child_hw = std::max(0.5, halfwidth * p.width_ratio);
    branch(x1, y1, angle - p.branch_angle + j1, child_len, child_hw, gen + 1);
    branch(x1, y1, angle + p.branch_angle + j2, child_len, child_hw, gen + 1);
  }
};

/// Distance from point q to segment (a, b).
double segment_distance(double qx, double qy, double ax, double ay, double bx,
                        double by) {
  const double dx = bx - ax, dy = by - ay;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = std::clamp(((qx - ax) * dx + (qy - ay) * dy) / len2, 0.0, 1.0);
  }
  const double px = ax + t * dx, py = ay + t * dy;
  return std::hypot(qx - px, qy - py);
}

}  // namespace

std::vector<AirwaySegment> airway_tree(const Grid& grid,
                                       const AirwayParams& params) {
  SIMCOV_REQUIRE(params.generations >= 1 && params.generations <= 16,
                 "airway generations out of range");
  SIMCOV_REQUIRE(params.root_halfwidth >= 0.5, "root airway too thin");
  Builder b{grid, params, CounterRng(params.seed ^ 0xa112a75ULL), {}, 0};
  const double root_len = params.root_length * grid.dim_y();
  b.branch(grid.dim_x() / 2.0, 0.0, /*angle=*/0.0, root_len,
           params.root_halfwidth, 0);
  return b.segments;
}

std::vector<VoxelId> airway_voxels(const Grid& grid,
                                   const AirwayParams& params) {
  const auto segments = airway_tree(grid, params);
  std::unordered_set<VoxelId> plane;  // z = 0 cross-section
  for (const auto& s : segments) {
    // Rasterize: scan the segment's bounding box padded by the half-width.
    const double pad = s.halfwidth + 1.0;
    const auto x_lo = static_cast<std::int32_t>(
        std::floor(std::min(s.x0, s.x1) - pad));
    const auto x_hi = static_cast<std::int32_t>(
        std::ceil(std::max(s.x0, s.x1) + pad));
    const auto y_lo = static_cast<std::int32_t>(
        std::floor(std::min(s.y0, s.y1) - pad));
    const auto y_hi = static_cast<std::int32_t>(
        std::ceil(std::max(s.y0, s.y1) + pad));
    for (std::int32_t y = std::max(0, y_lo);
         y <= std::min(grid.dim_y() - 1, y_hi); ++y) {
      for (std::int32_t x = std::max(0, x_lo);
           x <= std::min(grid.dim_x() - 1, x_hi); ++x) {
        if (segment_distance(x + 0.5, y + 0.5, s.x0, s.y0, s.x1, s.y1) <=
            s.halfwidth) {
          plane.insert(grid.to_id({x, y, 0}));
        }
      }
    }
  }
  // Extrude through z (bronchial slice stack for 3D grids).
  std::vector<VoxelId> out;
  out.reserve(plane.size() * static_cast<std::size_t>(grid.dim_z()));
  for (VoxelId v : plane) {
    const Coord c = grid.to_coord(v);
    for (std::int32_t z = 0; z < grid.dim_z(); ++z) {
      out.push_back(grid.to_id({c.x, c.y, z}));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace simcov
