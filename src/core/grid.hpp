#pragma once
// Grid geometry: global voxel ids, coordinates, and von Neumann neighbours.
//
// Neighbour enumeration order is part of the simulation contract: random
// target selection indexes into the neighbour list, and diffusion sums
// neighbour values in list order, so all backends must enumerate
// identically.  The fixed order is -x, +x, -y, +y, -z, +z, skipping
// out-of-bounds entries.

#include <array>
#include <cstdint>

#include "core/types.hpp"
#include "util/error.hpp"

namespace simcov {

class Grid {
 public:
  Grid(std::int32_t dx, std::int32_t dy, std::int32_t dz)
      : dx_(dx), dy_(dy), dz_(dz) {
    SIMCOV_REQUIRE(dx >= 1 && dy >= 1 && dz >= 1, "grid dims must be >= 1");
    SIMCOV_REQUIRE(static_cast<std::uint64_t>(dx) * static_cast<std::uint64_t>(dy) *
                           static_cast<std::uint64_t>(dz) <
                       (1ULL << 32),
                   "grid exceeds 2^32 voxels");
  }

  std::int32_t dim_x() const { return dx_; }
  std::int32_t dim_y() const { return dy_; }
  std::int32_t dim_z() const { return dz_; }
  std::uint64_t num_voxels() const {
    return static_cast<std::uint64_t>(dx_) * dy_ * dz_;
  }
  bool is_2d() const { return dz_ == 1; }

  bool in_bounds(const Coord& c) const {
    return c.x >= 0 && c.x < dx_ && c.y >= 0 && c.y < dy_ && c.z >= 0 &&
           c.z < dz_;
  }

  VoxelId to_id(const Coord& c) const {
    SIMCOV_ASSERT(in_bounds(c), "coordinate out of bounds");
    return (static_cast<VoxelId>(c.z) * dy_ + c.y) * dx_ + c.x;
  }

  Coord to_coord(VoxelId id) const {
    SIMCOV_ASSERT(id < num_voxels(), "voxel id out of bounds");
    Coord c;
    c.x = static_cast<std::int32_t>(id % static_cast<std::uint64_t>(dx_));
    id /= static_cast<std::uint64_t>(dx_);
    c.y = static_cast<std::int32_t>(id % static_cast<std::uint64_t>(dy_));
    c.z = static_cast<std::int32_t>(id / static_cast<std::uint64_t>(dy_));
    return c;
  }

  /// The six axis offsets in contract order.
  static constexpr std::array<Coord, 6> kOffsets = {
      Coord{-1, 0, 0}, Coord{+1, 0, 0}, Coord{0, -1, 0},
      Coord{0, +1, 0}, Coord{0, 0, -1}, Coord{0, 0, +1}};

  /// Number of neighbour slots considered (4 in 2D, 6 in 3D).
  int neighbour_slots() const { return is_2d() ? 4 : 6; }

  /// Collects in-bounds von Neumann neighbours of `c` in contract order.
  /// Returns the count; coordinates land in `out`.
  int neighbours(const Coord& c, std::array<Coord, 6>& out) const {
    int n = 0;
    const int slots = neighbour_slots();
    for (int i = 0; i < slots; ++i) {
      Coord nb{c.x + kOffsets[static_cast<std::size_t>(i)].x,
               c.y + kOffsets[static_cast<std::size_t>(i)].y,
               c.z + kOffsets[static_cast<std::size_t>(i)].z};
      if (in_bounds(nb)) out[static_cast<std::size_t>(n++)] = nb;
    }
    return n;
  }

 private:
  std::int32_t dx_, dy_, dz_;
};

}  // namespace simcov
