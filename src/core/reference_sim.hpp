#pragma once
// Serial reference simulator: the semantic ground truth.
//
// Executes the rules of core/rules.hpp over the full grid with no
// decomposition, no active-region tracking, and no communication.  The
// parallel backends must reproduce this simulator's state bit-for-bit at
// every step (see tests/equivalence_test.cpp); it is deliberately simple so
// that its correctness can be argued by reading it next to the rules header.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/grid.hpp"
#include "core/params.hpp"
#include "core/rules.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"

namespace simcov {

class ReferenceSim {
 public:
  /// `foi` voxels start with `initial_virus`; `empty_voxels` model airways
  /// (no epithelium, T cells cannot enter).
  ReferenceSim(const SimParams& params, std::vector<VoxelId> foi,
               std::vector<VoxelId> empty_voxels = {});

  /// Advances one timestep (all four phases) and appends to history().
  void step();

  /// Runs `n` steps.
  void run(std::int64_t n);

  std::uint64_t current_step() const { return step_; }
  const Grid& grid() const { return grid_; }
  const SimParams& params() const { return params_; }
  const TimeSeries& history() const { return history_; }
  double vascular_pool() const { return pool_; }

  /// Full-state XOR digest (see rules::voxel_digest).
  std::uint64_t state_digest() const;

  /// Snapshot of one voxel's state (test support).
  VoxelState voxel(VoxelId v) const;

  /// Total T cells currently in tissue (exact integer).
  std::uint64_t tissue_tcell_count() const;

  /// Binary checkpoint of the full simulation state (parameters, step,
  /// vascular pool, voxel arrays, history).  load() resumes a run that
  /// continues bit-identically to the uninterrupted original
  /// (tests/io_test.cpp).
  void save(std::ostream& out) const;
  static ReferenceSim load(std::istream& in);

 private:
  struct LoadTag {};
  ReferenceSim(LoadTag, std::istream& in);

  void phase_tcells(StepStats& stats);
  void phase_epithelial();
  void phase_concentrations();
  void phase_reduce(StepStats& stats);

  rules::NeighbourView neighbour_view(const Coord& c) const;

  SimParams params_;
  Grid grid_;
  CounterRng rng_;
  std::uint64_t step_ = 0;
  double pool_ = 0.0;

  // Struct-of-arrays voxel state (same layout idea as the backends).
  std::vector<EpiState> epi_state_;
  std::vector<std::uint32_t> epi_timer_;
  std::vector<std::uint8_t> tcell_;
  std::vector<std::uint32_t> tcell_timer_;
  std::vector<std::uint32_t> tcell_bind_;
  std::vector<float> virus_;
  std::vector<float> chem_;

  // Per-step scratch.
  std::vector<std::uint64_t> bid_move_;
  std::vector<std::uint64_t> bid_bind_;
  std::vector<std::uint8_t> occupancy_;  ///< post-aging snapshot
  std::vector<float> field_tmp_;

  TimeSeries history_;
};

}  // namespace simcov
