#include "core/foi.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace simcov {

std::vector<VoxelId> foi_uniform_random(const Grid& grid, std::int64_t count,
                                        std::uint64_t seed) {
  SIMCOV_REQUIRE(count >= 0, "FOI count must be non-negative");
  SIMCOV_REQUIRE(static_cast<std::uint64_t>(count) <= grid.num_voxels(),
                 "more FOI than voxels");
  const CounterRng rng(seed);
  std::unordered_set<VoxelId> chosen;
  std::vector<VoxelId> out;
  out.reserve(static_cast<std::size_t>(count));
  std::uint64_t salt = 0;
  while (out.size() < static_cast<std::size_t>(count)) {
    // step=0, entity=index-being-filled, salt bumps on collisions.
    const VoxelId v = rng.uniform_int(
        /*step=*/0, /*entity=*/out.size(), RngStream::kGeneric,
        static_cast<std::uint32_t>(grid.num_voxels()), salt++);
    if (chosen.insert(v).second) out.push_back(v);
  }
  return out;
}

std::vector<VoxelId> foi_ct_lesions(const Grid& grid, std::int64_t num_lesions,
                                    double mean_radius, std::uint64_t seed) {
  SIMCOV_REQUIRE(num_lesions >= 0, "lesion count must be non-negative");
  SIMCOV_REQUIRE(mean_radius >= 0.0, "lesion radius must be non-negative");
  const CounterRng rng(seed ^ 0x17ab3cdULL);
  std::unordered_set<VoxelId> voxels;
  for (std::int64_t l = 0; l < num_lesions; ++l) {
    const VoxelId centre_id = rng.uniform_int(
        0, static_cast<std::uint64_t>(l), RngStream::kGeneric,
        static_cast<std::uint32_t>(grid.num_voxels()));
    const Coord c = grid.to_coord(centre_id);
    const auto r = static_cast<std::int32_t>(rng.poisson(
        1, static_cast<std::uint64_t>(l), RngStream::kGeneric, mean_radius));
    for (std::int32_t dy = -r; dy <= r; ++dy) {
      for (std::int32_t dx = -r; dx <= r; ++dx) {
        if (dx * dx + dy * dy > r * r) continue;
        Coord p{c.x + dx, c.y + dy, c.z};
        if (grid.in_bounds(p)) voxels.insert(grid.to_id(p));
      }
    }
  }
  std::vector<VoxelId> out(voxels.begin(), voxels.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VoxelId> foi_lattice(const Grid& grid, std::int64_t count) {
  SIMCOV_REQUIRE(count >= 0, "FOI count must be non-negative");
  std::vector<VoxelId> out;
  if (count == 0) return out;
  // Place on a near-square lattice over the xy plane of z = dim_z/2.
  const auto side = static_cast<std::int64_t>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  const std::int32_t z = grid.dim_z() / 2;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t gx = i % side;
    const std::int64_t gy = i / side;
    Coord c{static_cast<std::int32_t>((2 * gx + 1) * grid.dim_x() / (2 * side)),
            static_cast<std::int32_t>((2 * gy + 1) * grid.dim_y() / (2 * side)),
            z};
    c.x = std::min(c.x, grid.dim_x() - 1);
    c.y = std::min(c.y, grid.dim_y() - 1);
    out.push_back(grid.to_id(c));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace simcov
