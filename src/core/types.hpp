#pragma once
// Fundamental SIMCoV types shared by every backend.

#include <cstdint>

namespace simcov {

/// Epithelial cell state machine (§2.2).  Empty voxels model airways /
/// missing tissue; T cells cannot enter them and nothing grows there.
enum class EpiState : std::uint8_t {
  kEmpty = 0,
  kHealthy = 1,
  kIncubating = 2,  ///< infected, producing virions, invisible to T cells
  kExpressing = 3,  ///< infected, producing virions, detectable by T cells
  kApoptotic = 4,   ///< bound by a T cell, dying
  kDead = 5,
};

constexpr int kNumEpiStates = 6;

const char* epi_state_name(EpiState s);

/// Global voxel id: decomposition-independent, used as the RNG entity key so
/// stochastic decisions do not depend on rank layout.
using VoxelId = std::uint64_t;

/// Grid coordinates (always non-negative inside the grid; signed so that
/// ghost/neighbour arithmetic is natural).
struct Coord {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t z = 0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Mutable per-voxel simulation state, struct-of-arrays in every backend.
/// This struct is used only as a value bundle at API boundaries.
struct VoxelState {
  EpiState epi_state = EpiState::kHealthy;
  std::uint32_t epi_timer = 0;   ///< steps remaining in the current state
  std::uint8_t tcell = 0;        ///< 1 if a T cell occupies the voxel
  std::uint32_t tcell_timer = 0; ///< T cell tissue life remaining
  std::uint32_t tcell_bind = 0;  ///< binding countdown; >0 means bound
  float virus = 0.0f;            ///< virion concentration in [0,1]
  float chem = 0.0f;             ///< inflammatory signal in [0,1]

  friend bool operator==(const VoxelState&, const VoxelState&) = default;
};

}  // namespace simcov
