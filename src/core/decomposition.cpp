#include "core/decomposition.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace simcov {

std::int32_t split_start(std::int32_t n, int parts, int i) {
  SIMCOV_REQUIRE(parts >= 1 && i >= 0 && i <= parts, "bad split query");
  const std::int32_t base = n / parts;
  const std::int32_t rem = n % parts;
  return static_cast<std::int32_t>(i) * base + std::min<std::int32_t>(i, rem);
}

namespace {

/// Picks an rx*ry = p rank grid whose aspect best matches the domain's.
void choose_rank_grid(std::int32_t gx, std::int32_t gy, int p, int& rx,
                      int& ry) {
  double best = -1.0;
  rx = 1;
  ry = p;
  for (int cx = 1; cx <= p; ++cx) {
    if (p % cx != 0) continue;
    const int cy = p / cx;
    if (cx > gx || cy > gy) continue;  // never more ranks than voxels per axis
    // Score: how square the per-rank blocks are (1 = perfectly square).
    const double bx = static_cast<double>(gx) / cx;
    const double by = static_cast<double>(gy) / cy;
    const double score = std::min(bx, by) / std::max(bx, by);
    if (score > best) {
      best = score;
      rx = cx;
      ry = cy;
    }
  }
  SIMCOV_REQUIRE(best >= 0.0,
                 "no feasible rank grid (more ranks than voxels per axis?)");
}

}  // namespace

Decomposition::Decomposition(const Grid& grid, int num_ranks, Kind kind)
    : gx_(grid.dim_x()), gy_(grid.dim_y()), gz_(grid.dim_z()) {
  SIMCOV_REQUIRE(num_ranks >= 1, "need at least one rank");
  if (kind == Kind::kLinear) {
    SIMCOV_REQUIRE(num_ranks <= gy_,
                   "linear decomposition: more ranks than rows");
    rx_ = 1;
    ry_ = num_ranks;
  } else {
    choose_rank_grid(gx_, gy_, num_ranks, rx_, ry_);
  }
  build(grid);
}

Decomposition::Decomposition(const Grid& grid, int rx, int ry)
    : rx_(rx), ry_(ry), gx_(grid.dim_x()), gy_(grid.dim_y()),
      gz_(grid.dim_z()) {
  SIMCOV_REQUIRE(rx >= 1 && ry >= 1, "rank grid dims must be positive");
  SIMCOV_REQUIRE(rx <= gx_ && ry <= gy_, "more ranks than voxels per axis");
  build(grid);
}

void Decomposition::build(const Grid& grid) {
  (void)grid;
  x_starts_.resize(static_cast<std::size_t>(rx_) + 1);
  y_starts_.resize(static_cast<std::size_t>(ry_) + 1);
  for (int i = 0; i <= rx_; ++i)
    x_starts_[static_cast<std::size_t>(i)] = split_start(gx_, rx_, i);
  for (int i = 0; i <= ry_; ++i)
    y_starts_[static_cast<std::size_t>(i)] = split_start(gy_, ry_, i);

  subs_.resize(static_cast<std::size_t>(rx_) * ry_);
  for (int cy = 0; cy < ry_; ++cy) {
    for (int cx = 0; cx < rx_; ++cx) {
      const int r = cy * rx_ + cx;
      Subdomain& s = subs_[static_cast<std::size_t>(r)];
      s.rank = r;
      s.origin = {x_starts_[static_cast<std::size_t>(cx)],
                  y_starts_[static_cast<std::size_t>(cy)], 0};
      s.extent = {x_starts_[static_cast<std::size_t>(cx) + 1] -
                      x_starts_[static_cast<std::size_t>(cx)],
                  y_starts_[static_cast<std::size_t>(cy) + 1] -
                      y_starts_[static_cast<std::size_t>(cy)],
                  gz_};
      SIMCOV_REQUIRE(s.extent.x >= 1 && s.extent.y >= 1,
                     "decomposition produced an empty sub-domain");
      s.neighbour[kFaceXNeg] = (cx > 0) ? r - 1 : -1;
      s.neighbour[kFaceXPos] = (cx + 1 < rx_) ? r + 1 : -1;
      s.neighbour[kFaceYNeg] = (cy > 0) ? r - rx_ : -1;
      s.neighbour[kFaceYPos] = (cy + 1 < ry_) ? r + rx_ : -1;
    }
  }
}

const Subdomain& Decomposition::sub(int rank) const {
  SIMCOV_REQUIRE(rank >= 0 && rank < num_ranks(), "rank out of range");
  return subs_[static_cast<std::size_t>(rank)];
}

int Decomposition::owner(const Coord& c) const {
  SIMCOV_REQUIRE(c.x >= 0 && c.x < gx_ && c.y >= 0 && c.y < gy_ && c.z >= 0 &&
                     c.z < gz_,
                 "coordinate outside the grid");
  const auto find_cell = [](const std::vector<std::int32_t>& starts,
                            std::int32_t v) {
    // starts is ascending with starts.front()==0; find the last start <= v.
    auto it = std::upper_bound(starts.begin(), starts.end(), v);
    return static_cast<int>(it - starts.begin()) - 1;
  };
  const int cx = find_cell(x_starts_, c.x);
  const int cy = find_cell(y_starts_, c.y);
  return cy * rx_ + cx;
}

}  // namespace simcov
