#pragma once
// Simulation parameters.
//
// Defaults follow the SARS-CoV-2 parameterization of SIMCoV (Moses et al.,
// PLoS Comp Bio 2021 [25]) as described in the paper: 5 um voxels, 1-minute
// timesteps, Poisson-distributed epithelial state periods, diffusing virion
// and inflammatory-signal fields normalized to [0,1] per voxel, and T cells
// that extravasate with probability proportional to the inflammatory signal.
// Values the paper does not pin down exactly are marked `// approx` — the
// reproduction target is the performance/shape evaluation, not clinical
// epidemiology, and every experiment uses one fixed parameter set for both
// backends so comparisons are apples-to-apples.

#include <cstdint>
#include <string>

#include "util/config.hpp"

namespace simcov {

struct SimParams {
  // --- geometry -----------------------------------------------------------
  std::int32_t dim_x = 256;
  std::int32_t dim_y = 256;
  std::int32_t dim_z = 1;  ///< 1 => 2D simulation (the paper evaluates 2D)

  // --- run control ---------------------------------------------------------
  std::int64_t num_steps = 2000;  ///< paper runs 33,120 (~23 simulated days)
  std::uint64_t seed = 29;

  // --- infection seeding ----------------------------------------------------
  std::int64_t num_foi = 4;  ///< foci of infection, placed uniformly at random
  float initial_virus = 1.0f;  ///< virions deposited at each FOI

  // --- virion field ---------------------------------------------------------
  double virus_diffusion = 0.15;     ///< [25] default diffusion coefficient
  double virus_decay = 0.004;        ///< [25] clearance per timestep
  double virus_production = 0.02;    ///< per infected cell per step (approx)
  double min_virus = 1e-5;           ///< zero-floor epsilon (activity cutoff)
  double infectivity = 0.002;        ///< P(infect) = infectivity * virus

  // --- inflammatory signal --------------------------------------------------
  double chem_diffusion = 1.0;       ///< [25] inflammatory signal spreads fast
  double chem_decay = 0.01;          ///< [25]
  double chem_production = 0.1;      ///< per expressing/apoptotic cell (approx)
  double min_chem = 1e-6;            ///< zero-floor epsilon

  // --- epithelial state periods (means of Poisson samples, in steps) --------
  double incubation_period = 480;    ///< [25] 8 h
  double expressing_period = 900;    ///< [25] 15 h
  double apoptosis_period = 180;     ///< [25] 3 h

  // --- T cells ---------------------------------------------------------------
  double tcell_generation_rate = 2.0;  ///< cells entering vasculature per step (scaled to slice; approx)
  std::int64_t tcell_initial_delay = 10080;  ///< [25] 7 days before response
  double tcell_vascular_period = 5760;       ///< [25] 4 days
  double tcell_tissue_period = 1440;         ///< [25] 1 day
  std::int64_t tcell_binding_period = 10;    ///< [25] 10 min to trigger apoptosis
  std::int64_t max_extravasate_per_step = 4096;  ///< attempt cap (approx)

  // --- GPU backend knobs ------------------------------------------------------
  std::int32_t tile_side = 8;          ///< memory tile edge length (§3.2)
  std::int32_t tile_check_period = 8;  ///< active-tile sweep period, must be <= tile_side
  std::int32_t block_dim = 128;        ///< CUDA threads per block

  /// The paper's default COVID-19 parameter set (above).
  static SimParams covid_default();

  /// A fast-spreading preset for scaled-down benchmarking: same mechanics,
  /// shorter delays and stronger spread so a few hundred steps reproduce the
  /// activity growth the paper sees over 33k steps on a 400x larger grid.
  static SimParams bench_fast();

  /// Applies `key = value` overrides; unknown keys throw.
  void apply(const Config& cfg);

  /// Validates invariants (dimensions positive, tile divisibility handled by
  /// the GPU backend, probabilities in range, ...).  Throws on violation.
  void validate() const;

  std::int64_t num_voxels() const {
    return static_cast<std::int64_t>(dim_x) * dim_y * dim_z;
  }

  bool is_2d() const { return dim_z == 1; }

  std::string summary() const;
};

}  // namespace simcov
