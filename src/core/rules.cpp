#include "core/rules.hpp"

#include <bit>

namespace simcov::rules {

std::uint64_t voxel_digest(VoxelId v, EpiState state, std::uint32_t epi_timer,
                           std::uint8_t tcell, std::uint32_t tcell_timer,
                           std::uint32_t tcell_bind, float virus, float chem) {
  using rng_detail::mix64;
  std::uint64_t h = mix64(v ^ 0x6a09e667f3bcc908ULL);
  h = mix64(h ^ static_cast<std::uint64_t>(state));
  h = mix64(h ^ epi_timer);
  h = mix64(h ^ (static_cast<std::uint64_t>(tcell) << 32 | tcell_timer));
  h = mix64(h ^ tcell_bind);
  h = mix64(h ^ std::bit_cast<std::uint32_t>(virus));
  h = mix64(h ^ std::bit_cast<std::uint32_t>(chem));
  return h;
}

}  // namespace simcov::rules
