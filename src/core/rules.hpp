#pragma once
// The SIMCoV update rules, as pure functions.
//
// This header is the single source of truth for simulation semantics.  The
// serial reference simulator, the CPU-parallel baseline (simcov_cpu) and the
// virtual-GPU implementation (simcov_gpu) all call these functions, so the
// three backends are *bit-identical* by construction — any divergence is a
// bug in a backend's orchestration (decomposition, halos, conflict
// resolution), which is exactly what the equivalence tests hunt for.
//
// Phase order within a timestep (fixed; paper Fig. 1C):
//   1. T cells   : age/unbind, intents, conflict resolution, moves/binds,
//                  then extravasation.
//   2. Epithelial: state machine driven by the virus field from the end of
//                  the previous step.
//   3. Fields    : production + decay into a temp buffer, then one diffusion
//                  step reading the temp buffer, then zero-flooring.
//   4. Reduce    : aggregate statistics; vascular pool update.
//
// All randomness is counter-based (util/rng.hpp): decisions depend only on
// (seed, step, voxel, stream), never on rank count or execution order.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "core/params.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace simcov::rules {

// ---------------------------------------------------------------------------
// T cell intents and conflict resolution (§3.1)
// ---------------------------------------------------------------------------

enum class IntentKind : std::uint8_t { kNone = 0, kMove = 1, kBind = 2 };

struct Intent {
  IntentKind kind = IntentKind::kNone;
  VoxelId target = 0;      ///< global voxel id of the contested resource
  std::uint64_t bid = 0;   ///< unique competition bid (see make_bid)
};

/// Neighbourhood snapshot handed to tcell_intent.  Entries are the in-bounds
/// von Neumann neighbours in contract order (see Grid::neighbours).
struct NeighbourView {
  int count = 0;
  std::array<VoxelId, 6> ids{};
  std::array<EpiState, 6> epi{};
};

/// Decides what a *free* T cell at voxel `v` does this step:
///  * if any expressing epithelial cell is visible (own voxel first, then
///    neighbours in contract order), pick one uniformly and bid to bind it;
///  * otherwise pick a uniformly random tissue neighbour (any non-empty
///    voxel) and bid to move there; with no tissue neighbour, do nothing.
/// Whether the bid wins is resolved later against all competitors.
inline Intent tcell_intent(const CounterRng& rng, std::uint64_t step,
                           VoxelId v, EpiState own_epi,
                           const NeighbourView& nb) {
  // Binding candidates.
  std::array<VoxelId, 7> cand{};
  int n_cand = 0;
  if (own_epi == EpiState::kExpressing) cand[static_cast<std::size_t>(n_cand++)] = v;
  for (int i = 0; i < nb.count; ++i) {
    if (nb.epi[static_cast<std::size_t>(i)] == EpiState::kExpressing) {
      cand[static_cast<std::size_t>(n_cand++)] = nb.ids[static_cast<std::size_t>(i)];
    }
  }
  if (n_cand > 0) {
    const std::uint32_t pick = rng.uniform_int(
        step, v, RngStream::kTCellBindChoice, static_cast<std::uint32_t>(n_cand));
    return {IntentKind::kBind, cand[pick],
            make_bid(rng, step, v, RngStream::kTCellBindBid)};
  }
  // Movement candidates: any in-bounds tissue voxel.
  std::array<VoxelId, 6> mv{};
  int n_mv = 0;
  for (int i = 0; i < nb.count; ++i) {
    if (nb.epi[static_cast<std::size_t>(i)] != EpiState::kEmpty) {
      mv[static_cast<std::size_t>(n_mv++)] = nb.ids[static_cast<std::size_t>(i)];
    }
  }
  if (n_mv == 0) return {};
  const std::uint32_t pick = rng.uniform_int(
      step, v, RngStream::kTCellDirection, static_cast<std::uint32_t>(n_mv));
  return {IntentKind::kMove, mv[pick],
          make_bid(rng, step, v, RngStream::kTCellBid)};
}

// ---------------------------------------------------------------------------
// Epithelial state machine
// ---------------------------------------------------------------------------

struct EpiUpdate {
  EpiState state;
  std::uint32_t timer;
};

/// Samples the Poisson-distributed duration for a state entered at
/// (step, voxel); at least 1 so a state is observable for one step.
inline std::uint32_t sample_period(const CounterRng& rng, std::uint64_t step,
                                   VoxelId v, RngStream stream, double mean) {
  return std::max<std::uint32_t>(1, rng.poisson(step, v, stream, mean));
}

/// One epithelial step.  `virus` is the voxel's virion level at the end of
/// the previous step.  Apoptosis entry happens in the T cell phase (binding),
/// not here.
inline EpiUpdate update_epithelial(const CounterRng& rng, std::uint64_t step,
                                   VoxelId v, EpiState state,
                                   std::uint32_t timer, float virus,
                                   const SimParams& p) {
  switch (state) {
    case EpiState::kHealthy: {
      const double prob = p.infectivity * static_cast<double>(virus);
      if (virus > 0.0f && rng.bernoulli(step, v, RngStream::kInfection, prob)) {
        return {EpiState::kIncubating,
                sample_period(rng, step, v, RngStream::kIncubationPeriod,
                              p.incubation_period)};
      }
      return {state, timer};
    }
    case EpiState::kIncubating: {
      if (timer <= 1) {
        return {EpiState::kExpressing,
                sample_period(rng, step, v, RngStream::kExpressingPeriod,
                              p.expressing_period)};
      }
      return {state, timer - 1};
    }
    case EpiState::kExpressing:
    case EpiState::kApoptotic: {
      if (timer <= 1) return {EpiState::kDead, 0};
      return {state, timer - 1};
    }
    case EpiState::kEmpty:
    case EpiState::kDead:
      return {state, timer};
  }
  return {state, timer};
}

/// Virion producers: all infected live cells ("producing virus while not
/// being detectable" covers incubating; expressing and apoptotic continue).
constexpr bool produces_virus(EpiState s) {
  return s == EpiState::kIncubating || s == EpiState::kExpressing ||
         s == EpiState::kApoptotic;
}

/// Inflammatory-signal producers: cells the immune system has noticed.
constexpr bool produces_chem(EpiState s) {
  return s == EpiState::kExpressing || s == EpiState::kApoptotic;
}

// ---------------------------------------------------------------------------
// Concentration fields
// ---------------------------------------------------------------------------

/// Production + decay, the first field pass.  Clamped to [0,1] (fields are
/// normalized per-voxel saturations, as in SIMCoV).
inline float produce_decay(float c, bool produces, double production,
                           double decay) {
  double v = static_cast<double>(c) * (1.0 - decay);
  if (produces) v += production;
  return static_cast<float>(std::clamp(v, 0.0, 1.0));
}

/// One diffusion step: c' = c + D * (mean(neighbours) - c), the neighbour-
/// average stencil SIMCoV uses; a convex combination for D in [0,1], so the
/// field obeys a discrete maximum principle (property-tested).
/// `nbr_sum` must be accumulated in double, in contract neighbour order.
/// Values below `floor_eps` flush to exactly 0 (the activity cutoff the
/// active list / tile sweep rely on).
inline float diffuse(float c, double nbr_sum, int nbr_count, double diffusion,
                     double floor_eps) {
  double v = static_cast<double>(c);
  if (nbr_count > 0) {
    v += diffusion * (nbr_sum / nbr_count - v);
  }
  v = std::clamp(v, 0.0, 1.0);
  if (v < floor_eps) v = 0.0;
  return static_cast<float>(v);
}

// ---------------------------------------------------------------------------
// Extravasation (T cells entering tissue from the vascular pool)
// ---------------------------------------------------------------------------

/// Number of extravasation attempts a step makes, given the pool size.
inline std::uint64_t num_extravasation_attempts(double pool,
                                                std::int64_t cap) {
  if (pool <= 0.0) return 0;
  const double n = std::floor(pool);
  return static_cast<std::uint64_t>(
      std::min(n, static_cast<double>(cap)));
}

/// The uniformly random voxel attempt `i` targets.  Globally keyed: every
/// rank computes the same attempt list and the owner applies it.
inline VoxelId attempt_voxel(const CounterRng& rng, std::uint64_t step,
                             std::uint64_t i, std::uint64_t num_voxels) {
  return rng.uniform_int(step, i, RngStream::kExtravasate,
                         static_cast<std::uint32_t>(num_voxels));
}

/// Acceptance: probability equals the inflammatory-signal level at the
/// target voxel (fields are normalized to [0,1]).
inline bool attempt_accepted(const CounterRng& rng, std::uint64_t step,
                             std::uint64_t i, float chem) {
  return chem > 0.0f &&
         rng.bernoulli(step, i, RngStream::kExtravasateProb,
                       static_cast<double>(chem));
}

/// Vascular pool dynamics applied at the end of each step: production (after
/// the initial delay), exponential decay with the vascular residence period,
/// minus the cells that successfully extravasated this step.
inline double pool_after_step(double pool, std::uint64_t step,
                              const SimParams& p, std::uint64_t successes) {
  if (static_cast<std::int64_t>(step) >= p.tcell_initial_delay) {
    pool += p.tcell_generation_rate;
  }
  pool *= (1.0 - 1.0 / p.tcell_vascular_period);
  pool -= static_cast<double>(successes);
  return std::max(pool, 0.0);
}

// ---------------------------------------------------------------------------
// State digests (test support)
// ---------------------------------------------------------------------------

/// Order-independent digest contribution of one voxel's full state; the
/// global digest is the XOR over all voxels, so parallel backends can fold
/// their local digests with an XOR-reduction and compare against the
/// reference bit-for-bit.
std::uint64_t voxel_digest(VoxelId v, EpiState state, std::uint32_t epi_timer,
                           std::uint8_t tcell, std::uint32_t tcell_timer,
                           std::uint32_t tcell_bind, float virus, float chem);

}  // namespace simcov::rules
