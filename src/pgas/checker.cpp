#include "pgas/checker.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace simcov::pgas {

const char* collective_op_name(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kNone: return "<none>";
    case CollectiveOp::kSum: return "allreduce_sum";
    case CollectiveOp::kMax: return "allreduce_max";
    case CollectiveOp::kXor: return "allreduce_xor";
    case CollectiveOp::kBroadcast: return "broadcast";
  }
  return "<invalid>";
}

DisciplineChecker::DisciplineChecker(int num_ranks)
    : num_ranks_(num_ranks),
      epochs_(static_cast<std::size_t>(num_ranks)),
      targets_(static_cast<std::size_t>(num_ranks)),
      collectives_(static_cast<std::size_t>(num_ranks)) {
  SIMCOV_REQUIRE(num_ranks >= 1, "checker needs at least one rank");
}

DisciplineChecker::~DisciplineChecker() = default;

void DisciplineChecker::on_barrier(RankId rank) {
  epochs_[static_cast<std::size_t>(rank)].fetch_add(
      1, std::memory_order_relaxed);
}

void DisciplineChecker::on_put(RankId source, RankId target, int channel,
                               std::size_t offset, std::size_t len) {
  const std::uint64_t src_epoch =
      epochs_[static_cast<std::size_t>(source)].load(std::memory_order_relaxed);
  const std::uint64_t dst_epoch =
      epochs_[static_cast<std::size_t>(target)].load(std::memory_order_relaxed);
  // Records older than the previous epoch can never match a future read or
  // put again (epochs only grow), so pruning here bounds memory to roughly
  // two epochs of traffic per channel.
  const std::uint64_t keep_from =
      std::min(src_epoch, dst_epoch) == 0 ? 0 : std::min(src_epoch, dst_epoch) - 1;

  TargetState& ts = targets_[static_cast<std::size_t>(target)];
  std::lock_guard<std::mutex> lock(ts.mutex);

  auto& records = ts.puts[channel];
  std::erase_if(records,
                [keep_from](const PutRecord& r) { return r.epoch < keep_from; });

  for (const PutRecord& r : records) {
    if (r.epoch != src_epoch || r.source == source) continue;
    const bool overlap = offset < r.offset + r.len && r.offset < offset + len;
    if (!overlap) continue;
    std::ostringstream os;
    os << "conflicting-puts: ranks " << std::min(r.source, source) << " and "
       << std::max(r.source, source) << " both put overlapping byte ranges ["
       << r.offset << "," << r.offset + r.len << ") and [" << offset << ","
       << offset + len << ") into rank " << target << " channel " << channel
       << " in epoch " << src_epoch
       << " — conflicting writers must be barrier-separated (or resolved by "
          "a bid protocol before the put)";
    record_violation(os.str());
  }

  // The owner read this channel in the putting rank's epoch: same race as an
  // unbarriered read, just with the other temporal order.
  auto read_it = ts.read_epochs.find(channel);
  if (read_it != ts.read_epochs.end() && read_it->second == src_epoch) {
    std::ostringstream os;
    os << "unbarriered-read: rank " << source << " put [" << offset << ","
       << offset + len << ") into rank " << target << " channel " << channel
       << " in epoch " << src_epoch
       << ", which rank " << target
       << " already read in the same epoch — puts and channel reads must be "
          "separated by a barrier";
    record_violation(os.str());
  }

  records.push_back(PutRecord{src_epoch, source, offset, len});
}

void DisciplineChecker::on_channel_read(RankId reader, int channel) {
  const std::uint64_t epoch =
      epochs_[static_cast<std::size_t>(reader)].load(std::memory_order_relaxed);
  TargetState& ts = targets_[static_cast<std::size_t>(reader)];
  std::lock_guard<std::mutex> lock(ts.mutex);

  auto it = ts.puts.find(channel);
  if (it != ts.puts.end()) {
    for (const PutRecord& r : it->second) {
      if (r.epoch != epoch) continue;
      std::ostringstream os;
      os << "unbarriered-read: rank " << reader << " read channel " << channel
         << " in epoch " << epoch << ", which also received a put of ["
         << r.offset << "," << r.offset + r.len << ") from rank " << r.source
         << " in the same epoch — insert a barrier between the exchange and "
            "the read";
      record_violation(os.str());
    }
  }

  auto [rit, inserted] = ts.read_epochs.try_emplace(channel, epoch);
  if (!inserted) rit->second = std::max(rit->second, epoch);
}

void DisciplineChecker::on_collective_enter(RankId rank, CollectiveOp op,
                                            std::size_t count) {
  CollectiveMeta& m = collectives_[static_cast<std::size_t>(rank)];
  m.op.store(op, std::memory_order_relaxed);
  m.count.store(count, std::memory_order_relaxed);
  m.seq.fetch_add(1, std::memory_order_relaxed);
}

bool DisciplineChecker::on_collective_verify(RankId rank) {
  const CollectiveMeta& mine = collectives_[static_cast<std::size_t>(rank)];
  const std::uint64_t my_seq = mine.seq.load(std::memory_order_relaxed);
  const CollectiveOp my_op = mine.op.load(std::memory_order_relaxed);
  const std::uint64_t my_count = mine.count.load(std::memory_order_relaxed);

  bool all_matched = true;
  for (int r = 0; r < num_ranks_; ++r) {
    if (r == rank) continue;
    const CollectiveMeta& other = collectives_[static_cast<std::size_t>(r)];
    const std::uint64_t o_seq = other.seq.load(std::memory_order_relaxed);
    const CollectiveOp o_op = other.op.load(std::memory_order_relaxed);
    const std::uint64_t o_count = other.count.load(std::memory_order_relaxed);
    if (o_seq == my_seq && o_op == my_op && o_count == my_count) continue;
    all_matched = false;

    // Canonical message (lower rank first) so both observers deduplicate to
    // a single report.
    const bool swap = r < rank;
    const int rank_a = swap ? r : rank;
    const int rank_b = swap ? rank : r;
    const auto desc = [](CollectiveOp op, std::uint64_t count,
                         std::uint64_t seq) {
      std::ostringstream d;
      d << collective_op_name(op) << "(len " << count << ") as collective #"
        << seq;
      return d.str();
    };
    std::ostringstream os;
    os << "collective-mismatch: rank " << rank_a << " called "
       << (swap ? desc(o_op, o_count, o_seq) : desc(my_op, my_count, my_seq))
       << " but rank " << rank_b << " called "
       << (swap ? desc(my_op, my_count, my_seq) : desc(o_op, o_count, o_seq))
       << " — collectives must be entered by every rank with identical "
          "operation and shape";
    record_violation(os.str());
  }
  return all_matched;
}

void DisciplineChecker::on_job_end(RankId rank, std::size_t queued_rpcs) {
  if (queued_rpcs == 0) return;
  std::ostringstream os;
  os << "undrained-rpcs: rank " << rank << " finished the job with "
     << queued_rpcs
     << " RPC(s) still queued — every phase that issues RPCs must end with "
        "rpc_quiescence() (or the target must call progress())";
  record_violation(os.str());
}

void DisciplineChecker::record_violation(const std::string& message) {
  std::lock_guard<std::mutex> lock(violations_mutex_);
  ++total_violations_;
  if (violations_.size() >= kMaxRecordedViolations) return;
  if (std::find(violations_.begin(), violations_.end(), message) !=
      violations_.end()) {
    return;
  }
  violations_.push_back(message);
}

bool DisciplineChecker::clean() const {
  std::lock_guard<std::mutex> lock(violations_mutex_);
  return total_violations_ == 0;
}

std::uint64_t DisciplineChecker::violation_count() const {
  std::lock_guard<std::mutex> lock(violations_mutex_);
  return total_violations_;
}

std::string DisciplineChecker::report() const {
  std::lock_guard<std::mutex> lock(violations_mutex_);
  if (total_violations_ == 0) return "";
  std::ostringstream os;
  os << "[pgas-check] PGAS discipline check failed: " << total_violations_
     << " violation(s), " << violations_.size() << " unique:";
  for (const auto& v : violations_) os << "\n  - " << v;
  if (total_violations_ > violations_.size()) {
    os << "\n  (further duplicates/overflow suppressed)";
  }
  return os.str();
}

}  // namespace simcov::pgas
