#pragma once
// Per-rank communication counters.
//
// The performance model (src/perfmodel) prices communication from these
// counters: RPC count/bytes for the CPU baseline's tiebreak traffic, bulk
// copy count/bytes for the GPU version's halo exchanges, and collective
// counts for the per-step statistics reductions.  Counting happens at the
// PGAS layer so neither simulation backend can forget to report traffic.

#include <cstdint>

namespace simcov::pgas {

struct CommStats {
  std::uint64_t rpcs_sent = 0;     ///< remote procedure calls issued
  std::uint64_t rpc_bytes = 0;     ///< approximate payload bytes of RPCs
  std::uint64_t puts = 0;          ///< bulk one-sided copies issued
  std::uint64_t put_bytes = 0;     ///< bytes moved by bulk copies
  std::uint64_t barriers = 0;      ///< barrier participations
  std::uint64_t reductions = 0;    ///< collective reductions participated in
  std::uint64_t reduction_bytes = 0; ///< bytes contributed to reductions
  std::uint64_t broadcasts = 0;      ///< broadcast participations
  std::uint64_t broadcast_bytes = 0; ///< bytes received/sent in broadcasts
  /// Cumulative wall-clock time this rank spent waiting at barriers.  A
  /// *measured* quantity (unlike every other counter, which is exact event
  /// counting): the per-rank spread of this number is load imbalance.  The
  /// cost model does not price it; the metrics layer exports it per step.
  std::uint64_t barrier_wait_ns = 0;

  CommStats& operator+=(const CommStats& o) {
    rpcs_sent += o.rpcs_sent;
    rpc_bytes += o.rpc_bytes;
    puts += o.puts;
    put_bytes += o.put_bytes;
    barriers += o.barriers;
    reductions += o.reductions;
    reduction_bytes += o.reduction_bytes;
    broadcasts += o.broadcasts;
    broadcast_bytes += o.broadcast_bytes;
    barrier_wait_ns += o.barrier_wait_ns;
    return *this;
  }

  /// Difference since a snapshot (used for per-step accounting).
  CommStats since(const CommStats& snapshot) const {
    CommStats d;
    d.rpcs_sent = rpcs_sent - snapshot.rpcs_sent;
    d.rpc_bytes = rpc_bytes - snapshot.rpc_bytes;
    d.puts = puts - snapshot.puts;
    d.put_bytes = put_bytes - snapshot.put_bytes;
    d.barriers = barriers - snapshot.barriers;
    d.reductions = reductions - snapshot.reductions;
    d.reduction_bytes = reduction_bytes - snapshot.reduction_bytes;
    d.broadcasts = broadcasts - snapshot.broadcasts;
    d.broadcast_bytes = broadcast_bytes - snapshot.broadcast_bytes;
    d.barrier_wait_ns = barrier_wait_ns - snapshot.barrier_wait_ns;
    return d;
  }
};

}  // namespace simcov::pgas
