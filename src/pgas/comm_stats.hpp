#pragma once
// Per-rank communication counters.
//
// The performance model (src/perfmodel) prices communication from these
// counters: RPC count/bytes for the CPU baseline's tiebreak traffic, bulk
// copy count/bytes for the GPU version's halo exchanges, and collective
// counts for the per-step statistics reductions.  Counting happens at the
// PGAS layer so neither simulation backend can forget to report traffic.
//
// Besides the aggregate counters, every rank keeps a per-destination
// breakdown of its point-to-point traffic (`peers`): one PeerStats per
// (this rank -> dst) pair touched by put() or rpc().  Summing a rank's
// PeerStats over all destinations reproduces its aggregate puts/put_bytes/
// rpcs_sent/rpc_bytes exactly (tested in tests/pgas_test.cpp); the full
// (src,dst) matrix is what makes halo-exchange imbalance from the domain
// decomposition directly visible in bench reports and metrics snapshots.

#include <cstdint>
#include <map>

namespace simcov::pgas {

/// Point-to-point traffic from one rank to one destination rank.
struct PeerStats {
  std::uint64_t rpcs_sent = 0;  ///< RPCs enqueued on this destination
  std::uint64_t rpc_bytes = 0;  ///< approximate RPC payload bytes
  std::uint64_t puts = 0;       ///< bulk one-sided copies to this destination
  std::uint64_t put_bytes = 0;  ///< bytes moved by those copies

  PeerStats& operator+=(const PeerStats& o) {
    rpcs_sent += o.rpcs_sent;
    rpc_bytes += o.rpc_bytes;
    puts += o.puts;
    put_bytes += o.put_bytes;
    return *this;
  }

  bool zero() const {
    return rpcs_sent == 0 && rpc_bytes == 0 && puts == 0 && put_bytes == 0;
  }

  friend bool operator==(const PeerStats&, const PeerStats&) = default;
};

struct CommStats {
  std::uint64_t rpcs_sent = 0;     ///< remote procedure calls issued
  std::uint64_t rpc_bytes = 0;     ///< approximate payload bytes of RPCs
  std::uint64_t puts = 0;          ///< bulk one-sided copies issued
  std::uint64_t put_bytes = 0;     ///< bytes moved by bulk copies
  std::uint64_t barriers = 0;      ///< barrier participations
  std::uint64_t reductions = 0;    ///< collective reductions participated in
  std::uint64_t reduction_bytes = 0; ///< bytes contributed to reductions
  std::uint64_t broadcasts = 0;      ///< broadcast participations
  std::uint64_t broadcast_bytes = 0; ///< bytes received/sent in broadcasts
  /// Cumulative wall-clock time this rank spent waiting at barriers.  A
  /// *measured* quantity (unlike every other counter, which is exact event
  /// counting): the per-rank spread of this number is load imbalance.  The
  /// cost model does not price it; the metrics layer exports it per step.
  std::uint64_t barrier_wait_ns = 0;
  /// Per-destination point-to-point breakdown: dst rank -> traffic this
  /// rank sent there.  Row of the (src,dst) communication matrix; summed
  /// over keys it equals the aggregate rpc/put counters above.
  std::map<int, PeerStats> peers;

  CommStats& operator+=(const CommStats& o) {
    rpcs_sent += o.rpcs_sent;
    rpc_bytes += o.rpc_bytes;
    puts += o.puts;
    put_bytes += o.put_bytes;
    barriers += o.barriers;
    reductions += o.reductions;
    reduction_bytes += o.reduction_bytes;
    broadcasts += o.broadcasts;
    broadcast_bytes += o.broadcast_bytes;
    barrier_wait_ns += o.barrier_wait_ns;
    for (const auto& [dst, p] : o.peers) peers[dst] += p;
    return *this;
  }

  /// Difference since a snapshot (used for per-step accounting).  Counters
  /// are monotonic, so every key in `snapshot.peers` exists here too;
  /// all-zero peer deltas are dropped to keep per-phase samples small.
  CommStats since(const CommStats& snapshot) const {
    CommStats d;
    d.rpcs_sent = rpcs_sent - snapshot.rpcs_sent;
    d.rpc_bytes = rpc_bytes - snapshot.rpc_bytes;
    d.puts = puts - snapshot.puts;
    d.put_bytes = put_bytes - snapshot.put_bytes;
    d.barriers = barriers - snapshot.barriers;
    d.reductions = reductions - snapshot.reductions;
    d.reduction_bytes = reduction_bytes - snapshot.reduction_bytes;
    d.broadcasts = broadcasts - snapshot.broadcasts;
    d.broadcast_bytes = broadcast_bytes - snapshot.broadcast_bytes;
    d.barrier_wait_ns = barrier_wait_ns - snapshot.barrier_wait_ns;
    for (const auto& [dst, p] : peers) {
      PeerStats dp = p;
      const auto it = snapshot.peers.find(dst);
      if (it != snapshot.peers.end()) {
        dp.rpcs_sent -= it->second.rpcs_sent;
        dp.rpc_bytes -= it->second.rpc_bytes;
        dp.puts -= it->second.puts;
        dp.put_bytes -= it->second.put_bytes;
      }
      if (!dp.zero()) d.peers.emplace(dst, dp);
    }
    return d;
  }
};

}  // namespace simcov::pgas
