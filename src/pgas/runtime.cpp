#include "pgas/runtime.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pgas/checker.hpp"
#include "util/error.hpp"

namespace simcov::pgas {

namespace {

bool env_check_enabled() {
  // Read in the Runtime constructor, before rank threads exist; nothing in
  // the library calls setenv.
  const char* e = std::getenv("SIMCOV_PGAS_CHECK");  // NOLINT(concurrency-mt-unsafe)
  return e != nullptr && *e != '\0' && std::string_view(e) != "0";
}

}  // namespace

// ---------------------------------------------------------------------------
// Rank
// ---------------------------------------------------------------------------

int Rank::world_size() const { return runtime_.num_ranks_; }

void Rank::barrier() {
  ++stats_.barriers;
  // Wait time is always measured (two clock reads against a syscall-class
  // wait): its per-rank spread is the load-imbalance signal the metrics
  // layer exports, and CommStats carries it whether or not obs is on.
  const obs::Nanos t0 = obs::now_ns();
  runtime_.barrier_->arrive_and_wait();
  const obs::Nanos t1 = obs::now_ns();
  stats_.barrier_wait_ns += static_cast<std::uint64_t>(t1 - t0);
  if (obs::tracer().enabled()) obs::tracer().record("barrier", id_, t0, t1);
  if (auto* ck = runtime_.checker_.get()) ck->on_barrier(id_);
}

void Rank::rpc(RankId target, std::function<void()> fn,
               std::size_t approx_bytes) {
  SIMCOV_REQUIRE(target >= 0 && target < world_size(),
                 "rpc target rank out of range");
  ++stats_.rpcs_sent;
  stats_.rpc_bytes += approx_bytes;
  // Comm-matrix row: counted at the same point as the aggregates so the
  // per-destination sums always equal rpcs_sent / rpc_bytes exactly.
  PeerStats& peer = stats_.peers[target];
  ++peer.rpcs_sent;
  peer.rpc_bytes += approx_bytes;
  Rank& t = *runtime_.ranks_[static_cast<std::size_t>(target)];
  std::lock_guard<std::mutex> lock(t.rpc_mutex_);
  t.rpc_queue_.push_back(std::move(fn));
}

void Rank::progress() {
  // Drain in arrival order.  RPCs may themselves enqueue follow-up RPCs to
  // *other* ranks; RPCs targeted at this rank from inside progress() are
  // picked up by the loop as well (queue is re-checked).
  for (;;) {
    std::vector<std::function<void()>> batch;
    {
      std::lock_guard<std::mutex> lock(rpc_mutex_);
      batch.swap(rpc_queue_);
    }
    if (batch.empty()) break;
    // Queue depth at drain time: the distribution (not just the total RPC
    // count) shows whether tiebreak traffic arrives bursty or steady.
    if (obs::metrics().enabled()) {
      obs::metrics().observe("pgas.rpc_batch", id_,
                             static_cast<double>(batch.size()));
    }
    obs::ScopedSpan span("rpc_drain", id_);
    for (auto& fn : batch) fn();
  }
}

void Rank::rpc_quiescence() {
  barrier();
  progress();
  barrier();
}

std::vector<double> Rank::allreduce_sum(std::span<const double> values) {
  ++stats_.reductions;
  stats_.reduction_bytes += values.size_bytes();
  auto* ck = runtime_.checker_.get();
  if (ck) ck->on_collective_enter(id_, CollectiveOp::kSum, values.size());
  auto& slots = runtime_.collective_slots_;
  auto& mine = slots[static_cast<std::size_t>(id_)];
  mine.assign(values.begin(), values.end());
  barrier();
  // On a checker-detected mismatch the combine is skipped: reading the
  // mismatched slots would throw mid-superstep and strand the peers at the
  // team barrier.  The job limps to completion and run() throws the report.
  const bool combine = ck == nullptr || ck->on_collective_verify(id_);
  std::vector<double> out(values.size(), 0.0);
  if (combine) {
    for (int r = 0; r < world_size(); ++r) {
      const auto& slot = slots[static_cast<std::size_t>(r)];
      SIMCOV_REQUIRE(slot.size() == values.size(),
                     "allreduce called with mismatched lengths across ranks");
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += slot[i];
    }
  }
  barrier();  // all ranks done reading before slots are reused
  return out;
}

double Rank::allreduce_sum(double value) {
  return allreduce_sum(std::span<const double>(&value, 1))[0];
}

std::uint64_t Rank::allreduce_sum(std::uint64_t value) {
  // Counts in SIMCoV are bounded well below 2^53, so a double-backed sum is
  // exact; enforce the precondition instead of silently losing bits.
  SIMCOV_REQUIRE(value < (1ULL << 53), "allreduce_sum(u64) value too large");
  return static_cast<std::uint64_t>(allreduce_sum(static_cast<double>(value)));
}

std::uint64_t Rank::allreduce_max(std::uint64_t value) {
  ++stats_.reductions;
  stats_.reduction_bytes += sizeof(value);
  auto* ck = runtime_.checker_.get();
  if (ck) ck->on_collective_enter(id_, CollectiveOp::kMax, 1);
  auto& slots = runtime_.collective_slots_;
  // Full 64-bit values (bids) must survive intact: pass the bit pattern.
  slots[static_cast<std::size_t>(id_)].assign(
      1, std::bit_cast<double>(value));
  barrier();
  const bool combine = ck == nullptr || ck->on_collective_verify(id_);
  std::uint64_t out = 0;
  if (combine) {
    for (int r = 0; r < world_size(); ++r) {
      const auto& slot = slots[static_cast<std::size_t>(r)];
      SIMCOV_REQUIRE(slot.size() == 1, "allreduce_max shape mismatch");
      out = std::max(out, std::bit_cast<std::uint64_t>(slot[0]));
    }
  }
  barrier();
  return out;
}

std::uint64_t Rank::allreduce_xor(std::uint64_t value) {
  ++stats_.reductions;
  stats_.reduction_bytes += sizeof(value);
  auto* ck = runtime_.checker_.get();
  if (ck) ck->on_collective_enter(id_, CollectiveOp::kXor, 1);
  auto& slots = runtime_.collective_slots_;
  slots[static_cast<std::size_t>(id_)].assign(1, std::bit_cast<double>(value));
  barrier();
  const bool combine = ck == nullptr || ck->on_collective_verify(id_);
  std::uint64_t out = 0;
  if (combine) {
    for (int r = 0; r < world_size(); ++r) {
      const auto& slot = slots[static_cast<std::size_t>(r)];
      SIMCOV_REQUIRE(slot.size() == 1, "allreduce_xor shape mismatch");
      out ^= std::bit_cast<std::uint64_t>(slot[0]);
    }
  }
  barrier();
  return out;
}

void Rank::broadcast(RankId root, std::span<std::byte> data) {
  SIMCOV_REQUIRE(root >= 0 && root < world_size(),
                 "broadcast root rank out of range");
  ++stats_.broadcasts;
  stats_.broadcast_bytes += data.size();
  auto* ck = runtime_.checker_.get();
  if (ck) ck->on_collective_enter(id_, CollectiveOp::kBroadcast, data.size());
  obs::ScopedSpan span("broadcast", id_);
  auto& buf = runtime_.bcast_buf_;
  if (id_ == root) buf.assign(data.begin(), data.end());
  barrier();
  // Shape mismatch under the checker: skip the copy (same limp-to-report
  // policy as the reductions — see allreduce_sum).
  const bool combine = ck == nullptr || ck->on_collective_verify(id_);
  if (combine && id_ != root && !data.empty()) {
    SIMCOV_REQUIRE(buf.size() == data.size(),
                   "broadcast called with mismatched sizes across ranks");
    std::memcpy(data.data(), buf.data(), data.size());
  }
  barrier();  // all ranks done reading before the buffer is reused
}

void Rank::register_channel(int chan, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(channel_mutex_);
  auto [it, inserted] = channels_.try_emplace(chan);
  it->second.assign(bytes, std::byte{0});
  (void)inserted;
}

void Rank::put(RankId target, int chan, std::span<const std::byte> data,
               std::size_t offset) {
  SIMCOV_REQUIRE(target >= 0 && target < world_size(),
                 "put target rank out of range");
  ++stats_.puts;
  stats_.put_bytes += data.size();
  // Counted alongside the aggregates (before channel validation, like puts/
  // put_bytes) so matrix row sums stay exactly equal to the aggregates.
  PeerStats& peer = stats_.peers[target];
  ++peer.puts;
  peer.put_bytes += data.size();
  obs::ScopedSpan span("put", id_);
  Rank& t = *runtime_.ranks_[static_cast<std::size_t>(target)];
  std::lock_guard<std::mutex> lock(t.channel_mutex_);
  auto it = t.channels_.find(chan);
  SIMCOV_REQUIRE(it != t.channels_.end(),
                 "put into unregistered channel " + std::to_string(chan) +
                     " on rank " + std::to_string(target));
  // Checked as two comparisons so a huge offset cannot wrap the unsigned
  // sum and slip past the bound.
  SIMCOV_REQUIRE(offset <= it->second.size() &&
                     data.size() <= it->second.size() - offset,
                 "put overflows channel " + std::to_string(chan) + " (" +
                     std::to_string(offset) + " + " +
                     std::to_string(data.size()) + " > " +
                     std::to_string(it->second.size()) + " bytes)");
  // Record only validated puts, so a rejected call cannot seed a spurious
  // diagnostic against the target.
  if (auto* ck = runtime_.checker_.get()) {
    ck->on_put(id_, target, chan, offset, data.size());
  }
  std::memcpy(it->second.data() + offset, data.data(), data.size());
}

std::span<const std::byte> Rank::channel(int chan) const {
  if (auto* ck = runtime_.checker_.get()) ck->on_channel_read(id_, chan);
  std::lock_guard<std::mutex> lock(channel_mutex_);
  auto it = channels_.find(chan);
  SIMCOV_REQUIRE(it != channels_.end(),
                 "reading unregistered channel " + std::to_string(chan));
  return {it->second.data(), it->second.size()};
}

std::span<std::byte> Rank::channel_mutable(int chan) {
  if (auto* ck = runtime_.checker_.get()) ck->on_channel_read(id_, chan);
  std::lock_guard<std::mutex> lock(channel_mutex_);
  auto it = channels_.find(chan);
  SIMCOV_REQUIRE(it != channels_.end(),
                 "reading unregistered channel " + std::to_string(chan));
  return {it->second.data(), it->second.size()};
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(int num_ranks, RuntimeOptions options)
    : num_ranks_(num_ranks),
      check_enabled_(options.check_discipline || env_check_enabled()) {
  SIMCOV_REQUIRE(num_ranks >= 1, "runtime needs at least one rank");
  SIMCOV_REQUIRE(num_ranks <= 4096, "unreasonable rank count");
  barrier_ = std::make_unique<std::barrier<>>(num_ranks);
  collective_slots_.resize(static_cast<std::size_t>(num_ranks));
  last_stats_.resize(static_cast<std::size_t>(num_ranks));
}

Runtime::~Runtime() = default;

void Runtime::run(const std::function<void(Rank&)>& fn) {
  // Fresh Rank objects per job: clean RPC queues, channels and counters.
  // The checker is recreated too, so epochs and put logs start at zero.
  ranks_.clear();
  checker_.reset();
  if (check_enabled_) checker_ = std::make_unique<DisciplineChecker>(num_ranks_);
  for (int r = 0; r < num_ranks_; ++r) {
    // make_unique cannot reach the private constructor; ownership is taken
    // by the unique_ptr in the same expression.
    ranks_.emplace_back(std::unique_ptr<Rank>(new Rank(*this, r)));
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
        fn(*ranks_[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // A rank that dies stops participating in barriers; drop the team
        // barrier for the remaining ranks by arriving on its behalf would
        // hide bugs, so instead we simply record and let join() proceed —
        // SPMD code in this repo throws only before entering the
        // bulk-synchronous phase (config validation), which tests rely on.
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < num_ranks_; ++r) {
    last_stats_[static_cast<std::size_t>(r)] =
        ranks_[static_cast<std::size_t>(r)]->stats();
  }
  // Export the (src,dst) communication matrix into the metrics snapshot:
  // one counter per touched pair and field, keyed by destination in the
  // name and by source in the metrics rank dimension.  Done once per job
  // after the join so it costs nothing on the rank critical path.
  if (obs::metrics().enabled()) {
    for (int r = 0; r < num_ranks_; ++r) {
      const CommStats& s = last_stats_[static_cast<std::size_t>(r)];
      for (const auto& [dst, p] : s.peers) {
        const std::string suffix = "_to." + std::to_string(dst);
        auto& m = obs::metrics();
        if (p.puts != 0) {
          m.add("comm.puts" + suffix, r, static_cast<double>(p.puts));
          m.add("comm.put_bytes" + suffix, r,
                static_cast<double>(p.put_bytes));
        }
        if (p.rpcs_sent != 0) {
          m.add("comm.rpcs" + suffix, r, static_cast<double>(p.rpcs_sent));
          m.add("comm.rpc_bytes" + suffix, r,
                static_cast<double>(p.rpc_bytes));
        }
      }
    }
  }
  if (checker_) {
    for (int r = 0; r < num_ranks_; ++r) {
      Rank& rank = *ranks_[static_cast<std::size_t>(r)];
      std::lock_guard<std::mutex> lock(rank.rpc_mutex_);
      checker_->on_job_end(r, rank.rpc_queue_.size());
    }
    if (!checker_->clean()) {
      // The discipline report is the diagnosis; a rank exception (if any)
      // is usually a downstream symptom, so it is appended, not preferred.
      std::string what = checker_->report();
      for (const auto& e : errors) {
        if (!e) continue;
        try {
          std::rethrow_exception(e);
        } catch (const std::exception& ex) {
          what += "\n  (a rank also threw: " + std::string(ex.what()) + ")";
        } catch (...) {
          what += "\n  (a rank also threw a non-std exception)";
        }
        break;
      }
      throw Error(what);
    }
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

CommStats Runtime::total_stats() const {
  CommStats total;
  for (const auto& s : last_stats_) total += s;
  return total;
}

const CommStats& Runtime::rank_stats(RankId r) const {
  SIMCOV_REQUIRE(r >= 0 && r < num_ranks_, "rank id out of range");
  return last_stats_[static_cast<std::size_t>(r)];
}

}  // namespace simcov::pgas
