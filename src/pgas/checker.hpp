#pragma once
// Runtime discipline checker for the PGAS layer.
//
// The runtime's correctness contract (runtime.hpp) is a documented
// bulk-synchronous discipline: puts must be barrier-separated from the
// target's channel reads, conflicting writers must be resolved before the
// bytes race (the paper's §3.1 bid protocol exists for exactly this), RPC
// queues must be drained before a job ends, and collectives must be called
// with identical shape on every rank.  On real UPC++ a violation is a
// silent data race; in this rank-per-thread substitute it is usually an
// *invisible* race because "remote" memory is local.  The checker makes
// every violation a hard diagnostic.
//
// Mechanism: barrier-epoch tracking.  Every rank carries an epoch counter
// bumped each time it crosses a barrier (collectives barrier internally, so
// they advance epochs too).  Then:
//
//   * unbarriered-read    — a channel byte range was put in epoch E and the
//                           owner read the channel while still in epoch E
//                           (either order: a read followed by a same-epoch
//                           incoming put is flagged at the put).
//   * conflicting-puts    — two ranks put overlapping byte ranges into the
//                           same channel in the same epoch; last-writer-wins
//                           would be schedule-dependent.
//   * undrained-rpcs      — a job finished with RPCs still queued on some
//                           rank (missing progress()/rpc_quiescence()).
//   * collective-mismatch — ranks disagree on the collective sequence
//                           number, operation, or element count.
//
// The checker never throws at the detection site: a rank that aborted
// mid-superstep would leave its peers blocked on the team barrier and turn
// a diagnosable bug into a hang.  Violations are recorded (deduplicated,
// capped) and Runtime::run() throws one aggregated simcov::Error after all
// rank threads have joined.
//
// Every hook is internally synchronized and safe to call from violating
// programs: epochs are atomics, per-target put logs are mutex-guarded, and
// collective descriptors are read with relaxed atomics (a torn read can
// only happen in an already-detected mismatch window).
//
// Cost: when checking is disabled the runtime holds a null pointer and each
// primitive pays one branch.  When enabled, puts/reads take one small
// mutex; put logs are pruned every epoch so memory stays proportional to the
// traffic of the two most recent epochs.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simcov::pgas {

using RankId = int;

/// Collective operation tags for shape verification.  Scalar and u64 sums
/// route through the vector sum, so they share kSum with count == 1.
/// Broadcasts verify op + byte count (the root is not part of the shape).
enum class CollectiveOp : std::uint8_t { kNone = 0, kSum, kMax, kXor, kBroadcast };

const char* collective_op_name(CollectiveOp op);

class DisciplineChecker {
 public:
  explicit DisciplineChecker(int num_ranks);
  ~DisciplineChecker();

  DisciplineChecker(const DisciplineChecker&) = delete;
  DisciplineChecker& operator=(const DisciplineChecker&) = delete;

  /// Called after the rank returns from the team barrier.
  void on_barrier(RankId rank);

  /// Called by put() after bounds checks, before the bytes are copied.
  void on_put(RankId source, RankId target, int channel, std::size_t offset,
              std::size_t len);

  /// Called when a rank takes a (const or mutable) view of its own channel.
  void on_channel_read(RankId reader, int channel);

  /// Called at the top of a collective, before the rank's slot is written.
  void on_collective_enter(RankId rank, CollectiveOp op, std::size_t count);

  /// Called after the collective's exchange barrier; verifies that every
  /// rank entered the same collective with the same shape.  Returns false
  /// (after recording the violation) when any peer disagrees — the caller
  /// must then *skip* its combine: reading mismatched slots would throw
  /// mid-superstep, desert the team barrier, and hang the remaining ranks,
  /// turning a diagnosable bug into a deadlock.  The job completes with
  /// garbage collective results and run() throws the aggregated report.
  bool on_collective_verify(RankId rank);

  /// Called by Runtime::run() after all rank threads joined.
  void on_job_end(RankId rank, std::size_t queued_rpcs);

  /// True iff no violation has been recorded.
  bool clean() const;
  /// Number of violations recorded (deduplicated messages may be fewer).
  std::uint64_t violation_count() const;
  /// Multi-line human-readable report ("" when clean).
  std::string report() const;

 private:
  struct PutRecord {
    std::uint64_t epoch;
    RankId source;
    std::size_t offset;
    std::size_t len;
  };

  // Per-target-rank channel history.  Mutex-guarded because the writer is
  // the *source* rank's thread while reads come from the owner.
  struct TargetState {
    std::mutex mutex;
    std::map<int, std::vector<PutRecord>> puts;
    std::map<int, std::uint64_t> read_epochs;  // most recent read, per chan
  };

  // Per-rank collective descriptor, written before the exchange barrier and
  // read by every rank after it (the barrier orders correct programs; the
  // atomics keep incorrect ones diagnosable instead of undefined).
  struct CollectiveMeta {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<CollectiveOp> op{CollectiveOp::kNone};
    std::atomic<std::uint64_t> count{0};
  };

  void record_violation(const std::string& message);

  int num_ranks_;
  std::vector<std::atomic<std::uint64_t>> epochs_;
  std::vector<TargetState> targets_;
  std::vector<CollectiveMeta> collectives_;

  mutable std::mutex violations_mutex_;
  std::vector<std::string> violations_;  // deduplicated, capped
  std::uint64_t total_violations_ = 0;

  static constexpr std::size_t kMaxRecordedViolations = 64;
};

}  // namespace simcov::pgas
