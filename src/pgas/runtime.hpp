#pragma once
// A UPC++-like PGAS runtime, rank-per-thread.
//
// The original SIMCoV uses UPC++ [Bachan et al., IPDPS'19] for interprocess
// communication: asynchronous remote procedure calls (RPCs), barriers,
// collective reductions, and (in SIMCoV-GPU) direct device-to-device bulk
// copies.  This substrate provides the same primitives with the same
// bulk-synchronous usage discipline, executing every rank as a std::thread
// inside one process.  It is a real working runtime (all synchronization is
// implemented, misuse is detected), not a mock; the only difference from
// UPC++ is that "remote" memory lives in the same address space, which is
// why every primitive also *counts* its traffic (see CommStats) for the
// performance model to price as network communication.
//
// Usage discipline (matches how SIMCoV uses UPC++):
//   * RPCs are enqueued on the target and run only when the target calls
//     progress().  `rpc_quiescence()` = barrier, drain, barrier — the
//     pattern SIMCoV-CPU uses between simulation phases.
//   * Bulk puts land in pre-registered channels on the target; targets read
//     channels only after a barrier (halo-exchange discipline).
//   * Collectives are barrier-based with a deterministic rank-order combine,
//     so reductions are bitwise reproducible run-to-run.
//
// The discipline is *checkable*: construct the Runtime with
// RuntimeOptions{.check_discipline = true} (or set SIMCOV_PGAS_CHECK=1 in
// the environment) and every violation — unbarriered channel read,
// conflicting same-epoch puts, undrained RPC queues, mismatched collectives
// — is recorded and reported as one aggregated simcov::Error when run()
// returns.  See pgas/checker.hpp.  When checking is off, each primitive
// pays a single null-pointer branch.

#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "pgas/comm_stats.hpp"

namespace simcov::pgas {

using RankId = int;

class DisciplineChecker;
class Runtime;

/// Construction-time knobs for Runtime.
struct RuntimeOptions {
  /// Enables the PGAS discipline checker (pgas/checker.hpp) for every job
  /// this runtime executes.  Also forced on by the environment variable
  /// SIMCOV_PGAS_CHECK (any value other than empty/"0").
  bool check_discipline = false;
};

/// Handle given to each rank's SPMD function.  Not copyable; a Rank is valid
/// only for the duration of Runtime::run().
class Rank {
 public:
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  RankId id() const { return id_; }
  int world_size() const;

  /// Blocks until every rank reaches the barrier.
  void barrier();

  /// Enqueues `fn` to execute on rank `target` during its next progress().
  /// `approx_bytes` is the modeled payload size for the cost model.
  void rpc(RankId target, std::function<void()> fn,
           std::size_t approx_bytes = 64);

  /// Runs all RPCs queued for this rank (in arrival order).
  void progress();

  /// barrier(); progress(); barrier() — guarantees every RPC issued before
  /// the call has executed on its target when the call returns.
  void rpc_quiescence();

  /// Collective reductions over all ranks.  Every rank must call with the
  /// same shape; results are identical on all ranks (rank-order combine).
  double allreduce_sum(double value);
  std::uint64_t allreduce_sum(std::uint64_t value);
  std::uint64_t allreduce_max(std::uint64_t value);
  std::uint64_t allreduce_xor(std::uint64_t value);
  /// Element-wise sum of equal-length vectors (statistics reductions).
  std::vector<double> allreduce_sum(std::span<const double> values);

  /// Collective broadcast: `root`'s bytes are copied into every rank's
  /// `data`.  All ranks (including root) must call with the same root and
  /// the same size; root's buffer is left untouched.  Counted in CommStats
  /// as one broadcast participation of data.size() bytes per rank, which
  /// the cost model prices as a log2(P) collective (broadcasts were
  /// previously invisible to the perfmodel).
  void broadcast(RankId root, std::span<std::byte> data);

  /// Convenience broadcast of one trivially copyable value.
  template <typename T>
  T broadcast_value(RankId root, T value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "broadcast_value requires a trivially copyable type");
    broadcast(root, std::as_writable_bytes(std::span<T>(&value, 1)));
    return value;
  }

  /// Registers a landing zone `channel` of `bytes` bytes on this rank.
  /// Peers put() into it; this rank reads it after a barrier.
  void register_channel(int channel, std::size_t bytes);

  /// One-sided bulk copy into `target`'s channel at byte offset `offset`.
  /// The caller must have barrier-separated this put from the target's
  /// reads; size/bounds misuse throws.
  void put(RankId target, int channel, std::span<const std::byte> data,
           std::size_t offset = 0);

  /// This rank's view of its own channel (read after the exchange barrier).
  std::span<const std::byte> channel(int channel) const;
  std::span<std::byte> channel_mutable(int channel);

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

 private:
  friend class Runtime;
  Rank(Runtime& rt, RankId id) : runtime_(rt), id_(id) {}

  Runtime& runtime_;
  RankId id_;
  CommStats stats_;

  std::mutex rpc_mutex_;
  std::vector<std::function<void()>> rpc_queue_;

  // Guards the channel map against concurrent lookups while a peer's put is
  // in flight; mutable so the const read path locks it too.
  mutable std::mutex channel_mutex_;
  std::map<int, std::vector<std::byte>> channels_;
};

/// Owns the rank team.  Construct with the rank count, then call run() with
/// the SPMD function; run() may be called repeatedly (each call is a fresh
/// "job" on the same team size).
class Runtime {
 public:
  explicit Runtime(int num_ranks, RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int num_ranks() const { return num_ranks_; }

  /// True when the discipline checker instruments this runtime's jobs
  /// (either via RuntimeOptions or SIMCOV_PGAS_CHECK=1).
  bool checking_enabled() const { return check_enabled_; }

  /// Executes `fn(rank)` on every rank in its own thread and joins.  If any
  /// rank throws, the first exception (by rank id) is rethrown here after
  /// all threads have been joined.
  void run(const std::function<void(Rank&)>& fn);

  /// Sum of all ranks' counters from the most recent run().
  CommStats total_stats() const;
  /// Per-rank counters from the most recent run().
  const CommStats& rank_stats(RankId r) const;

 private:
  friend class Rank;

  int num_ranks_;
  bool check_enabled_ = false;
  std::unique_ptr<std::barrier<>> barrier_;

  // Collective scratch: one slot per rank.  Writes (each rank to its own
  // slot) and cross-rank reads are separated by the collective's barriers,
  // which establish the necessary happens-before; no lock is needed.
  std::vector<std::vector<double>> collective_slots_;

  // Broadcast scratch: only the root writes (before the exchange barrier),
  // peers read between the barriers — same happens-before argument as the
  // collective slots.
  std::vector<std::byte> bcast_buf_;

  // Non-null for the duration of run() when checking is enabled; recreated
  // fresh per job alongside the Rank objects.
  std::unique_ptr<DisciplineChecker> checker_;

  std::vector<std::unique_ptr<Rank>> ranks_;
  std::vector<CommStats> last_stats_;
};

}  // namespace simcov::pgas
