#include "simcov_gpu/tiles.hpp"

#include "util/error.hpp"

namespace simcov::gpu {

ActiveTileSet::ActiveTileSet(const TiledLayout& layout, bool tiling_enabled)
    : tx_(layout.tiles_x()), ty_(layout.tiles_y()), tiling_(tiling_enabled) {
  const std::size_t n = static_cast<std::size_t>(num_tiles());
  always_.assign(n, 0);
  flags_.assign(n, 0);
  if (!tiling_) {
    // Unoptimized variant: the whole domain is processed every step.
    for (auto& f : always_) f = 1;
  } else {
    // Border tiles contain the voxels adjacent to ghost halos: always active
    // so entities entering from other GPU memory spaces update correctly
    // (§3.2).  Safety of the periodic check relies on activity needing at
    // least `tile_side` steps to cross a tile; ragged edge tiles are
    // thinner, so the ring just inside a ragged edge stays active too.
    const bool ragged_x = layout.width() % layout.tile_side() != 0;
    const bool ragged_y = layout.height() % layout.tile_side() != 0;
    for (std::int32_t ty = 0; ty < ty_; ++ty) {
      for (std::int32_t tx = 0; tx < tx_; ++tx) {
        const bool border =
            tx == 0 || tx == tx_ - 1 || ty == 0 || ty == ty_ - 1;
        const bool ragged_ring = (ragged_x && tx == tx_ - 2) ||
                                 (ragged_y && ty == ty_ - 2);
        if (border || ragged_ring) {
          always_[static_cast<std::size_t>(ty * tx_ + tx)] = 1;
        }
      }
    }
  }
  flags_ = always_;
  rebuild_list();
}

void ActiveTileSet::update_from_sweep(const std::vector<std::uint8_t>& raw) {
  if (!tiling_) return;  // everything stays active
  SIMCOV_REQUIRE(raw.size() == flags_.size(),
                 "sweep result has the wrong tile count");
  const std::vector<std::uint8_t> prev = flags_;
  flags_ = always_;
  auto activate = [&](std::int32_t x, std::int32_t y) {
    if (x < 0 || x >= tx_ || y < 0 || y >= ty_) return;
    flags_[static_cast<std::size_t>(y * tx_ + x)] = 1;
  };
  for (std::int32_t y = 0; y < ty_; ++y) {
    for (std::int32_t x = 0; x < tx_; ++x) {
      if (!raw[static_cast<std::size_t>(y * tx_ + x)]) continue;
      // Active tile plus its one-tile buffer ring (diagonals included: a
      // diagonal voxel path can cross a tile corner between sweeps).
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        for (std::int32_t dx = -1; dx <= 1; ++dx) activate(x + dx, y + dy);
      }
    }
  }
  for (std::size_t i = 0; i < flags_.size(); ++i) {
    if (flags_[i] && !prev[i]) ++activations_;
    else if (!flags_[i] && prev[i]) ++deactivations_;
  }
  rebuild_list();
}

void ActiveTileSet::rebuild_list() {
  list_.clear();
  for (std::int32_t t = 0; t < num_tiles(); ++t) {
    if (flags_[static_cast<std::size_t>(t)]) {
      list_.push_back(static_cast<std::uint32_t>(t));
    }
  }
}

}  // namespace simcov::gpu
