#pragma once
// Tiled memory layout for a GPU rank's sub-domain (paper §3.2, Fig. 3).
//
// A rank's W x H interior is covered by square tiles of side `tile`; each
// tile's voxels are stored contiguously (the zig-zag traversal of Fig. 3B),
// giving the data locality the paper exploits, and making a tile the unit
// of activity tracking.  Edge tiles are padded to tile*tile slots so tile
// offsets stay closed-form; padding slots are skipped by every kernel via
// the (x, y) bounds guard.  The one-voxel ghost halo is stored as four
// strips after the interior (von Neumann interactions never need corner
// ghosts).
//
// This is a plain value type: kernels capture it by copy and call index().

#include <cstdint>

#include "util/error.hpp"

namespace simcov::gpu {

class TiledLayout {
 public:
  TiledLayout(std::int32_t w, std::int32_t h, std::int32_t tile)
      : w_(w), h_(h), tile_(tile) {
    SIMCOV_REQUIRE(w >= 1 && h >= 1, "layout dims must be positive");
    SIMCOV_REQUIRE(tile >= 1, "tile side must be positive");
    SIMCOV_REQUIRE(tile <= 32, "tile side > 32 exceeds one block per tile");
    tiles_x_ = (w + tile - 1) / tile;
    tiles_y_ = (h + tile - 1) / tile;
  }

  std::int32_t width() const { return w_; }
  std::int32_t height() const { return h_; }
  std::int32_t tile_side() const { return tile_; }
  std::int32_t tiles_x() const { return tiles_x_; }
  std::int32_t tiles_y() const { return tiles_y_; }
  std::int32_t num_tiles() const { return tiles_x_ * tiles_y_; }
  std::int32_t slots_per_tile() const { return tile_ * tile_; }

  /// Interior storage including tile padding.
  std::uint32_t interior_slots() const {
    return static_cast<std::uint32_t>(num_tiles()) *
           static_cast<std::uint32_t>(slots_per_tile());
  }

  /// Total storage: interior + the four ghost strips (2h + 2w).
  std::uint32_t size() const {
    return interior_slots() + 2u * static_cast<std::uint32_t>(h_) +
           2u * static_cast<std::uint32_t>(w_);
  }

  /// Memory slot of local coordinate (x, y); accepts the ghost ring
  /// (x == -1, x == w, y == -1 or y == h) but never ghost corners.
  std::uint32_t index(std::int32_t x, std::int32_t y) const {
    if (x >= 0 && x < w_ && y >= 0 && y < h_) {
      const std::int32_t tx = x / tile_, ty = y / tile_;
      const std::int32_t ix = x % tile_, iy = y % tile_;
      return static_cast<std::uint32_t>((ty * tiles_x_ + tx) *
                                        slots_per_tile() + iy * tile_ + ix);
    }
    const std::uint32_t base = interior_slots();
    const auto uh = static_cast<std::uint32_t>(h_);
    const auto uw = static_cast<std::uint32_t>(w_);
    if (x == -1) {
      SIMCOV_ASSERT(y >= 0 && y < h_, "ghost corner access");
      return base + static_cast<std::uint32_t>(y);
    }
    if (x == w_) {
      SIMCOV_ASSERT(y >= 0 && y < h_, "ghost corner access");
      return base + uh + static_cast<std::uint32_t>(y);
    }
    if (y == -1) {
      SIMCOV_ASSERT(x >= 0 && x < w_, "ghost corner access");
      return base + 2 * uh + static_cast<std::uint32_t>(x);
    }
    SIMCOV_ASSERT(y == h_ && x >= 0 && x < w_, "index outside padded domain");
    return base + 2 * uh + uw + static_cast<std::uint32_t>(x);
  }

  /// Inverse of index() for interior+padding slots: slot -> (x, y).  For
  /// padding slots, the returned coordinates fall outside [0,w)x[0,h); the
  /// caller's bounds guard skips them.
  void slot_to_xy(std::uint32_t slot, std::int32_t& x, std::int32_t& y) const {
    SIMCOV_ASSERT(slot < interior_slots(), "slot is not interior");
    const std::int32_t t = static_cast<std::int32_t>(slot) / slots_per_tile();
    const std::int32_t in = static_cast<std::int32_t>(slot) % slots_per_tile();
    x = (t % tiles_x_) * tile_ + in % tile_;
    y = (t / tiles_x_) * tile_ + in / tile_;
  }

  /// Tile id containing interior coordinate (x, y).
  std::int32_t tile_of(std::int32_t x, std::int32_t y) const {
    SIMCOV_ASSERT(x >= 0 && x < w_ && y >= 0 && y < h_, "tile_of out of range");
    return (y / tile_) * tiles_x_ + x / tile_;
  }

  /// True when the tile touches the sub-domain border (such tiles contain
  /// the voxels adjacent to the ghost halo and stay active always, §3.2).
  bool is_border_tile(std::int32_t tile_id) const {
    const std::int32_t tx = tile_id % tiles_x_, ty = tile_id / tiles_x_;
    return tx == 0 || tx == tiles_x_ - 1 || ty == 0 || ty == tiles_y_ - 1;
  }

 private:
  std::int32_t w_, h_, tile_;
  std::int32_t tiles_x_, tiles_y_;
};

}  // namespace simcov::gpu
