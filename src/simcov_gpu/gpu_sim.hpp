#pragma once
// SIMCoV-GPU: the multinode, multi-GPU implementation (paper §3).
//
// One PGAS rank drives one virtual GPU (the paper runs one UPC++ process
// per physical GPU).  Each device holds its sub-domain in a tiled layout
// with a ghost halo; a timestep runs the kernel sequence of Fig. 2 — choose
// directions & bids, exchange boundary bids/intents, set flips, move agents
// — followed by epithelial and diffusion kernels, a periodic active-tile
// sweep (§3.2), and the per-step statistics reduction (§3.3, atomic or
// shared-memory tree variant).
//
// The four optimization variants of §3.4 (Unoptimized / Fast Reduction /
// Memory Tiling / Combined) are selected by GpuVariant; all four compute
// the identical simulation (bit-equal to the serial reference).

#include <cstdint>
#include <string>
#include <vector>

#include "core/decomposition.hpp"
#include "core/params.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "gpusim/device.hpp"
#include "pgas/comm_stats.hpp"
#include "perfmodel/cost_model.hpp"
#include "perfmodel/machine.hpp"

namespace simcov::gpu {

/// Optimization toggles (§3.4).
struct GpuVariant {
  bool memory_tiling = true;   ///< §3.2: skip inactive tiles + tiled locality
  bool fast_reduction = true;  ///< §3.3: tree reduction instead of atomics

  static GpuVariant unoptimized() { return {false, false}; }
  static GpuVariant fast_reduction_only() { return {false, true}; }
  static GpuVariant memory_tiling_only() { return {true, false}; }
  static GpuVariant combined() { return {true, true}; }

  std::string name() const {
    if (memory_tiling && fast_reduction) return "Combined";
    if (memory_tiling) return "Memory Tiling";
    if (fast_reduction) return "Fast Reduction";
    return "Unoptimized";
  }
};

struct GpuSimOptions {
  int num_ranks = 4;  ///< one virtual GPU per rank
  /// Sub-domain shape (paper Fig. 1B: block vs linear decomposition trades
  /// off boundary length, i.e. halo traffic).
  Decomposition::Kind decomp = Decomposition::Kind::kBlock2D;
  GpuVariant variant = GpuVariant::combined();
  bool record_digests = false;
  perfmodel::MachineSpec machine = perfmodel::MachineSpec::perlmutter_like();
  /// Modeled-time extrapolation to paper-scale grids (see CostModel).
  double area_scale = 1.0;
  /// KernelCheck (gpusim/check.hpp): shadow access-set race detection on
  /// every kernel launch.  Also enabled by SIMCOV_KERNEL_CHECK=1.
  bool check_kernels = false;
  /// KernelCheck schedule permutation: re-execute each launch under
  /// reversed and seeded-shuffled thread orders and require bit-identical
  /// results.  Also enabled by SIMCOV_KERNEL_CHECK=permute.
  bool permute_schedules = false;
};

struct GpuRunResult {
  TimeSeries history;
  std::vector<std::uint64_t> digests;
  perfmodel::RunCost cost;
  gpusim::DeviceStats device_total;   ///< summed over devices
  std::uint64_t total_put_bytes = 0;
  std::uint64_t total_kernel_launches = 0;
  /// Full per-rank communication counters (including the per-destination
  /// comm matrix in CommStats::peers), indexed by rank id.
  std::vector<pgas::CommStats> comm_by_rank;
  /// KernelCheck totals over all ranks (zero when checking is off).
  std::uint64_t check_accesses = 0;
  std::uint64_t check_violations = 0;
};

/// Runs the full simulation SPMD with one virtual GPU per rank.
GpuRunResult run_gpu_sim(const SimParams& params,
                         const std::vector<VoxelId>& foi,
                         const GpuSimOptions& options,
                         const std::vector<VoxelId>& empty_voxels = {});

}  // namespace simcov::gpu
