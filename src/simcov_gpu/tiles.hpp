#pragma once
// Active-tile tracking (paper §3.2).
//
// The host-side mirror of the device tile flags: after each periodic sweep
// kernel marks tiles with raw activity, this class applies the paper's
// activation policy — activate a one-tile buffer ring around every active
// tile, and keep border (ghost-adjacent) tiles always active — and exposes
// the active tile list kernels iterate over.  The policy's safety argument
// (nothing moves faster than one voxel per step, so with a check period of
// at most one tile side, activity cannot escape the buffer ring between
// sweeps) is property-tested in tests/tiles_test.cpp.

#include <cstdint>
#include <vector>

#include "simcov_gpu/layout.hpp"

namespace simcov::gpu {

class ActiveTileSet {
 public:
  ActiveTileSet(const TiledLayout& layout, bool tiling_enabled);

  /// Applies the activation policy to raw sweep results (`raw[tile]` != 0
  /// iff the sweep found activity in the tile).  With tiling disabled every
  /// tile is always active and `raw` is ignored.
  void update_from_sweep(const std::vector<std::uint8_t>& raw);

  bool is_active(std::int32_t tile_id) const {
    return flags_[static_cast<std::size_t>(tile_id)] != 0;
  }
  const std::vector<std::uint8_t>& flags() const { return flags_; }
  const std::vector<std::uint32_t>& active_list() const { return list_; }
  std::size_t active_count() const { return list_.size(); }
  std::int32_t num_tiles() const { return tx_ * ty_; }

  /// Cumulative tile state transitions across sweeps (relative to the
  /// previous sweep's flags; initial construction does not count).  The
  /// metrics layer exports these to show how the active set churns.
  std::uint64_t activations() const { return activations_; }
  std::uint64_t deactivations() const { return deactivations_; }

 private:
  void rebuild_list();

  std::int32_t tx_, ty_;
  bool tiling_;
  std::uint64_t activations_ = 0;
  std::uint64_t deactivations_ = 0;
  /// Tiles that can never deactivate: border (ghost-adjacent) tiles, plus —
  /// when a domain edge is ragged (edge tile thinner than the tile side) —
  /// the ring just inside that edge.  A ragged edge tile can be crossed in
  /// fewer steps than the check period, so containment needs the next ring
  /// pre-activated (see tests/tiles_test.cpp RaggedEdge*).
  std::vector<std::uint8_t> always_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint32_t> list_;
};

}  // namespace simcov::gpu
