#include "simcov_gpu/gpu_sim.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <span>

#include "core/grid.hpp"
#include "core/rules.hpp"
#include "gpusim/gpusim.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_clock.hpp"
#include "obs/trace.hpp"
#include "pgas/runtime.hpp"
#include "simcov_gpu/layout.hpp"
#include "simcov_gpu/tiles.hpp"
#include "util/error.hpp"

namespace simcov::gpu {

namespace {

using gpusim::Device;
using gpusim::DeviceBuffer;
using gpusim::LaunchConfig;

constexpr bool transient_epi(EpiState s) {
  return s == EpiState::kIncubating || s == EpiState::kExpressing ||
         s == EpiState::kApoptotic;
}

/// Modeled locality penalty of the untiled layout (§3.2/§3.4): without
/// memory tiling the reduction and update kernels stream voxel records that
/// span distant SoA rows, which the paper observes as slower reductions.
constexpr double kUntiledMemPenalty = 1.6;

/// Halo payload kinds.  Channel id = face * 16 + payload.
enum Payload : int {
  kPIntentKind = 0,
  kPIntentTarget,
  kPIntentBid,
  kPIntentTimer,
  kPBidMove,   ///< bid contributions / merged winners (move competition)
  kPBidBind,   ///< same for binding competition
  kPTmp,
  kPEpi,
  kPTcell,
  kPTcellTimer,
  kPTcellBind,
  kPVirus,
  kPChem,
  kNumPayloads
};
constexpr int channel_of(int face, int payload) { return face * 16 + payload; }

enum class StripSide { kBoundary, kGhost };
enum class MergeMode { kOverwrite, kMax };

/// Device-side statistics slots (§3.3): [virus, chem, epi x6, tcells].
constexpr std::size_t kNumDevStats = 2 + kNumEpiStates + 1;

class GpuRank {
 public:
  GpuRank(pgas::Rank& rank, const SimParams& params, const Decomposition& dec,
          const std::vector<VoxelId>& foi,
          const std::vector<VoxelId>& empties, const GpuSimOptions& options,
          const perfmodel::CostModel& model)
      : rank_(rank), params_(params),
        grid_(params.dim_x, params.dim_y, params.dim_z),
        sub_(dec.sub(rank.id())), rng_(params.seed), variant_(options.variant),
        lay_(sub_.extent.x, sub_.extent.y, params.tile_side),
        tiles_(lay_, options.variant.memory_tiling),
        // Deferred reporting: a rank thread that threw mid-step would
        // desert the team barrier and hang its peers, so findings are
        // collected and run_gpu_sim throws once after all ranks joined.
        dev_(rank.id(),
             gpusim::DeviceOptions{options.check_kernels,
                                   options.permute_schedules,
                                   /*defer_check_report=*/true}),
        cost_log_(model), pclock_(rank.id()),
        // Device allocations: full padded layout per field.
        epi_state_(dev_, lay_.size(),
                   static_cast<std::uint8_t>(EpiState::kEmpty), "epi_state"),
        epi_timer_(dev_, lay_.size(), 0, "epi_timer"),
        tcell_(dev_, lay_.size(), 0, "tcell"),
        tcell_timer_(dev_, lay_.size(), 0, "tcell_timer"),
        tcell_bind_(dev_, lay_.size(), 0, "tcell_bind"),
        virus_(dev_, lay_.size(), 0.0f, "virus"),
        chem_(dev_, lay_.size(), 0.0f, "chem"),
        tmp_(dev_, lay_.size(), 0.0f, "tmp"),
        occupancy_(dev_, lay_.size(), 0, "occupancy"),
        eligible_(dev_, lay_.size(), 0, "eligible"),
        intent_kind_(dev_, lay_.size(), 0, "intent_kind"),
        intent_target_(dev_, lay_.size(), 0, "intent_target"),
        intent_bid_(dev_, lay_.size(), 0, "intent_bid"),
        intent_timer_(dev_, lay_.size(), 0, "intent_timer"),
        bid_move_(dev_, lay_.size(), 0, "bid_move"),
        bid_bind_(dev_, lay_.size(), 0, "bid_bind"),
        active_tiles_dev_(dev_, static_cast<std::size_t>(lay_.num_tiles()), 0,
                          "active_tiles"),
        sweep_flags_(dev_, static_cast<std::size_t>(lay_.num_tiles()), 0,
                     "sweep_flags"),
        stats_dev_(dev_, kNumDevStats, 0.0, "stats_dev"),
        extrav_dev_(dev_, 1, 0, "extrav"),
        stage_u8_(dev_, stage_len(), 0, "stage_u8"),
        stage_u32_(dev_, stage_len(), 0, "stage_u32"),
        stage_u64_(dev_, stage_len(), 0, "stage_u64"),
        stage_f32_(dev_, stage_len(), 0.0f, "stage_f32") {
    SIMCOV_REQUIRE(params_.dim_z == 1,
                   "the parallel backends support 2D simulations");
    w_ = sub_.extent.x;
    h_ = sub_.extent.y;
    // Tree reduction needs a power-of-two block.
    reduce_block_ = std::bit_floor(static_cast<unsigned>(params_.block_dim));

    upload_initial_state(foi, empties);
    register_channels();
  }

  GpuRank(const GpuRank&) = delete;
  GpuRank& operator=(const GpuRank&) = delete;

  void initialize() {
    obs::ScopedSpan span("initialize", rank_.id());
    exchange_state_halo();
    run_tile_sweep();  // initial activation from the FOI seeds
  }

  void step() {
    StepStats stats;
    const bool emit_metrics = obs::metrics().enabled();
    if (emit_metrics) step_comm_snapshot_ = rank_.stats();
    pclock_.begin_step();
    snapshot_counters();

    // ---- T cell kernels (Fig. 2) ------------------------------------------
    k_clear_bids();
    k_age_and_occupancy();
    k_ghost_occupancy();
    k_intents();
    record_phase(perfmodel::Phase::kTCells);

    wave_bids();  // "Copy To Ghost Voxels" between Assign Winners / Set Flips
    record_phase(perfmodel::Phase::kHalo);

    k_moves_own();
    k_moves_entrants();
    k_binds_own();
    k_binds_ghost();
    k_extravasation();
    record_phase(perfmodel::Phase::kTCells);

    // ---- epithelial FSM -----------------------------------------------------
    k_epithelial();
    record_phase(perfmodel::Phase::kEpithelial);

    // ---- concentration fields ------------------------------------------------
    field_pass(virus_, /*virus=*/true);
    field_pass(chem_, /*virus=*/false);
    record_phase(perfmodel::Phase::kConcentrations);

    // ---- periodic active-tile sweep (§3.2) -------------------------------------
    if (variant_.memory_tiling &&
        (step_ + 1) % static_cast<std::uint64_t>(params_.tile_check_period) ==
            0) {
      run_tile_sweep();
      record_phase(perfmodel::Phase::kTileSweep);
    }

    // ---- end-of-step state halo ---------------------------------------------------
    exchange_state_halo();
    record_phase(perfmodel::Phase::kHalo);

    // ---- statistics reduction (§3.3) ---------------------------------------------
    reduce_stats(stats);
    record_phase(perfmodel::Phase::kReduceStats);

    pclock_.end_step();
    if (emit_metrics) emit_step_metrics();
    cost_log_.end_step();
    history_.push_back(stats);
    ++step_;
  }

  std::uint64_t local_digest() {
    // Test support: pull the full state to the host and fold the canonical
    // per-voxel digest over owned voxels.
    const std::size_t n = lay_.size();
    std::vector<std::uint8_t> epi(n), tc(n);
    std::vector<std::uint32_t> et(n), tt(n), tb(n);
    std::vector<float> vv(n), cc(n);
    epi_state_.copy_to_host(epi);
    epi_timer_.copy_to_host(et);
    tcell_.copy_to_host(tc);
    tcell_timer_.copy_to_host(tt);
    tcell_bind_.copy_to_host(tb);
    virus_.copy_to_host(vv);
    chem_.copy_to_host(cc);
    std::uint64_t d = 0;
    for (std::int32_t y = 0; y < h_; ++y) {
      for (std::int32_t x = 0; x < w_; ++x) {
        const std::uint32_t s = lay_.index(x, y);
        d ^= rules::voxel_digest(gid(x, y), static_cast<EpiState>(epi[s]),
                                 et[s], tc[s], tt[s], tb[s], vv[s], cc[s]);
      }
    }
    return d;
  }

  const TimeSeries& history() const { return history_; }
  const perfmodel::RankCostLog& cost_log() const { return cost_log_; }
  const gpusim::DeviceStats& device_stats() const { return dev_.stats(); }
  const gpusim::KernelChecker* checker() const { return dev_.checker(); }

 private:
  // ---- geometry helpers ------------------------------------------------------
  VoxelId gid(std::int32_t x, std::int32_t y) const {
    return static_cast<VoxelId>(sub_.origin.y + y) *
               static_cast<VoxelId>(grid_.dim_x()) +
           static_cast<VoxelId>(sub_.origin.x + x);
  }
  std::size_t stage_len() const {
    return static_cast<std::size_t>(
        std::max(sub_.extent.x, sub_.extent.y));
  }
  std::size_t face_len(int face) const {
    return (face == kFaceXNeg || face == kFaceXPos)
               ? static_cast<std::size_t>(h_)
               : static_cast<std::size_t>(w_);
  }
  void boundary_xy(int face, std::uint32_t i, std::int32_t& x,
                   std::int32_t& y) const {
    switch (face) {
      case kFaceXNeg: x = 0; y = static_cast<std::int32_t>(i); break;
      case kFaceXPos: x = w_ - 1; y = static_cast<std::int32_t>(i); break;
      case kFaceYNeg: x = static_cast<std::int32_t>(i); y = 0; break;
      default: x = static_cast<std::int32_t>(i); y = h_ - 1; break;
    }
  }
  void ghost_xy(int face, std::uint32_t i, std::int32_t& x,
                std::int32_t& y) const {
    switch (face) {
      case kFaceXNeg: x = -1; y = static_cast<std::int32_t>(i); break;
      case kFaceXPos: x = w_; y = static_cast<std::int32_t>(i); break;
      case kFaceYNeg: x = static_cast<std::int32_t>(i); y = -1; break;
      default: x = static_cast<std::int32_t>(i); y = h_; break;
    }
  }
  static int opposite(int face) { return face ^ 1; }

  LaunchConfig tile_launch(const char* name) const {
    const std::uint64_t items = static_cast<std::uint64_t>(
        tiles_.active_count() * static_cast<std::size_t>(lay_.slots_per_tile()));
    const auto bd = static_cast<std::uint32_t>(params_.block_dim);
    return {static_cast<std::uint32_t>((items + bd - 1) / bd), bd, name};
  }
  LaunchConfig linear_launch(std::uint64_t items, const char* name) const {
    const auto bd = static_cast<std::uint32_t>(params_.block_dim);
    return {static_cast<std::uint32_t>(std::max<std::uint64_t>(
                1, (items + bd - 1) / bd)),
            bd, name};
  }

  // ---- initialization ------------------------------------------------------------
  void upload_initial_state(const std::vector<VoxelId>& foi,
                            const std::vector<VoxelId>& empties) {
    std::vector<std::uint8_t> epi(lay_.size(),
                                  static_cast<std::uint8_t>(EpiState::kEmpty));
    std::vector<float> vir(lay_.size(), 0.0f);
    for (std::int32_t y = 0; y < h_; ++y) {
      for (std::int32_t x = 0; x < w_; ++x) {
        epi[lay_.index(x, y)] = static_cast<std::uint8_t>(EpiState::kHealthy);
      }
    }
    for (VoxelId v : empties) {
      const Coord c = grid_.to_coord(v);
      if (!sub_.contains(c)) continue;
      epi[lay_.index(c.x - sub_.origin.x, c.y - sub_.origin.y)] =
          static_cast<std::uint8_t>(EpiState::kEmpty);
    }
    for (VoxelId v : foi) {
      const Coord c = grid_.to_coord(v);
      if (!sub_.contains(c)) continue;
      SIMCOV_REQUIRE(
          epi[lay_.index(c.x - sub_.origin.x, c.y - sub_.origin.y)] !=
              static_cast<std::uint8_t>(EpiState::kEmpty),
          "FOI voxel is an airway (empty) voxel");
      vir[lay_.index(c.x - sub_.origin.x, c.y - sub_.origin.y)] =
          params_.initial_virus;
    }
    epi_state_.copy_from_host(epi);
    virus_.copy_from_host(vir);
    upload_active_tiles();
  }

  void register_channels() {
    for (int f = 0; f < kNumFaces; ++f) {
      if (sub_.neighbour[static_cast<std::size_t>(f)] < 0) continue;
      const std::size_t len = face_len(f);
      for (int p = 0; p < kNumPayloads; ++p) {
        rank_.register_channel(channel_of(f, p), len * sizeof(std::uint64_t));
      }
    }
  }

  void upload_active_tiles() {
    const auto& list = tiles_.active_list();
    if (!list.empty()) {
      active_tiles_dev_.copy_from_host(
          std::span<const std::uint32_t>(list.data(), list.size()));
    }
  }

  // ---- generic strip exchange ------------------------------------------------------
  template <typename T>
  DeviceBuffer<T>& stage();

  /// Exchanges one payload on all faces: packs the send-side strip of `buf`
  /// on the device, ships it through the PGAS channel, and unpacks into the
  /// receive-side strip (optionally max-merging, for bid fields).
  template <typename T>
  void exchange(DeviceBuffer<T>& buf, int payload, StripSide send_side,
                MergeMode mode) {
    std::array<std::vector<T>, kNumFaces> host;
    DeviceBuffer<T>& stg = stage<T>();
    for (int f = 0; f < kNumFaces; ++f) {
      const int nb = sub_.neighbour[static_cast<std::size_t>(f)];
      if (nb < 0) continue;
      const std::size_t len = face_len(f);
      // Pack kernel: strip -> staging.
      dev_.parallel_for(linear_launch(len, "halo_pack"), [&, f, len](auto& t) {
        const std::uint64_t i = t.global_index();
        if (i >= len) return;
        std::int32_t x, y;
        if (send_side == StripSide::kBoundary) {
          boundary_xy(f, static_cast<std::uint32_t>(i), x, y);
        } else {
          ghost_xy(f, static_cast<std::uint32_t>(i), x, y);
        }
        auto src = t.global(buf);
        auto dst = t.global(stg);
        dst.write(i, src.read(lay_.index(x, y)));
      });
      host[static_cast<std::size_t>(f)].resize(len);
      stg.copy_to_host(std::span<T>(host[static_cast<std::size_t>(f)].data(), len));
      rank_.put(nb, channel_of(opposite(f), payload),
                std::as_bytes(std::span<const T>(
                    host[static_cast<std::size_t>(f)].data(), len)));
    }
    rank_.barrier();
    for (int f = 0; f < kNumFaces; ++f) {
      const int nb = sub_.neighbour[static_cast<std::size_t>(f)];
      if (nb < 0) continue;
      const std::size_t len = face_len(f);
      auto data = rank_.channel(channel_of(f, payload));
      std::vector<T> recv(len);
      std::memcpy(recv.data(), data.data(), len * sizeof(T));
      stg.copy_from_host(std::span<const T>(recv.data(), len));
      // Unpack kernel: staging -> receive-side strip.
      dev_.parallel_for(linear_launch(len, "halo_unpack"),
                        [&, f, len](auto& t) {
        const std::uint64_t i = t.global_index();
        if (i >= len) return;
        std::int32_t x, y;
        if (send_side == StripSide::kBoundary) {
          ghost_xy(f, static_cast<std::uint32_t>(i), x, y);
        } else {
          boundary_xy(f, static_cast<std::uint32_t>(i), x, y);
        }
        auto src = t.global(stg);
        auto dst = t.global(buf);
        const std::uint32_t slot = lay_.index(x, y);
        if (mode == MergeMode::kMax) {
          const T mine = dst.read(slot);
          const T theirs = src.read(i);
          dst.write(slot, std::max(mine, theirs));
        } else {
          dst.write(slot, src.read(i));
        }
      });
    }
    rank_.barrier();
  }

  /// The bid/intent communication of Fig. 2 ("Copy To Ghost Voxels").
  /// Stage 1 pushes every rank's foreign-bid contributions and boundary
  /// intents to the owner; stage 2 broadcasts the owner's merged winner
  /// fields back into the ghosts (two sub-messages of one logical wave; the
  /// second stage also covers three-rank corner competitions).
  void wave_bids() {
    // Stage 1a: my boundary intents -> neighbour ghost intent slots.
    exchange(intent_kind_, kPIntentKind, StripSide::kBoundary,
             MergeMode::kOverwrite);
    exchange(intent_target_, kPIntentTarget, StripSide::kBoundary,
             MergeMode::kOverwrite);
    exchange(intent_bid_, kPIntentBid, StripSide::kBoundary,
             MergeMode::kOverwrite);
    exchange(intent_timer_, kPIntentTimer, StripSide::kBoundary,
             MergeMode::kOverwrite);
    // Stage 1b: my ghost-slot bid contributions -> owner boundary (max).
    exchange(bid_move_, kPBidMove, StripSide::kGhost, MergeMode::kMax);
    exchange(bid_bind_, kPBidBind, StripSide::kGhost, MergeMode::kMax);
    // Stage 2: owner's merged boundary winners -> my ghost slots.
    exchange(bid_move_, kPBidMove, StripSide::kBoundary, MergeMode::kMax);
    exchange(bid_bind_, kPBidBind, StripSide::kBoundary, MergeMode::kMax);
  }

  void exchange_state_halo() {
    exchange(epi_state_, kPEpi, StripSide::kBoundary, MergeMode::kOverwrite);
    exchange(tcell_, kPTcell, StripSide::kBoundary, MergeMode::kOverwrite);
    exchange(tcell_timer_, kPTcellTimer, StripSide::kBoundary,
             MergeMode::kOverwrite);
    exchange(tcell_bind_, kPTcellBind, StripSide::kBoundary,
             MergeMode::kOverwrite);
    exchange(virus_, kPVirus, StripSide::kBoundary, MergeMode::kOverwrite);
    exchange(chem_, kPChem, StripSide::kBoundary, MergeMode::kOverwrite);
  }

  // ---- kernels -------------------------------------------------------------------
  /// Runs `body(x, y, slot)` for every interior voxel of every active tile.
  template <typename F>
  void for_active_voxels(const char* name, F&& body) {
    const auto& list = tiles_.active_list();
    if (list.empty()) return;
    const std::uint32_t spt =
        static_cast<std::uint32_t>(lay_.slots_per_tile());
    const std::uint64_t items = list.size() * spt;
    dev_.parallel_for(tile_launch(name), [&, items, spt](auto& t) {
      const std::uint64_t i = t.global_index();
      if (i >= items) return;
      auto tiles_view = t.global(active_tiles_dev_);
      const std::uint32_t tile = tiles_view.read(i / spt);
      const std::uint32_t slot = tile * spt + static_cast<std::uint32_t>(i % spt);
      std::int32_t x, y;
      lay_.slot_to_xy(slot, x, y);
      if (x >= w_ || y >= h_) return;  // tile padding
      body(t, x, y, slot);
    });
  }

  void k_clear_bids() {
    for_active_voxels("k_clear_bids", [&](auto& t, std::int32_t, std::int32_t,
                          std::uint32_t slot) {
      t.global(bid_move_).write(slot, 0);
      t.global(bid_bind_).write(slot, 0);
      t.global(intent_kind_).write(slot, 0);
      t.global(eligible_).write(slot, 0);
    });
    // Ghost region is a contiguous suffix of the layout.
    const std::uint32_t base = lay_.interior_slots();
    const std::uint64_t n = lay_.size() - base;
    dev_.parallel_for(linear_launch(n, "k_clear_bids_ghost"),
                      [&, base, n](auto& t) {
      const std::uint64_t i = t.global_index();
      if (i >= n) return;
      const std::size_t slot = base + i;
      t.global(bid_move_).write(slot, 0);
      t.global(bid_bind_).write(slot, 0);
      t.global(intent_kind_).write(slot, 0);
    });
  }

  void k_age_and_occupancy() {
    for_active_voxels("k_age_and_occupancy", [&](auto& t, std::int32_t, std::int32_t,
                          std::uint32_t slot) {
      auto tc = t.global(tcell_);
      auto occ = t.global(occupancy_);
      if (!tc.read(slot)) {
        occ.write(slot, 0);
        return;
      }
      auto bind = t.global(tcell_bind_);
      auto timer = t.global(tcell_timer_);
      auto elig = t.global(eligible_);
      const std::uint32_t b = bind.read(slot);
      if (b > 0) {
        bind.write(slot, b - 1);
      } else {
        const std::uint32_t life = timer.read(slot);
        if (life <= 1) {
          tc.write(slot, 0);
          timer.write(slot, 0);
        } else {
          timer.write(slot, life - 1);
          elig.write(slot, 1);
        }
      }
      occ.write(slot, tc.read(slot));
    });
  }

  /// Post-aging occupancy for ghost voxels, computed locally from the
  /// exchanged end-of-previous-step T cell state (the same deterministic
  /// rule the owner applies, so both sides agree on who blocks movement).
  void k_ghost_occupancy() {
    const std::uint32_t base = lay_.interior_slots();
    const std::uint64_t n = lay_.size() - base;
    dev_.parallel_for(linear_launch(n, "k_ghost_occupancy"),
                      [&, base, n](auto& t) {
      const std::uint64_t i = t.global_index();
      if (i >= n) return;
      const std::size_t slot = base + i;
      auto tc = t.global(tcell_);
      std::uint8_t occ = 0;
      if (tc.read(slot)) {
        const std::uint32_t b = t.global(tcell_bind_).read(slot);
        const std::uint32_t life = t.global(tcell_timer_).read(slot);
        occ = (b > 0 || life > 1) ? 1 : 0;
      }
      t.global(occupancy_).write(slot, occ);
    });
  }

  void k_intents() {
    const std::uint64_t step = step_;
    for_active_voxels("k_intents", [&, step](auto& t, std::int32_t x,
                                              std::int32_t y,
                                              std::uint32_t slot) {
      if (!t.global(eligible_).read(slot)) return;
      auto epi = t.global(epi_state_);
      // Neighbour view in contract order over the *global* grid bounds.
      rules::NeighbourView nb;
      const std::int32_t gx = sub_.origin.x + x, gy = sub_.origin.y + y;
      const std::array<std::array<std::int32_t, 2>, 4> offs{
          {{-1, 0}, {+1, 0}, {0, -1}, {0, +1}}};
      for (const auto& o : offs) {
        const std::int32_t nx = gx + o[0], ny = gy + o[1];
        if (nx < 0 || nx >= grid_.dim_x() || ny < 0 || ny >= grid_.dim_y())
          continue;
        const std::uint32_t ns = lay_.index(x + o[0], y + o[1]);
        nb.ids[static_cast<std::size_t>(nb.count)] =
            static_cast<VoxelId>(ny) * grid_.dim_x() + nx;
        nb.epi[static_cast<std::size_t>(nb.count)] =
            static_cast<EpiState>(epi.read(ns));
        ++nb.count;
      }
      const VoxelId v = gid(x, y);
      const rules::Intent intent = rules::tcell_intent(
          rng_, step, v, static_cast<EpiState>(epi.read(slot)), nb);
      if (intent.kind == rules::IntentKind::kNone) return;
      t.global(intent_kind_).write(slot,
                                   static_cast<std::uint8_t>(intent.kind));
      t.global(intent_target_).write(slot, intent.target);
      t.global(intent_bid_).write(slot, intent.bid);
      t.global(intent_timer_).write(slot, t.global(tcell_timer_).read(slot));
      // "Assign winners": store the bid at the target (atomicMax); the
      // target may be a ghost slot.
      const std::uint32_t tslot = slot_of_global(intent.target);
      auto& field = (intent.kind == rules::IntentKind::kMove) ? bid_move_
                                                              : bid_bind_;
      t.global(field).atomic_max(tslot, intent.bid);
    });
  }

  /// Layout slot of a global voxel id within my padded domain (interior or
  /// ghost ring; anything further away is a bug).
  std::uint32_t slot_of_global(VoxelId v) const {
    const std::int32_t gx = static_cast<std::int32_t>(
        v % static_cast<VoxelId>(grid_.dim_x()));
    const std::int32_t gy = static_cast<std::int32_t>(
        v / static_cast<VoxelId>(grid_.dim_x()));
    return lay_.index(gx - sub_.origin.x, gy - sub_.origin.y);
  }
  bool global_is_mine(VoxelId v) const {
    const std::int32_t gx = static_cast<std::int32_t>(
        v % static_cast<VoxelId>(grid_.dim_x()));
    const std::int32_t gy = static_cast<std::int32_t>(
        v / static_cast<VoxelId>(grid_.dim_x()));
    return sub_.contains({gx, gy, 0});
  }

  void k_moves_own() {
    for_active_voxels("k_moves_own", [&](auto& t, std::int32_t, std::int32_t,
                          std::uint32_t slot) {
      if (t.global(intent_kind_).read(slot) !=
          static_cast<std::uint8_t>(rules::IntentKind::kMove))
        return;
      const VoxelId target = t.global(intent_target_).read(slot);
      const std::uint64_t bid = t.global(intent_bid_).read(slot);
      const std::uint32_t tslot = slot_of_global(target);
      if (t.global(bid_move_).read(tslot) != bid) return;   // lost tiebreak
      if (t.global(occupancy_).read(tslot)) return;         // ran into a cell
      // Winner: erase at the source; instantiate when the target is ours
      // (otherwise the owner instantiates from our exchanged intent).
      auto tc = t.global(tcell_);
      auto timer = t.global(tcell_timer_);
      if (global_is_mine(target)) {
        tc.write(tslot, 1);
        timer.write(tslot, timer.read(slot));
        t.global(tcell_bind_).write(tslot, 0);
      }
      tc.write(slot, 0);
      timer.write(slot, 0);
    });
  }

  void k_moves_entrants() {
    const std::uint32_t base = lay_.interior_slots();
    const std::uint64_t n = lay_.size() - base;
    dev_.parallel_for(linear_launch(n, "k_moves_entrants"),
                      [&, base, n](auto& t) {
      const std::uint64_t i = t.global_index();
      if (i >= n) return;
      const std::size_t slot = base + i;
      if (t.global(intent_kind_).read(slot) !=
          static_cast<std::uint8_t>(rules::IntentKind::kMove))
        return;
      const VoxelId target = t.global(intent_target_).read(slot);
      if (!global_is_mine(target)) return;
      const std::uint64_t bid = t.global(intent_bid_).read(slot);
      const std::uint32_t tslot = slot_of_global(target);
      if (t.global(bid_move_).read(tslot) != bid) return;
      if (t.global(occupancy_).read(tslot)) return;
      t.global(tcell_).write(tslot, 1);
      t.global(tcell_timer_).write(tslot,
                                   t.global(intent_timer_).read(slot));
      t.global(tcell_bind_).write(tslot, 0);
    });
  }

  void k_binds_own() {
    const std::uint64_t step = step_;
    for_active_voxels("k_binds_own", [&, step](auto& t, std::int32_t,
                                               std::int32_t,
                                               std::uint32_t slot) {
      if (t.global(intent_kind_).read(slot) !=
          static_cast<std::uint8_t>(rules::IntentKind::kBind))
        return;
      const VoxelId target = t.global(intent_target_).read(slot);
      const std::uint64_t bid = t.global(intent_bid_).read(slot);
      const std::uint32_t tslot = slot_of_global(target);
      if (t.global(bid_bind_).read(tslot) != bid) return;
      auto epi = t.global(epi_state_);
      if (static_cast<EpiState>(epi.read(tslot)) != EpiState::kExpressing)
        return;
      t.global(tcell_bind_).write(
          slot, static_cast<std::uint32_t>(params_.tcell_binding_period));
      if (global_is_mine(target)) {
        epi.write(tslot, static_cast<std::uint8_t>(EpiState::kApoptotic));
        t.global(epi_timer_).write(
            tslot, rules::sample_period(rng_, step, target,
                                        RngStream::kApoptosisPeriod,
                                        params_.apoptosis_period));
      }
    });
  }

  void k_binds_ghost() {
    const std::uint64_t step = step_;
    const std::uint32_t base = lay_.interior_slots();
    const std::uint64_t n = lay_.size() - base;
    dev_.parallel_for(linear_launch(n, "k_binds_ghost"),
                      [&, step, base, n](auto& t) {
      const std::uint64_t i = t.global_index();
      if (i >= n) return;
      const std::size_t slot = base + i;
      if (t.global(intent_kind_).read(slot) !=
          static_cast<std::uint8_t>(rules::IntentKind::kBind))
        return;
      const VoxelId target = t.global(intent_target_).read(slot);
      if (!global_is_mine(target)) return;
      const std::uint64_t bid = t.global(intent_bid_).read(slot);
      const std::uint32_t tslot = slot_of_global(target);
      if (t.global(bid_bind_).read(tslot) != bid) return;
      auto epi = t.global(epi_state_);
      if (static_cast<EpiState>(epi.read(tslot)) != EpiState::kExpressing)
        return;
      epi.write(tslot, static_cast<std::uint8_t>(EpiState::kApoptotic));
      t.global(epi_timer_).write(
          tslot, rules::sample_period(rng_, step, target,
                                      RngStream::kApoptosisPeriod,
                                      params_.apoptosis_period));
    });
  }

  void k_extravasation() {
    // Inherently ordered (attempt i sees the occupancy left by attempt
    // i-1), so this runs as a single device thread, exactly like the
    // serial rule; the attempt count is tiny relative to the voxel kernels.
    const std::uint64_t attempts = rules::num_extravasation_attempts(
        pool_, params_.max_extravasate_per_step);
    const std::uint64_t step = step_;
    dev_.launch_blocks({1, 1, "k_extravasation"},
                       [&, attempts, step](auto& blk) {
      blk.for_each_thread([&](std::uint32_t) {
        auto tc = blk.global(tcell_);
        auto timer = blk.global(tcell_timer_);
        auto bind = blk.global(tcell_bind_);
        auto epi = blk.global(epi_state_);
        auto chem = blk.global(chem_);
        auto count = blk.global(extrav_dev_);
        std::uint32_t successes = 0;
        for (std::uint64_t i = 0; i < attempts; ++i) {
          const VoxelId u =
              rules::attempt_voxel(rng_, step, i, grid_.num_voxels());
          if (!global_is_mine(u)) continue;
          const std::uint32_t slot = slot_of_global(u);
          if (!rules::attempt_accepted(rng_, step, i, chem.read(slot)))
            continue;
          if (static_cast<EpiState>(epi.read(slot)) == EpiState::kEmpty)
            continue;
          if (tc.read(slot)) continue;
          tc.write(slot, 1);
          timer.write(slot, static_cast<std::uint32_t>(
                                params_.tcell_tissue_period));
          bind.write(slot, 0);
          ++successes;
        }
        count.write(0, successes);
      });
    });
  }

  void k_epithelial() {
    const std::uint64_t step = step_;
    for_active_voxels("k_epithelial", [&, step](auto& t, std::int32_t x,
                                                 std::int32_t y,
                                                 std::uint32_t slot) {
      auto epi = t.global(epi_state_);
      const auto s = static_cast<EpiState>(epi.read(slot));
      if (s == EpiState::kEmpty || s == EpiState::kDead) return;
      auto timer = t.global(epi_timer_);
      const rules::EpiUpdate u = rules::update_epithelial(
          rng_, step, gid(x, y), s, timer.read(slot),
          t.global(virus_).read(slot), params_);
      epi.write(slot, static_cast<std::uint8_t>(u.state));
      timer.write(slot, u.timer);
    });
  }

  void field_pass(DeviceBuffer<float>& field, bool is_virus) {
    const double production =
        is_virus ? params_.virus_production : params_.chem_production;
    const double decay = is_virus ? params_.virus_decay : params_.chem_decay;
    const double diffusion =
        is_virus ? params_.virus_diffusion : params_.chem_diffusion;
    const double floor_eps = is_virus ? params_.min_virus : params_.min_chem;

    // Production + decay into tmp (tmp is all-zero outside active tiles).
    for_active_voxels("field_produce_decay", [&](auto& t, std::int32_t, std::int32_t,
                          std::uint32_t slot) {
      const auto s = static_cast<EpiState>(t.global(epi_state_).read(slot));
      const bool produces =
          is_virus ? rules::produces_virus(s) : rules::produces_chem(s);
      t.global(tmp_).write(slot,
                           rules::produce_decay(t.global(field).read(slot),
                                                produces, production, decay));
    });
    // Boundary tmp -> neighbour ghosts (diffusion reads this-step values).
    exchange(tmp_, kPTmp, StripSide::kBoundary, MergeMode::kOverwrite);
    // Diffusion stencil reading tmp, writing the field.
    for_active_voxels("field_diffuse", [&](auto& t, std::int32_t x, std::int32_t y,
                          std::uint32_t slot) {
      auto tmp = t.global(tmp_);
      const std::int32_t gx = sub_.origin.x + x, gy = sub_.origin.y + y;
      double sum = 0.0;
      int cnt = 0;
      const std::array<std::array<std::int32_t, 2>, 4> offs{
          {{-1, 0}, {+1, 0}, {0, -1}, {0, +1}}};
      for (const auto& o : offs) {
        const std::int32_t nx = gx + o[0], ny = gy + o[1];
        if (nx < 0 || nx >= grid_.dim_x() || ny < 0 || ny >= grid_.dim_y())
          continue;
        sum += static_cast<double>(tmp.read(lay_.index(x + o[0], y + o[1])));
        ++cnt;
      }
      t.global(field).write(
          slot, rules::diffuse(tmp.read(slot), sum, cnt, diffusion, floor_eps));
    });
    // Re-zero tmp for the next field (active tiles + ghost strips only —
    // everything else was never written).
    for_active_voxels("field_rezero", [&](auto& t, std::int32_t,
                                          std::int32_t, std::uint32_t slot) {
      t.global(tmp_).write(slot, 0.0f);
    });
    const std::uint32_t base = lay_.interior_slots();
    const std::uint64_t n = lay_.size() - base;
    dev_.parallel_for(linear_launch(n, "field_rezero_ghost"),
                      [&, base, n](auto& t) {
      const std::uint64_t i = t.global_index();
      if (i >= n) return;
      t.global(tmp_).write(base + i, 0.0f);
    });
  }

  void run_tile_sweep() {
    obs::ScopedSpan span("tile_sweep_scan", rank_.id());
    // One block per tile scans its voxels; the block flag lives in shared
    // memory and one thread publishes it (§3.2).
    const auto spt = static_cast<std::uint32_t>(lay_.slots_per_tile());
    const std::uint32_t bd = std::min<std::uint32_t>(spt, 1024);
    dev_.launch_blocks(
        {static_cast<std::uint32_t>(lay_.num_tiles()), bd, "tile_sweep"},
        [&](auto& blk) {
          // One flag slot per thread: every thread writing a single shared
          // found[0] in the same phase is a write-write race on real
          // hardware (the old code relied on all writers storing the same
          // value); the per-thread slots are OR-folded by thread 0 in the
          // publishing phase, after the implicit __syncthreads.
          auto found = blk.template shared<std::uint32_t>(bd);
          blk.for_each_thread([&](std::uint32_t tid) {
            auto epi = blk.global(epi_state_);
            auto tc = blk.global(tcell_);
            auto vir = blk.global(virus_);
            auto che = blk.global(chem_);
            for (std::uint32_t i = tid; i < spt; i += bd) {
              const std::uint32_t slot = blk.block_idx() * spt + i;
              std::int32_t x, y;
              lay_.slot_to_xy(slot, x, y);
              if (x >= w_ || y >= h_) continue;  // tile padding
              if (vir.read(slot) > 0.0f || che.read(slot) > 0.0f ||
                  tc.read(slot) != 0 ||
                  transient_epi(static_cast<EpiState>(epi.read(slot)))) {
                found[tid] = 1;
              }
            }
          });
          blk.for_each_thread([&](std::uint32_t tid) {
            if (tid == 0) {
              std::uint32_t any = 0;
              for (std::uint32_t k = 0; k < bd; ++k) {
                any |= static_cast<std::uint32_t>(found[k]);
              }
              blk.global(sweep_flags_)
                  .write(blk.block_idx(), static_cast<std::uint8_t>(any));
            }
          });
        });
    std::vector<std::uint8_t> raw(static_cast<std::size_t>(lay_.num_tiles()));
    sweep_flags_.copy_to_host(raw);
    tiles_.update_from_sweep(raw);
    upload_active_tiles();
  }

  void reduce_stats(StepStats& stats) {
    if (variant_.fast_reduction) {
      reduce_tree();
    } else {
      reduce_atomic();
    }
    std::array<double, kNumDevStats> dev_stats{};
    stats_dev_.copy_to_host(std::span<double>(dev_stats.data(), kNumDevStats));
    std::array<std::uint32_t, 1> extrav{};
    extrav_dev_.copy_to_host(std::span<std::uint32_t>(extrav.data(), 1));

    stats.virus_total = dev_stats[0];
    stats.chem_total = dev_stats[1];
    for (int s = 0; s < kNumEpiStates; ++s) {
      stats.epi_counts[static_cast<std::size_t>(s)] =
          static_cast<std::uint64_t>(dev_stats[static_cast<std::size_t>(2 + s)] +
                                     0.5);
    }
    stats.tcells_tissue =
        static_cast<std::uint64_t>(dev_stats[2 + kNumEpiStates] + 0.5);
    stats.extravasated = extrav[0];

    const auto flat = stats.flatten();
    const auto reduced =
        rank_.allreduce_sum(std::span<const double>(flat.data(), flat.size()));
    std::array<double, StepStats::kFlatSize> arr{};
    std::copy(reduced.begin(), reduced.end(), arr.begin());
    stats = StepStats::unflatten(arr);
    pool_ = rules::pool_after_step(pool_, step_, params_, stats.extravasated);
    stats.tcells_vascular = pool_;

    stats_dev_.fill(0.0);
    extrav_dev_.fill(0);
  }

  /// Unoptimized reduction: every voxel updates the global counters with
  /// atomics — the contention §3.3 identifies as the dominant cost.
  void reduce_atomic() {
    const std::uint64_t n = lay_.interior_slots();
    // Per-voxel floating-point atomic adds reorder under permuted
    // schedules; this is the intentionally order-tolerant unoptimized
    // variant (§3.3).  Consumers compare virus/chem at 1e-9 relative
    // tolerance and the integer-valued stats are exact below 2^53.
    stats_dev_.tolerate_schedule_variance(
        "unoptimized per-voxel FP atomic reduction");
    dev_.parallel_for(linear_launch(n, "reduce_atomic"), [&, n](auto& t) {
      const std::uint64_t i = t.global_index();
      if (i >= n) return;
      std::int32_t x, y;
      lay_.slot_to_xy(static_cast<std::uint32_t>(i), x, y);
      if (x >= w_ || y >= h_) return;
      auto out = t.global(stats_dev_);
      const float v = t.global(virus_).read(i);
      if (v > 0.0f) out.atomic_add(0, static_cast<double>(v));
      const float c = t.global(chem_).read(i);
      if (c > 0.0f) out.atomic_add(1, static_cast<double>(c));
      const auto s = t.global(epi_state_).read(i);
      out.atomic_add(2 + s, 1.0);
      if (t.global(tcell_).read(i)) out.atomic_add(2 + kNumEpiStates, 1.0);
    });
  }

  /// Fast reduction (§3.3): threads accumulate strided subsets, blocks fold
  /// them through shared memory with a tree, and only one atomic per stat
  /// per block touches global memory.
  void reduce_tree() {
    const std::uint64_t n = lay_.interior_slots();
    const std::uint32_t bd = reduce_block_;
    const std::uint32_t blocks = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        n / (static_cast<std::uint64_t>(bd) * 8), 1, 256));
    const std::uint64_t stride = static_cast<std::uint64_t>(blocks) * bd;
    if (blocks > 1) {
      // With several blocks the per-block partial sums meet in global
      // memory through one FP atomic_add per stat, so block order can
      // reorder the additions.  Single-block launches (every smoke-scale
      // grid) fold in a fixed tree and stay bit-identical.
      stats_dev_.tolerate_schedule_variance(
          "cross-block FP atomic merge of partial sums");
    }
    dev_.launch_blocks({blocks, bd, "reduce_tree"},
                       [&, n, bd, stride](auto& blk) {
      auto sh = blk.template shared<double>(static_cast<std::size_t>(bd) *
                                            kNumDevStats);
      blk.for_each_thread([&](std::uint32_t tid) {
        auto epi = blk.global(epi_state_);
        auto tc = blk.global(tcell_);
        auto vir = blk.global(virus_);
        auto che = blk.global(chem_);
        std::array<double, kNumDevStats> acc{};
        for (std::uint64_t i = blk.block_idx() * bd + tid; i < n; i += stride) {
          std::int32_t x, y;
          lay_.slot_to_xy(static_cast<std::uint32_t>(i), x, y);
          if (x >= w_ || y >= h_) continue;
          acc[0] += static_cast<double>(vir.read(i));
          acc[1] += static_cast<double>(che.read(i));
          acc[static_cast<std::size_t>(2 + epi.read(i))] += 1.0;
          if (tc.read(i)) acc[2 + kNumEpiStates] += 1.0;
        }
        for (std::size_t s = 0; s < kNumDevStats; ++s) {
          sh[tid * kNumDevStats + s] = acc[s];
        }
      });
      for (std::uint32_t off = bd / 2; off > 0; off >>= 1) {
        blk.for_each_thread([&](std::uint32_t tid) {
          if (tid < off) {
            for (std::size_t s = 0; s < kNumDevStats; ++s) {
              sh[tid * kNumDevStats + s] += sh[(tid + off) * kNumDevStats + s];
            }
          }
        });
      }
      blk.for_each_thread([&](std::uint32_t tid) {
        if (tid == 0) {
          auto out = blk.global(stats_dev_);
          for (std::size_t s = 0; s < kNumDevStats; ++s) {
            out.atomic_add(s, sh[s]);
          }
        }
      });
    });
  }

  // ---- cost accounting ------------------------------------------------------------
  void snapshot_counters() {
    comm_snapshot_ = rank_.stats();
    dev_snapshot_ = dev_.stats();
  }

  void record_phase(perfmodel::Phase phase) {
    perfmodel::WorkSample sample;
    sample.comm = rank_.stats().since(comm_snapshot_);
    sample.dev = dev_.stats().since(dev_snapshot_);
    sample.mem_penalty = variant_.memory_tiling ? 1.0 : kUntiledMemPenalty;
    cost_log_.add(phase, sample);
    comm_snapshot_ = rank_.stats();
    dev_snapshot_ = dev_.stats();
    // The modeled phases double as the measured trace spans, so the
    // Perfetto track and the cost model speak the same phase vocabulary.
    pclock_.phase_end(perfmodel::phase_name(phase));
  }

  /// Per-step metric series (§3.2/§3.3 observability): halo traffic,
  /// barrier skew, and the active-tile working set.
  void emit_step_metrics() {
    auto& m = obs::metrics();
    const int r = rank_.id();
    const pgas::CommStats d = rank_.stats().since(step_comm_snapshot_);
    m.step_value("gpu.halo_bytes", r, step_, static_cast<double>(d.put_bytes));
    m.step_value("pgas.barrier_wait_ns", r, step_,
                 static_cast<double>(d.barrier_wait_ns));
    const double tiles = static_cast<double>(tiles_.active_count());
    const double total = static_cast<double>(lay_.num_tiles());
    m.step_value("gpu.active_tiles", r, step_, tiles);
    m.step_value("gpu.tile_occupancy", r, step_,
                 total > 0.0 ? tiles / total : 0.0);
    m.step_value("gpu.voxels_touched", r, step_,
                 tiles * static_cast<double>(lay_.slots_per_tile()));
    m.set("gpu.tile_activations", r,
          static_cast<double>(tiles_.activations()));
    m.set("gpu.tile_deactivations", r,
          static_cast<double>(tiles_.deactivations()));
    if (const gpusim::KernelChecker* chk = dev_.checker()) {
      m.set("gpu.check.launches", r,
            static_cast<double>(chk->launches_checked()));
      m.set("gpu.check.violations", r,
            static_cast<double>(chk->violation_count()));
      m.set("gpu.check.permuted", r,
            static_cast<double>(chk->launches_permuted()));
      m.set("gpu.check.tolerated", r,
            static_cast<double>(chk->tolerated_diffs()));
    }
  }

  // ---- members -----------------------------------------------------------------------
  pgas::Rank& rank_;
  SimParams params_;
  Grid grid_;
  Subdomain sub_;
  CounterRng rng_;
  GpuVariant variant_;
  TiledLayout lay_;
  ActiveTileSet tiles_;
  Device dev_;
  perfmodel::RankCostLog cost_log_;
  obs::PhaseClock pclock_;

  std::int32_t w_ = 0, h_ = 0;
  std::uint32_t reduce_block_ = 128;
  std::uint64_t step_ = 0;
  double pool_ = 0.0;

  DeviceBuffer<std::uint8_t> epi_state_;
  DeviceBuffer<std::uint32_t> epi_timer_;
  DeviceBuffer<std::uint8_t> tcell_;
  DeviceBuffer<std::uint32_t> tcell_timer_;
  DeviceBuffer<std::uint32_t> tcell_bind_;
  DeviceBuffer<float> virus_;
  DeviceBuffer<float> chem_;
  DeviceBuffer<float> tmp_;
  DeviceBuffer<std::uint8_t> occupancy_;
  DeviceBuffer<std::uint8_t> eligible_;
  DeviceBuffer<std::uint8_t> intent_kind_;
  DeviceBuffer<std::uint64_t> intent_target_;
  DeviceBuffer<std::uint64_t> intent_bid_;
  DeviceBuffer<std::uint32_t> intent_timer_;
  DeviceBuffer<std::uint64_t> bid_move_;
  DeviceBuffer<std::uint64_t> bid_bind_;
  DeviceBuffer<std::uint32_t> active_tiles_dev_;
  DeviceBuffer<std::uint8_t> sweep_flags_;
  DeviceBuffer<double> stats_dev_;
  DeviceBuffer<std::uint32_t> extrav_dev_;
  DeviceBuffer<std::uint8_t> stage_u8_;
  DeviceBuffer<std::uint32_t> stage_u32_;
  DeviceBuffer<std::uint64_t> stage_u64_;
  DeviceBuffer<float> stage_f32_;

  TimeSeries history_;
  pgas::CommStats comm_snapshot_;
  pgas::CommStats step_comm_snapshot_;
  gpusim::DeviceStats dev_snapshot_;
};

template <>
DeviceBuffer<std::uint8_t>& GpuRank::stage<std::uint8_t>() {
  return stage_u8_;
}
template <>
DeviceBuffer<std::uint32_t>& GpuRank::stage<std::uint32_t>() {
  return stage_u32_;
}
template <>
DeviceBuffer<std::uint64_t>& GpuRank::stage<std::uint64_t>() {
  return stage_u64_;
}
template <>
DeviceBuffer<float>& GpuRank::stage<float>() {
  return stage_f32_;
}

}  // namespace

GpuRunResult run_gpu_sim(const SimParams& params,
                         const std::vector<VoxelId>& foi,
                         const GpuSimOptions& options,
                         const std::vector<VoxelId>& empty_voxels) {
  params.validate();
  SIMCOV_REQUIRE(options.num_ranks >= 1, "need at least one rank");
  const Grid grid(params.dim_x, params.dim_y, params.dim_z);
  const Decomposition dec(grid, options.num_ranks, options.decomp);
  const perfmodel::CostModel model(options.machine, perfmodel::Backend::kGpu,
                                   options.num_ranks, options.area_scale);

  pgas::Runtime rt(options.num_ranks);
  GpuRunResult result;
  std::vector<const perfmodel::RankCostLog*> logs(
      static_cast<std::size_t>(options.num_ranks));
  std::vector<gpusim::DeviceStats> dev_totals(
      static_cast<std::size_t>(options.num_ranks));
  std::vector<std::string> check_reports(
      static_cast<std::size_t>(options.num_ranks));
  std::vector<std::uint64_t> check_violations(
      static_cast<std::size_t>(options.num_ranks), 0);
  std::vector<std::uint64_t> check_accesses(
      static_cast<std::size_t>(options.num_ranks), 0);

  rt.run([&](pgas::Rank& rank) {
    GpuRank sim(rank, params, dec, foi, empty_voxels, options, model);
    // SPMD sanity: rank 0 broadcasts a digest of its parameter set and every
    // rank checks its own copy against it.  Setup traffic happens before the
    // first step's counter snapshot, so this stays outside the modeled
    // per-phase costs.
    const std::uint64_t pdigest = std::hash<std::string>{}(params.summary());
    SIMCOV_REQUIRE(rank.broadcast_value<std::uint64_t>(0, pdigest) == pdigest,
                   "ranks disagree on the simulation parameter set");
    rank.barrier();
    sim.initialize();
    rank.barrier();

    std::vector<std::uint64_t> digests;
    for (std::int64_t s = 0; s < params.num_steps; ++s) {
      sim.step();
      if (options.record_digests) {
        digests.push_back(rank.allreduce_xor(sim.local_digest()));
      }
    }
    rank.barrier();
    if (rank.id() == 0) {
      result.history = sim.history();
      result.digests = std::move(digests);
    }
    logs[static_cast<std::size_t>(rank.id())] = &sim.cost_log();
    dev_totals[static_cast<std::size_t>(rank.id())] = sim.device_stats();
    if (const gpusim::KernelChecker* chk = sim.checker()) {
      check_reports[static_cast<std::size_t>(rank.id())] = chk->report();
      check_violations[static_cast<std::size_t>(rank.id())] =
          chk->violation_count();
      check_accesses[static_cast<std::size_t>(rank.id())] =
          chk->accesses_checked();
    }
    rank.barrier();
    if (rank.id() == 0) {
      result.cost =
          perfmodel::fold(std::span<const perfmodel::RankCostLog* const>(logs));
    }
    rank.barrier();  // keep all sims alive until the fold completes
  });

  for (const auto& d : dev_totals) result.device_total += d;
  for (std::size_t r = 0; r < check_violations.size(); ++r) {
    result.check_violations += check_violations[r];
    result.check_accesses += check_accesses[r];
  }
  if (result.check_violations > 0) {
    // Deferred KernelCheck reporting: all ranks have joined, so one
    // aggregated Error is safe to throw.
    std::string msg = "KernelCheck: kernel discipline violation(s)";
    for (std::size_t r = 0; r < check_reports.size(); ++r) {
      if (check_reports[r].empty()) continue;
      msg += "\nrank " + std::to_string(r) + ": " + check_reports[r];
    }
    throw Error(msg);
  }
  const pgas::CommStats total = rt.total_stats();
  result.total_put_bytes = total.put_bytes;
  result.total_kernel_launches = result.device_total.kernel_launches;
  result.comm_by_rank.reserve(static_cast<std::size_t>(options.num_ranks));
  for (int r = 0; r < options.num_ranks; ++r) {
    result.comm_by_rank.push_back(rt.rank_stats(r));
  }
  return result;
}

}  // namespace simcov::gpu
