#include "gpusim/check.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>

#include "util/error.hpp"

namespace simcov::gpusim {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string who_str(std::uint32_t block, std::uint32_t thread,
                    std::uint32_t phase) {
  std::ostringstream os;
  os << "(block " << block << ", thread ";
  if (thread == 0xFFFFFFFFu) {
    os << "<block-driver>";
  } else {
    os << thread;
  }
  os << ", phase " << phase << ")";
  return os.str();
}

}  // namespace

KernelCheckOptions kernel_check_env() {
  KernelCheckOptions opts;
  const char* env = std::getenv("SIMCOV_KERNEL_CHECK");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return opts;
  std::string_view v(env);
  if (v.empty() || v == "0") return opts;
  opts.check_access = true;
  if (v == "permute") opts.permute_schedules = true;
  return opts;
}

std::vector<std::uint64_t> seeded_permutation(std::uint64_t seed,
                                              std::uint64_t n) {
  std::vector<std::uint64_t> perm(n);
  for (std::uint64_t i = 0; i < n; ++i) perm[i] = i;
  std::uint64_t state = seed ^ 0xd1b54a32d192ed03ULL;
  for (std::uint64_t i = n; i > 1; --i) {
    std::uint64_t j = splitmix64(state) % i;
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

KernelChecker::KernelChecker(const KernelCheckOptions& opts) : opts_(opts) {}

void KernelChecker::register_buffer(void* data, std::size_t bytes,
                                    std::size_t elem_size, const char* name) {
  if (data == nullptr) return;  // zero-element buffers have no storage
  registry_[data] = BufferInfo{data, bytes, elem_size, name};
}

void KernelChecker::unregister_buffer(const void* data) {
  if (data == nullptr) return;
  registry_.erase(data);
  global_shadow_.erase(data);
  if (cached_key_ == data) {
    cached_key_ = nullptr;
    cached_shadow_ = nullptr;
  }
}

void KernelChecker::begin_launch(const char* name, std::uint32_t grid_dim,
                                 std::uint32_t block_dim) {
  kernel_name_ = name;
  grid_dim_ = grid_dim;
  block_dim_ = block_dim;
  ++launch_seq_;  // stale shadow cells from earlier launches now self-reset
  ++launches_checked_;
  launch_first_violation_ = violations_.size();
  pos_ = Who{};
}

void KernelChecker::end_launch() {
  exemptions_.clear();
  kernel_name_ = nullptr;
  if (violations_.size() == launch_first_violation_) return;
  if (opts_.defer_report) return;
  std::ostringstream os;
  os << "KernelCheck: kernel discipline violation";
  for (std::size_t i = launch_first_violation_; i < violations_.size(); ++i) {
    os << "\n  " << violations_[i];
  }
  throw Error(os.str());
}

void KernelChecker::at_thread(std::uint32_t block, std::uint32_t thread) {
  pos_.block = block;
  pos_.thread = thread;
  pos_.phase = 0;
}

void KernelChecker::begin_block(std::uint32_t block) {
  pos_.block = block;
  pos_.thread = kBlockDriver;
  pos_.phase = 0;
  // Shared allocations are per-block scratch; the allocator may hand the
  // next block the same addresses, so the block boundary resets them.
  shared_shadow_.clear();
  if (cached_shared_) {
    cached_key_ = nullptr;
    cached_shadow_ = nullptr;
  }
}

void KernelChecker::enter_phase() {
  ++pos_.phase;
  pos_.thread = kBlockDriver;
}

void KernelChecker::at_block_thread(std::uint32_t thread) {
  pos_.thread = thread;
}

KernelChecker::Snapshot KernelChecker::snapshot_buffers() const {
  Snapshot snap;
  snap.reserve(registry_.size());
  for (const auto& [ptr, info] : registry_) {
    const auto* bytes = static_cast<const std::byte*>(info.data);
    snap.emplace_back(ptr, std::vector<std::byte>(bytes, bytes + info.bytes));
  }
  std::sort(snap.begin(), snap.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

void KernelChecker::restore_buffers(const Snapshot& snap) const {
  for (const auto& [ptr, bytes] : snap) {
    auto it = registry_.find(ptr);
    SIMCOV_ASSERT(it != registry_.end(),
                  "KernelCheck: buffer vanished during schedule replay");
    std::memcpy(it->second.data, bytes.data(), bytes.size());
  }
}

void KernelChecker::diff_against_canonical(const Snapshot& canonical,
                                           const Snapshot& permuted,
                                           const char* schedule_label) {
  SIMCOV_ASSERT(canonical.size() == permuted.size(),
                "KernelCheck: buffer set changed during schedule replay");
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    const auto& [ptr, want] = canonical[i];
    const auto& [pptr, got] = permuted[i];
    SIMCOV_ASSERT(ptr == pptr && want.size() == got.size(),
                  "KernelCheck: buffer set changed during schedule replay");
    if (want == got) continue;
    auto it = registry_.find(ptr);
    std::size_t elem_size = it != registry_.end() ? it->second.elem_size : 1;
    std::size_t byte = 0;
    while (byte < want.size() && want[byte] == got[byte]) ++byte;
    bool tolerated = false;
    const char* rationale = nullptr;
    for (const auto& ex : exemptions_) {
      if (ex.data == ptr) {
        tolerated = true;
        rationale = ex.rationale;
        break;
      }
    }
    if (tolerated) {
      ++tolerated_diffs_;
      (void)rationale;
      continue;
    }
    std::ostringstream os;
    os << buffer_label(ptr, /*shared=*/false) << " element "
       << byte / (elem_size == 0 ? 1 : elem_size) << " differs under the "
       << schedule_label << " schedule";
    record_violation("schedule-dependent result", os.str());
  }
}

void KernelChecker::tolerate_schedule_variance(const void* data,
                                               const char* rationale) {
  exemptions_.push_back(Exemption{data, rationale});
}

bool KernelChecker::ordered(const Who& a, const Who& b) {
  // Sequential execution gives a total order inside one launch, but on a
  // real GPU only two edges are guaranteed: program order within a thread
  // and __syncthreads between phases of one block.  Cross-block accesses
  // are never ordered within a launch.
  return a.block == b.block && (a.thread == b.thread || a.phase != b.phase);
}

std::vector<KernelChecker::Cell>& KernelChecker::shadow_for(const void* buf,
                                                            bool shared) {
  if (buf == cached_key_ && shared == cached_shared_) return *cached_shadow_;
  auto& map = shared ? shared_shadow_ : global_shadow_;
  auto& shadow = map[buf];
  cached_key_ = buf;
  cached_shadow_ = &shadow;
  cached_shared_ = shared;
  return shadow;
}

void KernelChecker::on_global_access(const void* buf, std::size_t elem,
                                     Access kind) {
  if (replay_ || !opts_.check_access) return;
  ++accesses_checked_;
  check_cell(shadow_for(buf, /*shared=*/false), elem, kind, buf,
             /*shared=*/false);
}

void KernelChecker::on_shared_access(const void* alloc, std::size_t elem,
                                     Access kind) {
  if (replay_ || !opts_.check_access) return;
  ++accesses_checked_;
  check_cell(shadow_for(alloc, /*shared=*/true), elem, kind, alloc,
             /*shared=*/true);
}

void KernelChecker::check_cell(std::vector<Cell>& shadow, std::size_t elem,
                               Access kind, const void* buf, bool shared) {
  if (shadow.size() <= elem) shadow.resize(elem + 1);
  Cell& cell = shadow[elem];
  if (cell.epoch != launch_seq_) {
    cell = Cell{};
    cell.epoch = launch_seq_;
  }

  const Who& me = pos_;
  auto conflict = [&](const char* rule, const Who& other) {
    std::ostringstream os;
    os << buffer_label(buf, shared) << " element " << elem << ": "
       << who_str(other.block, other.thread, other.phase) << " vs "
       << who_str(me.block, me.thread, me.phase);
    record_violation(rule, os.str());
  };
  const char* ww = shared ? "shared-memory phase violation (write-write)"
                          : "write-write race";
  const char* rw = shared ? "shared-memory phase violation (read-write)"
                          : "read-write race";
  const char* mix = shared ? "shared-memory atomic-plain mix"
                           : "atomic-plain mix";

  switch (kind) {
    case Access::kRead:
      if (cell.has_writer && !ordered(cell.writer, me)) {
        conflict(rw, cell.writer);
      }
      if (cell.has_atomic && !ordered(cell.atomic, me)) {
        conflict(mix, cell.atomic);
      }
      if (cell.num_readers > 0 && cell.readers[cell.num_readers - 1].block ==
                                      me.block &&
          cell.readers[cell.num_readers - 1].thread == me.thread) {
        cell.readers[cell.num_readers - 1] = me;  // refresh my phase
      } else if (cell.num_readers < 2) {
        cell.readers[cell.num_readers++] = me;
      } else if (cell.readers[0].block == me.block &&
                 cell.readers[0].thread == me.thread) {
        cell.readers[0] = me;
      } else {
        cell.readers[0] = cell.readers[1];
        cell.readers[1] = me;
      }
      break;
    case Access::kWrite:
      if (cell.has_writer && !ordered(cell.writer, me)) {
        conflict(ww, cell.writer);
      }
      for (std::uint8_t i = 0; i < cell.num_readers; ++i) {
        if (!ordered(cell.readers[i], me)) conflict(rw, cell.readers[i]);
      }
      if (cell.has_atomic && !ordered(cell.atomic, me)) {
        conflict(mix, cell.atomic);
      }
      cell.writer = me;
      cell.has_writer = 1;
      break;
    case Access::kAtomic:
      // Atomic vs atomic is always fine; atomics only clash with plain
      // reads and writes.
      if (cell.has_writer && !ordered(cell.writer, me)) {
        conflict(mix, cell.writer);
      }
      for (std::uint8_t i = 0; i < cell.num_readers; ++i) {
        if (!ordered(cell.readers[i], me)) conflict(mix, cell.readers[i]);
      }
      cell.atomic = me;
      cell.has_atomic = 1;
      break;
  }
}

void KernelChecker::record_violation(const std::string& rule,
                                     const std::string& detail) {
  ++total_violations_;
  std::string msg = rule + " in kernel " + launch_label() + ": " + detail;
  for (const auto& v : violations_) {
    if (v == msg) return;  // dedup repeated findings (e.g. per step)
  }
  if (violations_.size() < kMaxRecordedViolations) {
    violations_.push_back(std::move(msg));
  }
}

std::string KernelChecker::buffer_label(const void* buf, bool shared) const {
  if (shared) return "shared memory";
  auto it = registry_.find(buf);
  if (it == registry_.end() || it->second.name == nullptr) {
    return "buffer <unnamed>";
  }
  return std::string("buffer '") + it->second.name + "'";
}

std::string KernelChecker::launch_label() const {
  std::ostringstream os;
  os << '\'' << (kernel_name_ != nullptr ? kernel_name_ : "<unnamed>")
     << "' <<" << grid_dim_ << 'x' << block_dim_ << ">>";
  return os.str();
}

std::string KernelChecker::report() const {
  if (clean()) return "";
  std::ostringstream os;
  os << "KernelCheck: " << total_violations_ << " violation(s)";
  if (total_violations_ > violations_.size()) {
    os << " (" << violations_.size() << " distinct shown)";
  }
  for (const auto& v : violations_) os << "\n  " << v;
  return os.str();
}

}  // namespace simcov::gpusim
