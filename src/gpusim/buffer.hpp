#pragma once
// Device-resident typed buffers.
//
// DeviceBuffer<T> models cudaMalloc'd memory: the host can only move data in
// and out with explicit copies (counted as H2D/D2H traffic) and only while
// no kernel is running; kernels access elements through GlobalSpan views
// obtained from their launch context (counted as global-memory traffic).

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "gpusim/device.hpp"
#include "util/error.hpp"

namespace simcov::gpusim {

template <typename T>
class DeviceBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "device memory holds trivially copyable types only");

 public:
  DeviceBuffer(Device& dev, std::size_t count, T init = T{},
               const char* name = nullptr)
      : device_(&dev), storage_(count, init) {
    device_->allocated_bytes_ += count * sizeof(T);
    if (KernelChecker* chk = device_->checker()) {
      chk->register_buffer(storage_.data(), count * sizeof(T), sizeof(T),
                           name);
    }
  }

  ~DeviceBuffer() {
    if (device_) {
      device_->allocated_bytes_ -= storage_.size() * sizeof(T);
      if (KernelChecker* chk = device_->checker()) {
        chk->unregister_buffer(storage_.data());
      }
    }
  }

  // Moving transfers the registry identity for free: the checker keys on
  // the heap storage, whose address survives a vector move.
  DeviceBuffer(DeviceBuffer&& o) noexcept
      : device_(o.device_), storage_(std::move(o.storage_)) {
    o.device_ = nullptr;
  }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      if (device_) {
        device_->allocated_bytes_ -= storage_.size() * sizeof(T);
        if (KernelChecker* chk = device_->checker()) {
          chk->unregister_buffer(storage_.data());
        }
      }
      device_ = o.device_;
      storage_ = std::move(o.storage_);
      o.device_ = nullptr;
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  std::size_t size() const { return storage_.size(); }
  Device& device() const { return *device_; }

  /// Host -> device copy (cudaMemcpyHostToDevice).
  void copy_from_host(std::span<const T> src, std::size_t dst_offset = 0) {
    require_host_access("copy_from_host");
    SIMCOV_REQUIRE(dst_offset + src.size() <= storage_.size(),
                   "copy_from_host out of bounds");
    std::memcpy(storage_.data() + dst_offset, src.data(),
                src.size() * sizeof(T));
    device_->stats_.h2d_bytes += src.size() * sizeof(T);
  }

  /// Device -> host copy (cudaMemcpyDeviceToHost).
  void copy_to_host(std::span<T> dst, std::size_t src_offset = 0) const {
    require_host_access("copy_to_host");
    SIMCOV_REQUIRE(src_offset + dst.size() <= storage_.size(),
                   "copy_to_host out of bounds");
    std::memcpy(dst.data(), storage_.data() + src_offset,
                dst.size() * sizeof(T));
    device_->stats_.d2h_bytes += dst.size() * sizeof(T);
  }

  /// Device-side fill (cudaMemset-style); counted as global writes.
  void fill(T value) {
    require_host_access("fill");
    for (auto& v : storage_) v = value;
    device_->stats_.global_write_bytes += storage_.size() * sizeof(T);
  }

  /// Declares that the *next* kernel launch may legitimately produce
  /// different bits in this buffer under permuted thread schedules (e.g.
  /// an intentionally order-tolerant floating-point atomic reduction).
  /// KernelCheck counts the tolerated difference instead of raising a
  /// schedule-dependent-result violation.  No-op when checking is off.
  void tolerate_schedule_variance(const char* rationale) {
    SIMCOV_REQUIRE(device_ != nullptr, "buffer moved-from");
    if (KernelChecker* chk = device_->checker()) {
      chk->tolerate_schedule_variance(storage_.data(), rationale);
    }
  }

 private:
  friend class ThreadCtx;
  friend class BlockCtx;

  void require_host_access(const char* what) const {
    SIMCOV_REQUIRE(device_ != nullptr, "buffer moved-from");
    SIMCOV_REQUIRE(!device_->kernel_active(),
                   std::string(what) + " while a kernel is active");
  }

  T* raw() { return storage_.data(); }
  const T* raw() const { return storage_.data(); }

  Device* device_;
  std::vector<T> storage_;
};

}  // namespace simcov::gpusim
