#pragma once
// Umbrella header for the virtual-GPU substrate.  Include this, not the
// individual headers (they have mutual dependencies resolved here).

#include "gpusim/check.hpp"    // IWYU pragma: export
#include "gpusim/device.hpp"   // IWYU pragma: export
#include "gpusim/buffer.hpp"   // IWYU pragma: export
#include "gpusim/kernel.hpp"   // IWYU pragma: export
#include "gpusim/kernel_impl.hpp"  // IWYU pragma: export
