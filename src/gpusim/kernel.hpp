#pragma once
// Kernel-side contexts and global-memory views.
//
// ThreadCtx: handed to each thread of a data-parallel kernel (parallel_for).
// BlockCtx: handed to each block of a cooperative kernel (launch_blocks);
//   provides per-block shared memory and phased thread execution where
//   consecutive for_each_thread calls are separated by an implicit
//   __syncthreads (all writes of phase N visible in phase N+1).
// GlobalSpan<T>: the only way kernels read/write device buffers; every
//   access is bounds-checked and counted as global-memory traffic, and
//   atomic read-modify-writes are counted separately (they are what the
//   fast-reduction optimization of §3.3 eliminates).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace simcov::gpusim {

class Device;
struct LaunchConfig;
struct DeviceStats;
template <typename T>
class DeviceBuffer;

/// Kernel-side mutable view of a DeviceBuffer.  Cheap to copy.
template <typename T>
class GlobalSpan {
 public:
  std::size_t size() const { return size_; }

  T read(std::size_t i) const {
    SIMCOV_ASSERT(i < size_, "global read out of bounds");
    *read_bytes_ += sizeof(T);
    return data_[i];
  }

  void write(std::size_t i, T value) const {
    SIMCOV_ASSERT(i < size_, "global write out of bounds");
    *write_bytes_ += sizeof(T);
    data_[i] = value;
  }

  /// atomicAdd: returns the old value.
  T atomic_add(std::size_t i, T value) const {
    SIMCOV_ASSERT(i < size_, "atomic out of bounds");
    ++*atomics_;
    T old = data_[i];
    data_[i] = old + value;
    return old;
  }

  /// atomicMax: returns the old value.
  T atomic_max(std::size_t i, T value) const {
    SIMCOV_ASSERT(i < size_, "atomic out of bounds");
    ++*atomics_;
    T old = data_[i];
    if (value > old) data_[i] = value;
    return old;
  }

 private:
  friend class ThreadCtx;
  friend class BlockCtx;
  GlobalSpan(T* data, std::size_t size, std::uint64_t* rd, std::uint64_t* wr,
             std::uint64_t* at)
      : data_(data), size_(size), read_bytes_(rd), write_bytes_(wr),
        atomics_(at) {}

  T* data_;
  std::size_t size_;
  std::uint64_t* read_bytes_;
  std::uint64_t* write_bytes_;
  std::uint64_t* atomics_;
};

/// Context of one thread in a data-parallel kernel.
class ThreadCtx {
 public:
  std::uint32_t block_idx() const { return block_idx_; }
  std::uint32_t thread_idx() const { return thread_idx_; }
  std::uint32_t block_dim() const { return block_dim_; }
  std::uint32_t grid_dim() const { return grid_dim_; }

  /// blockIdx.x * blockDim.x + threadIdx.x
  std::uint64_t global_index() const {
    return static_cast<std::uint64_t>(block_idx_) * block_dim_ + thread_idx_;
  }
  /// Total threads in the launch (for grid-stride loops).
  std::uint64_t grid_size() const {
    return static_cast<std::uint64_t>(grid_dim_) * block_dim_;
  }

  /// Binds a device buffer for kernel-side access.
  template <typename T>
  GlobalSpan<T> global(DeviceBuffer<T>& buf) const;

 private:
  friend class Device;
  ThreadCtx(Device& d, const LaunchConfig& cfg, std::uint32_t b,
            std::uint32_t t);

  Device* device_;
  std::uint32_t block_idx_, thread_idx_, block_dim_, grid_dim_;
};

/// Context of one block in a cooperative kernel.
class BlockCtx {
 public:
  std::uint32_t block_idx() const { return block_idx_; }
  std::uint32_t block_dim() const { return block_dim_; }
  std::uint32_t grid_dim() const { return grid_dim_; }

  /// Allocates a zero-initialized shared array for this block (the
  /// __shared__ declaration).  Counted toward shared_bytes_allocated.
  template <typename T>
  std::span<T> shared(std::size_t count);

  /// Runs `fn(thread_idx)` for every thread of the block.  Consecutive
  /// calls are separated by an implicit __syncthreads: all effects of call
  /// N are visible to call N+1.
  template <typename F>
  void for_each_thread(F&& fn) {
    for (std::uint32_t t = 0; t < block_dim_; ++t) fn(t);
    bump_threads(block_dim_);
  }

  template <typename T>
  GlobalSpan<T> global(DeviceBuffer<T>& buf) const;

 private:
  friend class Device;
  BlockCtx(Device& d, const LaunchConfig& cfg, std::uint32_t b);
  void bump_threads(std::uint32_t n);

  Device* device_;
  std::uint32_t block_idx_, block_dim_, grid_dim_;
  std::vector<std::unique_ptr<std::vector<std::byte>>> shared_allocs_;
};

}  // namespace simcov::gpusim
