#pragma once
// Kernel-side contexts and global-memory views.
//
// ThreadCtx: handed to each thread of a data-parallel kernel (parallel_for).
// BlockCtx: handed to each block of a cooperative kernel (launch_blocks);
//   provides per-block shared memory and phased thread execution where
//   consecutive for_each_thread calls are separated by an implicit
//   __syncthreads (all writes of phase N visible in phase N+1).
// GlobalSpan<T>: the only way kernels read/write device buffers; every
//   access is bounds-checked and counted as global-memory traffic, and
//   atomic read-modify-writes are counted separately (they are what the
//   fast-reduction optimization of §3.3 eliminates).
// SharedSpan<T>: the view BlockCtx::shared returns; element access goes
//   through a proxy so the opt-in KernelChecker (check.hpp) can classify
//   each touch as a read or a write against the phase contract.
//
// Every accessor funnels through KernelChecker hooks when a checker is
// attached to the device (one predictable null-pointer branch otherwise);
// this is the choke point that makes the race analyzer complete: kernels
// have no other path to device data.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/check.hpp"
#include "util/error.hpp"

namespace simcov::gpusim {

class Device;
struct LaunchConfig;
struct DeviceStats;
template <typename T>
class DeviceBuffer;

/// Kernel-side mutable view of a DeviceBuffer.  Cheap to copy.
template <typename T>
class GlobalSpan {
 public:
  std::size_t size() const { return size_; }

  T read(std::size_t i) const {
    SIMCOV_ASSERT(i < size_, "global read out of bounds");
    *read_bytes_ += sizeof(T);
    if (chk_) chk_->on_global_access(data_, i, KernelChecker::Access::kRead);
    return data_[i];
  }

  void write(std::size_t i, T value) const {
    SIMCOV_ASSERT(i < size_, "global write out of bounds");
    *write_bytes_ += sizeof(T);
    if (chk_) chk_->on_global_access(data_, i, KernelChecker::Access::kWrite);
    data_[i] = value;
  }

  /// atomicAdd: returns the old value.
  T atomic_add(std::size_t i, T value) const {
    SIMCOV_ASSERT(i < size_, "atomic out of bounds");
    ++*atomics_;
    if (chk_) chk_->on_global_access(data_, i, KernelChecker::Access::kAtomic);
    T old = data_[i];
    data_[i] = old + value;
    return old;
  }

  /// atomicMax: returns the old value.
  T atomic_max(std::size_t i, T value) const {
    SIMCOV_ASSERT(i < size_, "atomic out of bounds");
    ++*atomics_;
    if (chk_) chk_->on_global_access(data_, i, KernelChecker::Access::kAtomic);
    T old = data_[i];
    if (value > old) data_[i] = value;
    return old;
  }

 private:
  friend class ThreadCtx;
  friend class BlockCtx;
  GlobalSpan(T* data, std::size_t size, std::uint64_t* rd, std::uint64_t* wr,
             std::uint64_t* at, KernelChecker* chk)
      : data_(data), size_(size), read_bytes_(rd), write_bytes_(wr),
        atomics_(at), chk_(chk) {}

  T* data_;
  std::size_t size_;
  std::uint64_t* read_bytes_;
  std::uint64_t* write_bytes_;
  std::uint64_t* atomics_;
  KernelChecker* chk_;
};

/// View of a per-block shared-memory allocation (__shared__ array).
/// Element access returns a proxy so reads and writes are distinguishable
/// by the checker; with the checker off the proxy compiles down to the
/// plain load/store.
template <typename T>
class SharedSpan {
 public:
  class Ref {
   public:
    operator T() const {  // NOLINT(google-explicit-constructor) — proxy read
      if (chk_) chk_->on_shared_access(base_, idx_, KernelChecker::Access::kRead);
      return base_[idx_];
    }
    Ref& operator=(T value) {
      if (chk_) {
        chk_->on_shared_access(base_, idx_, KernelChecker::Access::kWrite);
      }
      base_[idx_] = value;
      return *this;
    }
    // Proxy semantics: assigning from another Ref stores its value, it
    // does not rebind this proxy.
    Ref& operator=(const Ref& o) { return *this = static_cast<T>(o); }
    Ref& operator+=(T value) { return *this = static_cast<T>(*this) + value; }
    Ref(const Ref&) = default;

   private:
    friend class SharedSpan;
    Ref(T* base, std::size_t idx, KernelChecker* chk)
        : base_(base), idx_(idx), chk_(chk) {}
    T* base_;
    std::size_t idx_;
    KernelChecker* chk_;
  };

  std::size_t size() const { return size_; }

  Ref operator[](std::size_t i) const {
    SIMCOV_ASSERT(i < size_, "shared memory access out of bounds");
    return Ref(data_, i, chk_);
  }

 private:
  friend class BlockCtx;
  SharedSpan(T* data, std::size_t size, KernelChecker* chk)
      : data_(data), size_(size), chk_(chk) {}

  T* data_;
  std::size_t size_;
  KernelChecker* chk_;
};

/// Context of one thread in a data-parallel kernel.
class ThreadCtx {
 public:
  std::uint32_t block_idx() const { return block_idx_; }
  std::uint32_t thread_idx() const { return thread_idx_; }
  std::uint32_t block_dim() const { return block_dim_; }
  std::uint32_t grid_dim() const { return grid_dim_; }

  /// blockIdx.x * blockDim.x + threadIdx.x
  std::uint64_t global_index() const {
    return static_cast<std::uint64_t>(block_idx_) * block_dim_ + thread_idx_;
  }
  /// Total threads in the launch (for grid-stride loops).
  std::uint64_t grid_size() const {
    return static_cast<std::uint64_t>(grid_dim_) * block_dim_;
  }

  /// Binds a device buffer for kernel-side access.
  template <typename T>
  GlobalSpan<T> global(DeviceBuffer<T>& buf) const;

 private:
  friend class Device;
  ThreadCtx(Device& d, const LaunchConfig& cfg, std::uint32_t b,
            std::uint32_t t);

  Device* device_;
  std::uint32_t block_idx_, thread_idx_, block_dim_, grid_dim_;
};

/// Context of one block in a cooperative kernel.
class BlockCtx {
 public:
  std::uint32_t block_idx() const { return block_idx_; }
  std::uint32_t block_dim() const { return block_dim_; }
  std::uint32_t grid_dim() const { return grid_dim_; }

  /// Allocates a zero-initialized shared array for this block (the
  /// __shared__ declaration).  Counted toward shared_bytes_allocated.
  template <typename T>
  SharedSpan<T> shared(std::size_t count);

  /// Runs `fn(thread_idx)` for every thread of the block.  Consecutive
  /// calls are separated by an implicit __syncthreads: all effects of call
  /// N are visible to call N+1.  Entry and exit are both sync boundaries,
  /// so block-driver code between calls occupies its own phase.
  template <typename F>
  void for_each_thread(F&& fn) {
    sync_boundary();
    for (std::uint32_t k = 0; k < block_dim_; ++k) {
      std::uint32_t t = thread_at(k);
      note_thread(t);
      fn(t);
    }
    sync_boundary();
    bump_threads(block_dim_);
  }

  template <typename T>
  GlobalSpan<T> global(DeviceBuffer<T>& buf) const;

 private:
  friend class Device;
  BlockCtx(Device& d, const LaunchConfig& cfg, std::uint32_t b);
  void bump_threads(std::uint32_t n);
  void sync_boundary();               ///< implicit __syncthreads
  std::uint32_t thread_at(std::uint32_t k) const;  ///< schedule mapping
  void note_thread(std::uint32_t t);  ///< checker position update

  Device* device_;
  std::uint32_t block_idx_, block_dim_, grid_dim_;
  std::vector<std::unique_ptr<std::vector<std::byte>>> shared_allocs_;
};

}  // namespace simcov::gpusim
