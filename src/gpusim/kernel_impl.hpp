#pragma once
// Out-of-line definitions that need Device and DeviceBuffer complete.
// Include via gpusim/gpusim.hpp.

#include "gpusim/buffer.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernel.hpp"

namespace simcov::gpusim {

inline ThreadCtx::ThreadCtx(Device& d, const LaunchConfig& cfg,
                            std::uint32_t b, std::uint32_t t)
    : device_(&d), block_idx_(b), thread_idx_(t), block_dim_(cfg.block_dim),
      grid_dim_(cfg.grid_dim) {}

template <typename T>
GlobalSpan<T> ThreadCtx::global(DeviceBuffer<T>& buf) const {
  SIMCOV_REQUIRE(&buf.device() == device_,
                 "kernel bound a buffer from a different device");
  DeviceStats& s = device_->stats();
  return GlobalSpan<T>(buf.raw(), buf.size(), &s.global_read_bytes,
                       &s.global_write_bytes, &s.atomic_ops,
                       device_->checker());
}

inline BlockCtx::BlockCtx(Device& d, const LaunchConfig& cfg, std::uint32_t b)
    : device_(&d), block_idx_(b), block_dim_(cfg.block_dim),
      grid_dim_(cfg.grid_dim) {}

inline void BlockCtx::bump_threads(std::uint32_t n) {
  device_->stats().threads_executed += n;
}

inline void BlockCtx::sync_boundary() {
  if (KernelChecker* chk = device_->checker()) chk->enter_phase();
}

inline std::uint32_t BlockCtx::thread_at(std::uint32_t k) const {
  return device_->thread_order(k, block_dim_);
}

inline void BlockCtx::note_thread(std::uint32_t t) {
  if (KernelChecker* chk = device_->checker()) chk->at_block_thread(t);
}

template <typename T>
SharedSpan<T> BlockCtx::shared(std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>,
                "shared memory holds trivially copyable types only");
  const std::size_t bytes = count * sizeof(T);
  // 164 KiB: A100 maximum shared memory per block.
  std::size_t in_use = bytes;
  for (const auto& a : shared_allocs_) in_use += a->size();
  SIMCOV_REQUIRE(in_use <= 164 * 1024,
                 "shared memory request exceeds per-block capacity");
  shared_allocs_.push_back(
      std::make_unique<std::vector<std::byte>>(bytes, std::byte{0}));
  device_->stats().shared_bytes_allocated += bytes;
  return SharedSpan<T>(reinterpret_cast<T*>(shared_allocs_.back()->data()),
                       count, device_->checker());
}

template <typename T>
GlobalSpan<T> BlockCtx::global(DeviceBuffer<T>& buf) const {
  SIMCOV_REQUIRE(&buf.device() == device_,
                 "kernel bound a buffer from a different device");
  DeviceStats& s = device_->stats();
  return GlobalSpan<T>(buf.raw(), buf.size(), &s.global_read_bytes,
                       &s.global_write_bytes, &s.atomic_ops,
                       device_->checker());
}

}  // namespace simcov::gpusim
