#pragma once
// KernelCheck: opt-in race & determinism analyzer for the virtual GPU.
//
// The device substrate (device.hpp) executes CUDA-shaped kernels with a
// fixed sequential schedule: blocks in order, threads in order, phases
// separated by the implicit __syncthreads of BlockCtx::for_each_thread.
// That schedule is *one legal schedule* of a data-race-free kernel — but
// nothing stops a kernel from being schedule-dependent, in which case the
// substrate silently computes one of many possible answers and every
// result built on it (digests, figures, equivalence tests) is an accident
// of iteration order.  PR 1 made every race in the PGAS runtime a hard
// diagnostic; KernelCheck does the same for the kernel layer, so the hot
// kernels can be rewritten (SIMD, split-phase halos) on a floor that
// screams instead of corrupting.
//
// Two independent modes:
//
//   * access checking — per launch, shadow access sets keyed
//     (buffer, element) record who touched what, as (block, thread,
//     phase) triples.  Two accesses are *ordered* iff they are by the
//     same thread, or by the same block in different phases (the
//     implicit-__syncthreads contract); anything else is concurrent on a
//     real GPU.  Concurrent conflicts raise hard diagnostics:
//       - write-write race      two plain writes to one element
//       - read-write race       plain read concurrent with a plain write
//       - atomic-plain mix      an atomic and a plain access to one
//                               element (the plain side is not atomic on
//                               real hardware)
//     Shared-memory conflicts are the same rules scoped to the block and
//     reported as phase violations — a same-phase conflict means the
//     kernel relies on for_each_thread's sequential order standing in
//     for a missing __syncthreads.  Aliased views are caught for free:
//     shadow identity is the underlying storage, so two GlobalSpans over
//     one buffer land in the same access set.
//
//   * schedule permutation — each launch is executed three times: under
//     a reversed schedule, under a seeded-shuffled schedule, and finally
//     under the canonical schedule; device buffers and counters are
//     snapshotted/restored between runs so the canonical execution is
//     the one that survives (results and DeviceStats are bit-identical
//     whether or not permutation is on).  Any buffer whose final bytes
//     differ between schedules is schedule-dependent — this is what
//     catches order-dependent floating-point atomic_add reductions,
//     which the access checker rightly accepts (atomics don't race) but
//     which are not deterministic.  A reduction that is intentionally
//     order-tolerant can be annotated per launch with
//     DeviceBuffer::tolerate_schedule_variance(rationale); tolerated
//     differences are counted, not fatal.
//
// What KernelCheck proves / does not prove: a clean access check means no
// intra-launch data race was *executed* for these inputs (it is a dynamic
// analysis, like TSan — dead branches are not explored).  A clean
// permutation pass means the launch's result is invariant under the three
// exercised schedules, which in this substrate (sequential execution,
// no weak-memory effects) is strong evidence of full schedule
// independence for that input.  Neither proves anything about launches
// that were never run.
//
// Enablement mirrors the PGAS checker: DeviceOptions (device.hpp) or
// SIMCOV_KERNEL_CHECK=1 (access checking) / SIMCOV_KERNEL_CHECK=permute
// (access checking + permutation).  A raw Device throws simcov::Error at
// the end of the offending launch; the SPMD GPU backend constructs its
// devices with deferred reporting — a rank thread that threw mid-step
// would desert the team barrier and hang its peers — and run_gpu_sim()
// throws one aggregated Error after all ranks joined.  When disabled the
// hooks cost one null-pointer branch per access (gated ≤2% of step time
// by bench/obs_overhead).
//
// The checker is deliberately unsynchronized: one Device (and therefore
// one checker) belongs to one rank thread.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace simcov::gpusim {

/// What to check.  Aggregated into DeviceOptions (device.hpp).
struct KernelCheckOptions {
  bool check_access = false;      ///< shadow access-set race detection
  bool permute_schedules = false; ///< re-execute launches, diff bit-for-bit
  bool defer_report = false;      ///< record; the owner throws after join
  bool enabled() const { return check_access || permute_schedules; }
};

/// Parses SIMCOV_KERNEL_CHECK: unset/""/"0" = off, "permute" = access
/// checking + schedule permutation, anything else truthy = access checking.
KernelCheckOptions kernel_check_env();

/// Deterministic Fisher–Yates permutation of [0, n) keyed by `seed`
/// (splitmix64-driven; no global RNG state).
std::vector<std::uint64_t> seeded_permutation(std::uint64_t seed,
                                              std::uint64_t n);

class KernelChecker {
 public:
  enum class Access : std::uint8_t { kRead, kWrite, kAtomic };

  /// Snapshot of every registered buffer's bytes, sorted by base address.
  using Snapshot = std::vector<std::pair<const void*, std::vector<std::byte>>>;

  explicit KernelChecker(const KernelCheckOptions& opts);

  KernelChecker(const KernelChecker&) = delete;
  KernelChecker& operator=(const KernelChecker&) = delete;

  bool access_checking() const { return opts_.check_access; }
  bool permute_schedules() const { return opts_.permute_schedules; }
  bool defer_report() const { return opts_.defer_report; }

  // ---- buffer registry (DeviceBuffer lifecycle) --------------------------
  void register_buffer(void* data, std::size_t bytes, std::size_t elem_size,
                       const char* name);
  void unregister_buffer(const void* data);

  // ---- launch lifecycle (driven by Device) -------------------------------
  void begin_launch(const char* name, std::uint32_t grid_dim,
                    std::uint32_t block_dim);
  /// Ends the launch; throws simcov::Error naming every finding of this
  /// launch unless defer_report.  Always clears per-launch exemptions.
  void end_launch();
  std::uint64_t launch_seq() const { return launch_seq_; }

  // ---- execution position (driven by Device / BlockCtx) ------------------
  /// parallel_for: thread (b, t); no phases (phase stays 0).
  void at_thread(std::uint32_t block, std::uint32_t thread);
  /// launch_blocks: a new block starts; resets phases and shared shadows.
  void begin_block(std::uint32_t block);
  /// for_each_thread boundary — the implicit __syncthreads.  Called on
  /// entry and exit, so block-driver code between calls occupies its own
  /// phase and is ordered against every thread.
  void enter_phase();
  /// Current thread within the current cooperative block/phase.
  void at_block_thread(std::uint32_t thread);

  // ---- permutation support (driven by Device) ----------------------------
  /// Replays (non-canonical schedules) skip shadow updates: access sets
  /// describe the canonical execution only.
  void set_replay(bool on) { replay_ = on; }
  bool replaying() const { return replay_; }
  Snapshot snapshot_buffers() const;
  void restore_buffers(const Snapshot& snap) const;
  /// Compares a permuted run's final state against the canonical one and
  /// records a schedule-dependent-result violation per differing buffer
  /// (or counts it, for buffers tolerated this launch).
  void diff_against_canonical(const Snapshot& canonical,
                              const Snapshot& permuted,
                              const char* schedule_label);
  void note_launch_permuted() { ++launches_permuted_; }

  /// Exempts `data`'s buffer from the *next* end-of-launch bit-diff (the
  /// access checker still applies).  Cleared by end_launch().
  void tolerate_schedule_variance(const void* data, const char* rationale);

  // ---- access hooks (hot path; called by GlobalSpan / SharedSpan) --------
  void on_global_access(const void* buf, std::size_t elem, Access kind);
  void on_shared_access(const void* alloc, std::size_t elem, Access kind);

  // ---- results -----------------------------------------------------------
  bool clean() const { return total_violations_ == 0; }
  std::uint64_t violation_count() const { return total_violations_; }
  /// Multi-line human-readable report ("" when clean).
  std::string report() const;
  std::uint64_t accesses_checked() const { return accesses_checked_; }
  std::uint64_t launches_checked() const { return launches_checked_; }
  std::uint64_t launches_permuted() const { return launches_permuted_; }
  std::uint64_t tolerated_diffs() const { return tolerated_diffs_; }

 private:
  /// One access's position in the schedule.
  struct Who {
    std::uint32_t block = 0;
    std::uint32_t thread = 0;
    std::uint32_t phase = 0;
  };

  /// Per-element shadow state.  Representatives, not full sets: the
  /// latest plain writer, the latest atomic, and the latest two readers
  /// with distinct (block, thread).  Under the canonical ascending
  /// schedule this catches every first conflict: of any two same-phase
  /// readers at most one can share the writer's thread, and accesses from
  /// earlier phases are ordered anyway.
  struct Cell {
    std::uint64_t epoch = 0;  ///< launch_seq_ stamp; stale cells are reset
    Who writer, atomic, readers[2];
    std::uint8_t has_writer = 0, has_atomic = 0, num_readers = 0;
  };

  struct BufferInfo {
    void* data = nullptr;
    std::size_t bytes = 0;
    std::size_t elem_size = 1;
    const char* name = nullptr;
  };

  static bool ordered(const Who& earlier, const Who& later);
  void check_cell(std::vector<Cell>& shadow, std::size_t elem, Access kind,
                  const void* buf, bool shared);
  void record_violation(const std::string& rule, const std::string& detail);
  std::string buffer_label(const void* buf, bool shared) const;
  std::string launch_label() const;
  std::vector<Cell>& shadow_for(const void* buf, bool shared);

  KernelCheckOptions opts_;
  std::unordered_map<const void*, BufferInfo> registry_;
  std::unordered_map<const void*, std::vector<Cell>> global_shadow_;
  std::unordered_map<const void*, std::vector<Cell>> shared_shadow_;
  // One-entry lookup cache: kernel bodies hammer the same few buffers.
  const void* cached_key_ = nullptr;
  std::vector<Cell>* cached_shadow_ = nullptr;
  bool cached_shared_ = false;

  struct Exemption {
    const void* data;
    const char* rationale;
  };
  std::vector<Exemption> exemptions_;  ///< next-launch scope

  // Current launch + position.
  const char* kernel_name_ = nullptr;
  std::uint32_t grid_dim_ = 0, block_dim_ = 0;
  std::uint64_t launch_seq_ = 0;
  Who pos_;
  bool replay_ = false;

  // Findings (deduplicated messages, capped; totals exact).
  std::vector<std::string> violations_;
  std::size_t launch_first_violation_ = 0;  ///< index at begin_launch
  std::uint64_t total_violations_ = 0;

  // Counters for obs metrics / the overhead gate.
  std::uint64_t accesses_checked_ = 0;
  std::uint64_t launches_checked_ = 0;
  std::uint64_t launches_permuted_ = 0;
  std::uint64_t tolerated_diffs_ = 0;

  static constexpr std::size_t kMaxRecordedViolations = 64;
  static constexpr std::uint32_t kBlockDriver = 0xFFFFFFFFu;
};

}  // namespace simcov::gpusim
