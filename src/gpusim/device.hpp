#pragma once
// A virtual GPU device.
//
// SIMCoV-GPU's optimizations (§3) are statements about *access patterns*:
// how many kernel launches a timestep needs, how much global memory traffic
// the kernels generate, how many atomic operations the statistics update
// performs, and how much of the domain the kernels touch at all.  This
// substrate executes CUDA-shaped kernels (grid of blocks of threads, per-
// block shared memory with synchronization phases, global-memory views with
// atomics) semantically faithfully on the host, while counting exactly the
// events the paper's optimizations target.  The performance model
// (src/perfmodel) prices those counters as an A100-class device would.
//
// Discipline enforced at runtime (tests in tests/gpusim_test.cpp):
//   * Host code cannot touch device memory except through explicit
//     copy_to_host / copy_from_host, and only while no kernel is active.
//   * Kernels access buffers only through GlobalSpan views obtained from
//     their thread/block context, and only buffers of the same device.
//   * Shared memory exists per block, is zero-initialized at block start,
//     and phases separated by sync() see each other's writes (the
//     __syncthreads model; threads within a phase run sequentially, which
//     is a legal schedule of a data-race-free CUDA block).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace simcov::gpusim {

/// Event counters, flushed continuously.  Units are bytes for traffic
/// counters and operation counts otherwise.
struct DeviceStats {
  std::uint64_t kernel_launches = 0;
  std::uint64_t blocks_executed = 0;
  std::uint64_t threads_executed = 0;
  std::uint64_t global_read_bytes = 0;
  std::uint64_t global_write_bytes = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t shared_bytes_allocated = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;

  DeviceStats& operator+=(const DeviceStats& o) {
    kernel_launches += o.kernel_launches;
    blocks_executed += o.blocks_executed;
    threads_executed += o.threads_executed;
    global_read_bytes += o.global_read_bytes;
    global_write_bytes += o.global_write_bytes;
    atomic_ops += o.atomic_ops;
    shared_bytes_allocated += o.shared_bytes_allocated;
    h2d_bytes += o.h2d_bytes;
    d2h_bytes += o.d2h_bytes;
    return *this;
  }

  DeviceStats since(const DeviceStats& snap) const {
    DeviceStats d;
    d.kernel_launches = kernel_launches - snap.kernel_launches;
    d.blocks_executed = blocks_executed - snap.blocks_executed;
    d.threads_executed = threads_executed - snap.threads_executed;
    d.global_read_bytes = global_read_bytes - snap.global_read_bytes;
    d.global_write_bytes = global_write_bytes - snap.global_write_bytes;
    d.atomic_ops = atomic_ops - snap.atomic_ops;
    d.shared_bytes_allocated = shared_bytes_allocated - snap.shared_bytes_allocated;
    d.h2d_bytes = h2d_bytes - snap.h2d_bytes;
    d.d2h_bytes = d2h_bytes - snap.d2h_bytes;
    return d;
  }
};

struct LaunchConfig {
  std::uint32_t grid_dim = 1;   ///< number of blocks
  std::uint32_t block_dim = 1;  ///< threads per block

  std::uint64_t total_threads() const {
    return static_cast<std::uint64_t>(grid_dim) * block_dim;
  }
};

template <typename T>
class DeviceBuffer;
class ThreadCtx;
class BlockCtx;

/// One virtual GPU.  Each PGAS rank owns one Device in SIMCoV-GPU (the
/// paper runs one process per GPU).
class Device {
 public:
  explicit Device(int id) : id_(id) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const { return id_; }
  bool kernel_active() const { return kernel_depth_ > 0; }
  std::size_t allocated_bytes() const { return allocated_bytes_; }

  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }

  /// Launches a data-parallel kernel: `body(ThreadCtx&)` runs once per
  /// thread.  Threads must be independent (no shared memory); use
  /// launch_blocks for cooperative kernels.
  template <typename F>
  void parallel_for(const LaunchConfig& cfg, F&& body);

  /// Launches a cooperative kernel: `body(BlockCtx&)` runs once per block
  /// and drives its threads in phases (see BlockCtx::for_each_thread).
  template <typename F>
  void launch_blocks(const LaunchConfig& cfg, F&& body);

 private:
  template <typename T>
  friend class DeviceBuffer;
  friend class ThreadCtx;
  friend class BlockCtx;

  void begin_kernel(const LaunchConfig& cfg) {
    SIMCOV_REQUIRE(cfg.grid_dim > 0 && cfg.block_dim > 0,
                   "launch config must have positive dimensions");
    SIMCOV_REQUIRE(cfg.block_dim <= 1024,
                   "block_dim exceeds 1024 (CUDA hardware limit)");
    SIMCOV_REQUIRE(kernel_depth_ == 0,
                   "nested kernel launch (device busy)");
    ++kernel_depth_;
    ++stats_.kernel_launches;
  }
  void end_kernel() { --kernel_depth_; }

  int id_;
  int kernel_depth_ = 0;
  std::size_t allocated_bytes_ = 0;
  DeviceStats stats_;
};

}  // namespace simcov::gpusim

#include "gpusim/kernel.hpp"  // IWYU pragma: keep — defines launch bodies

namespace simcov::gpusim {

template <typename F>
void Device::parallel_for(const LaunchConfig& cfg, F&& body) {
  begin_kernel(cfg);
  struct Guard {
    Device* d;
    ~Guard() { d->end_kernel(); }
  } guard{this};
  for (std::uint32_t b = 0; b < cfg.grid_dim; ++b) {
    ++stats_.blocks_executed;
    for (std::uint32_t t = 0; t < cfg.block_dim; ++t) {
      ++stats_.threads_executed;
      ThreadCtx ctx(*this, cfg, b, t);
      body(ctx);
    }
  }
}

template <typename F>
void Device::launch_blocks(const LaunchConfig& cfg, F&& body) {
  begin_kernel(cfg);
  struct Guard {
    Device* d;
    ~Guard() { d->end_kernel(); }
  } guard{this};
  for (std::uint32_t b = 0; b < cfg.grid_dim; ++b) {
    ++stats_.blocks_executed;
    BlockCtx ctx(*this, cfg, b);
    body(ctx);
  }
}

}  // namespace simcov::gpusim
