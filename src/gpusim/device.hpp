#pragma once
// A virtual GPU device.
//
// SIMCoV-GPU's optimizations (§3) are statements about *access patterns*:
// how many kernel launches a timestep needs, how much global memory traffic
// the kernels generate, how many atomic operations the statistics update
// performs, and how much of the domain the kernels touch at all.  This
// substrate executes CUDA-shaped kernels (grid of blocks of threads, per-
// block shared memory with synchronization phases, global-memory views with
// atomics) semantically faithfully on the host, while counting exactly the
// events the paper's optimizations target.  The performance model
// (src/perfmodel) prices those counters as an A100-class device would.
//
// Discipline enforced at runtime (tests in tests/gpusim_test.cpp):
//   * Host code cannot touch device memory except through explicit
//     copy_to_host / copy_from_host, and only while no kernel is active.
//   * Kernels access buffers only through GlobalSpan views obtained from
//     their thread/block context, and only buffers of the same device.
//   * Shared memory exists per block, is zero-initialized at block start,
//     and phases separated by sync() see each other's writes (the
//     __syncthreads model; threads within a phase run sequentially, which
//     is a legal schedule of a data-race-free CUDA block).
//   * Opt-in (DeviceOptions / SIMCOV_KERNEL_CHECK): KernelCheck
//     (gpusim/check.hpp) shadow-checks every access for intra-launch races
//     and can re-execute each launch under permuted thread schedules to
//     certify bit-for-bit determinism.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/check.hpp"
#include "util/error.hpp"

namespace simcov::gpusim {

/// Event counters, flushed continuously.  Units are bytes for traffic
/// counters and operation counts otherwise.
struct DeviceStats {
  std::uint64_t kernel_launches = 0;
  std::uint64_t blocks_executed = 0;
  std::uint64_t threads_executed = 0;
  std::uint64_t global_read_bytes = 0;
  std::uint64_t global_write_bytes = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t shared_bytes_allocated = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;

  DeviceStats& operator+=(const DeviceStats& o) {
    kernel_launches += o.kernel_launches;
    blocks_executed += o.blocks_executed;
    threads_executed += o.threads_executed;
    global_read_bytes += o.global_read_bytes;
    global_write_bytes += o.global_write_bytes;
    atomic_ops += o.atomic_ops;
    shared_bytes_allocated += o.shared_bytes_allocated;
    h2d_bytes += o.h2d_bytes;
    d2h_bytes += o.d2h_bytes;
    return *this;
  }

  DeviceStats since(const DeviceStats& snap) const {
    DeviceStats d;
    d.kernel_launches = kernel_launches - snap.kernel_launches;
    d.blocks_executed = blocks_executed - snap.blocks_executed;
    d.threads_executed = threads_executed - snap.threads_executed;
    d.global_read_bytes = global_read_bytes - snap.global_read_bytes;
    d.global_write_bytes = global_write_bytes - snap.global_write_bytes;
    d.atomic_ops = atomic_ops - snap.atomic_ops;
    d.shared_bytes_allocated = shared_bytes_allocated - snap.shared_bytes_allocated;
    d.h2d_bytes = h2d_bytes - snap.h2d_bytes;
    d.d2h_bytes = d2h_bytes - snap.d2h_bytes;
    return d;
  }
};

struct LaunchConfig {
  std::uint32_t grid_dim = 1;   ///< number of blocks
  std::uint32_t block_dim = 1;  ///< threads per block
  const char* name = nullptr;   ///< kernel name for diagnostics (optional)

  std::uint64_t total_threads() const {
    return static_cast<std::uint64_t>(grid_dim) * block_dim;
  }
};

/// Opt-in analyses; merged (OR) with the SIMCOV_KERNEL_CHECK environment
/// override, mirroring the PGAS checker's UX.
struct DeviceOptions {
  bool check_kernels = false;      ///< KernelCheck access checking
  bool permute_schedules = false;  ///< re-run launches under permuted orders
  /// Record findings instead of throwing at end of launch; the owner
  /// (run_gpu_sim) reports after all rank threads joined.  A rank thread
  /// throwing mid-step would desert the team barrier and hang its peers.
  bool defer_check_report = false;
};

template <typename T>
class DeviceBuffer;
class ThreadCtx;
class BlockCtx;

/// One virtual GPU.  Each PGAS rank owns one Device in SIMCoV-GPU (the
/// paper runs one process per GPU).
class Device {
 public:
  explicit Device(int id, DeviceOptions opts = {}) : id_(id) {
    KernelCheckOptions copts = kernel_check_env();
    copts.check_access = copts.check_access || opts.check_kernels;
    copts.permute_schedules =
        copts.permute_schedules || opts.permute_schedules;
    copts.defer_report = opts.defer_check_report;
    if (copts.enabled()) {
      checker_ = std::make_unique<KernelChecker>(copts);
    }
  }

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const { return id_; }
  bool kernel_active() const { return kernel_depth_ > 0; }
  std::size_t allocated_bytes() const { return allocated_bytes_; }

  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }

  /// The attached KernelChecker, or nullptr when checking is off.
  KernelChecker* checker() { return checker_.get(); }
  const KernelChecker* checker() const { return checker_.get(); }

  /// Launches a data-parallel kernel: `body(ThreadCtx&)` runs once per
  /// thread.  Threads must be independent (no shared memory); use
  /// launch_blocks for cooperative kernels.
  template <typename F>
  void parallel_for(const LaunchConfig& cfg, F&& body);

  /// Launches a cooperative kernel: `body(BlockCtx&)` runs once per block
  /// and drives its threads in phases (see BlockCtx::for_each_thread).
  template <typename F>
  void launch_blocks(const LaunchConfig& cfg, F&& body);

 private:
  template <typename T>
  friend class DeviceBuffer;
  friend class ThreadCtx;
  friend class BlockCtx;

  /// Thread/block iteration order for the current execution of a launch.
  /// Canonical (ascending) is the only order the substrate ever commits;
  /// reversed and seeded-shuffled exist for KernelCheck replays.
  enum class Order : std::uint8_t { kCanonical, kReversed, kShuffled };

  void begin_kernel(const LaunchConfig& cfg) {
    SIMCOV_REQUIRE(cfg.grid_dim > 0 && cfg.block_dim > 0,
                   "launch config must have positive dimensions");
    SIMCOV_REQUIRE(cfg.block_dim <= 1024,
                   "block_dim exceeds 1024 (CUDA hardware limit)");
    SIMCOV_REQUIRE(kernel_depth_ == 0,
                   "nested kernel launch (device busy)");
    ++kernel_depth_;
    ++stats_.kernel_launches;
  }
  void end_kernel() { --kernel_depth_; }

  /// Position k of the outer iteration (flat thread index for
  /// parallel_for, block index for launch_blocks) under the active order.
  std::uint64_t sched_flat(std::uint64_t k, std::uint64_t n) const {
    switch (order_) {
      case Order::kReversed: return n - 1 - k;
      case Order::kShuffled: return flat_perm_[k];
      case Order::kCanonical: break;
    }
    return k;
  }
  /// Thread index at position k of a cooperative block's for_each_thread.
  std::uint32_t thread_order(std::uint32_t k, std::uint32_t bd) const {
    switch (order_) {
      case Order::kReversed: return bd - 1 - k;
      case Order::kShuffled:
        return static_cast<std::uint32_t>(thread_perm_[k]);
      case Order::kCanonical: break;
    }
    return k;
  }
  void set_order(Order o, const LaunchConfig& cfg, bool cooperative) {
    order_ = o;
    flat_perm_.clear();
    thread_perm_.clear();
    if (o != Order::kShuffled) return;
    // Seeded by the launch sequence number: deterministic across runs,
    // different across launches.
    const std::uint64_t seed = checker_ ? checker_->launch_seq() : 1;
    if (cooperative) {
      flat_perm_ = seeded_permutation(seed * 2 + 1, cfg.grid_dim);
      thread_perm_ = seeded_permutation(seed * 2 + 2, cfg.block_dim);
    } else {
      flat_perm_ = seeded_permutation(seed * 2 + 1, cfg.total_threads());
    }
  }

  template <typename Exec>
  void run_launch(const LaunchConfig& cfg, bool cooperative, Exec&& exec);
  template <typename Exec>
  void run_with_permutations(const LaunchConfig& cfg, bool cooperative,
                             Exec&& exec);

  int id_;
  int kernel_depth_ = 0;
  std::size_t allocated_bytes_ = 0;
  DeviceStats stats_;
  std::unique_ptr<KernelChecker> checker_;
  Order order_ = Order::kCanonical;
  std::vector<std::uint64_t> flat_perm_;
  std::vector<std::uint64_t> thread_perm_;
};

}  // namespace simcov::gpusim

#include "gpusim/kernel.hpp"  // IWYU pragma: keep — defines launch bodies

namespace simcov::gpusim {

template <typename Exec>
void Device::run_launch(const LaunchConfig& cfg, bool cooperative,
                        Exec&& exec) {
  if (!checker_) {
    exec();
    return;
  }
  checker_->begin_launch(cfg.name, cfg.grid_dim, cfg.block_dim);
  if (checker_->permute_schedules()) {
    run_with_permutations(cfg, cooperative, exec);
  } else {
    exec();
  }
  // Reports (and, for a raw Device, throws) from a normal call site — a
  // throwing destructor would terminate.  If the body itself threw, this
  // is skipped and only the launch-depth guard unwinds.
  checker_->end_launch();
}

template <typename Exec>
void Device::run_with_permutations(const LaunchConfig& cfg, bool cooperative,
                                   Exec&& exec) {
  // Replays first, canonical last: the canonical execution is the one
  // whose memory effects and counters survive, so results are bit-
  // identical whether or not permutation is enabled.
  const KernelChecker::Snapshot pre = checker_->snapshot_buffers();
  const DeviceStats saved = stats_;
  KernelChecker::Snapshot posts[2];
  checker_->set_replay(true);
  const Order replays[2] = {Order::kReversed, Order::kShuffled};
  for (int p = 0; p < 2; ++p) {
    set_order(replays[p], cfg, cooperative);
    exec();
    posts[p] = checker_->snapshot_buffers();
    checker_->restore_buffers(pre);
    stats_ = saved;
  }
  checker_->set_replay(false);
  set_order(Order::kCanonical, cfg, cooperative);
  exec();
  const KernelChecker::Snapshot post = checker_->snapshot_buffers();
  checker_->diff_against_canonical(post, posts[0], "reversed");
  checker_->diff_against_canonical(post, posts[1], "seeded-shuffle");
  checker_->note_launch_permuted();
}

template <typename F>
void Device::parallel_for(const LaunchConfig& cfg, F&& body) {
  begin_kernel(cfg);
  struct Guard {
    Device* d;
    ~Guard() { d->end_kernel(); }
  } guard{this};
  auto exec = [&] {
    const std::uint64_t n = cfg.total_threads();
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t idx = sched_flat(k, n);
      const auto b = static_cast<std::uint32_t>(idx / cfg.block_dim);
      const auto t = static_cast<std::uint32_t>(idx % cfg.block_dim);
      if (t == 0) ++stats_.blocks_executed;
      ++stats_.threads_executed;
      if (checker_) checker_->at_thread(b, t);
      ThreadCtx ctx(*this, cfg, b, t);
      body(ctx);
    }
  };
  run_launch(cfg, /*cooperative=*/false, exec);
}

template <typename F>
void Device::launch_blocks(const LaunchConfig& cfg, F&& body) {
  begin_kernel(cfg);
  struct Guard {
    Device* d;
    ~Guard() { d->end_kernel(); }
  } guard{this};
  auto exec = [&] {
    for (std::uint32_t k = 0; k < cfg.grid_dim; ++k) {
      const auto b = static_cast<std::uint32_t>(sched_flat(k, cfg.grid_dim));
      ++stats_.blocks_executed;
      if (checker_) checker_->begin_block(b);
      BlockCtx ctx(*this, cfg, b);
      body(ctx);
    }
  };
  run_launch(cfg, /*cooperative=*/true, exec);
}

}  // namespace simcov::gpusim
