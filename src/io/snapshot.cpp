#include "io/snapshot.hpp"

#include <algorithm>
#include <fstream>

#include "core/grid.hpp"
#include "util/error.hpp"

namespace simcov::io {

namespace {

std::uint8_t scale(float value, float max_value) {
  const float t = std::clamp(value / max_value, 0.0f, 1.0f);
  return static_cast<std::uint8_t>(t * 255.0f);
}

}  // namespace

Image render_state(const ReferenceSim& sim, std::int32_t z_slice) {
  const Grid& grid = sim.grid();
  SIMCOV_REQUIRE(z_slice >= 0 && z_slice < grid.dim_z(),
                 "z slice out of range");
  Image img;
  img.width = grid.dim_x();
  img.height = grid.dim_y();
  img.rgb.assign(3u * static_cast<std::size_t>(img.width) * img.height, 0);
  for (std::int32_t y = 0; y < img.height; ++y) {
    for (std::int32_t x = 0; x < img.width; ++x) {
      const VoxelState v = sim.voxel(grid.to_id({x, y, z_slice}));
      std::uint8_t* px = img.pixel(x, y);
      switch (v.epi_state) {
        case EpiState::kEmpty:  // airway lumen
          px[0] = px[1] = px[2] = 0;
          break;
        case EpiState::kHealthy: {
          // Light tissue, tinted by virion load.
          const std::uint8_t vir = scale(v.virus, 0.5f);
          px[0] = 230;
          px[1] = static_cast<std::uint8_t>(230 - vir / 2);
          px[2] = static_cast<std::uint8_t>(230 - vir / 2);
          break;
        }
        case EpiState::kIncubating:
          px[0] = 120; px[1] = 120; px[2] = 220;
          break;
        case EpiState::kExpressing:  // blue (paper Fig. 1A)
          px[0] = 40; px[1] = 40; px[2] = 255;
          break;
        case EpiState::kApoptotic:  // red
          px[0] = 255; px[1] = 40; px[2] = 40;
          break;
        case EpiState::kDead:
          px[0] = px[1] = px[2] = 90;
          break;
      }
      if (v.tcell) {  // green overlay
        px[0] = 30; px[1] = 220; px[2] = 60;
      }
    }
  }
  return img;
}

void write_ppm(const std::string& path, const Image& image) {
  SIMCOV_REQUIRE(image.width > 0 && image.height > 0, "empty image");
  std::ofstream out(path, std::ios::binary);
  SIMCOV_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << "P6\n" << image.width << " " << image.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.rgb.data()),
            static_cast<std::streamsize>(image.rgb.size()));
  SIMCOV_REQUIRE(out.good(), "failed writing '" + path + "'");
}

void write_series_csv(const std::string& path, const TimeSeries& series) {
  std::ofstream out(path);
  SIMCOV_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << "step,virus,chem,empty,healthy,incubating,expressing,apoptotic,"
         "dead,tcells_tissue,tcells_vascular,extravasated\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const StepStats& s = series[i];
    out << i + 1 << ',' << s.virus_total << ',' << s.chem_total;
    for (int e = 0; e < kNumEpiStates; ++e) {
      out << ',' << s.epi_counts[static_cast<std::size_t>(e)];
    }
    out << ',' << s.tcells_tissue << ',' << s.tcells_vascular << ','
        << s.extravasated << '\n';
  }
  SIMCOV_REQUIRE(out.good(), "failed writing '" + path + "'");
}

void save_checkpoint(const std::string& path, const ReferenceSim& sim) {
  std::ofstream out(path, std::ios::binary);
  SIMCOV_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  sim.save(out);
}

ReferenceSim load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SIMCOV_REQUIRE(in.good(), "cannot open checkpoint '" + path + "'");
  return ReferenceSim::load(in);
}

}  // namespace simcov::io
