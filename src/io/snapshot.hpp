#pragma once
// Simulation output: PPM frame rendering (the paper's Fig. 1A-style view of
// spreading damage: epithelial states + T cells + fields), CSV time series,
// and checkpoint file helpers.

#include <cstdint>
#include <string>
#include <vector>

#include "core/reference_sim.hpp"
#include "core/stats.hpp"

namespace simcov::io {

/// A simple 8-bit RGB raster.
struct Image {
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::vector<std::uint8_t> rgb;  ///< 3 bytes per pixel, row-major

  std::uint8_t* pixel(std::int32_t x, std::int32_t y) {
    return rgb.data() + 3 * (static_cast<std::size_t>(y) * width + x);
  }
  const std::uint8_t* pixel(std::int32_t x, std::int32_t y) const {
    return rgb.data() + 3 * (static_cast<std::size_t>(y) * width + x);
  }
};

/// Renders the z = `z_slice` plane of the simulation: airway voxels black,
/// healthy tissue light, incubating/expressing blue, apoptotic red, dead
/// grey; T cells overlay green; virus level tints the background.
Image render_state(const ReferenceSim& sim, std::int32_t z_slice = 0);

/// Writes a binary PPM (P6).  Throws on I/O failure.
void write_ppm(const std::string& path, const Image& image);

/// Writes the time series as CSV with a header row.
void write_series_csv(const std::string& path, const TimeSeries& series);

/// Saves / loads a checkpoint file (see ReferenceSim::save/load).
void save_checkpoint(const std::string& path, const ReferenceSim& sim);
ReferenceSim load_checkpoint(const std::string& path);

}  // namespace simcov::io
