// simcov — command-line driver for the SIMCoV-GPU reproduction.
//
// Runs a full simulation on any engine, with config-file + command-line
// parameterization, optional airway structure and CT-lesion seeding, CSV /
// PPM / checkpoint output, and checkpoint resume (reference engine).
//
// Usage:
//   simcov [--config FILE] [--trace=FILE] [--metrics-out=FILE] [key=value ...]
//
// Observability flags (see src/obs and the README "Observability" section):
//   --trace=FILE        write a Chrome-trace-event JSON (Perfetto /
//                       chrome://tracing) with one track per PGAS rank and a
//                       span per simulation phase.  Equivalent to setting
//                       SIMCOV_TRACE=FILE in the environment.
//   --metrics-out=FILE  write the runtime metrics snapshot (JSON, or CSV when
//                       FILE ends in .csv): per-step halo bytes, barrier wait,
//                       active-tile occupancy, RPC histograms, ...  Equivalent
//                       to SIMCOV_METRICS=FILE.  Also prints the measured
//                       per-phase wall-clock breakdown to stderr.
//   --trace-ring=N      span ring-buffer capacity (default 262144).  When the
//                       ring saturates the oldest spans are overwritten and a
//                       warning is printed at export time.  Equivalent to
//                       SIMCOV_TRACE_RING=N.
// Both paths are validated before the run starts; an unwritable path is a
// hard error up front, not after the simulation has finished.
//
// Driver keys (everything else is a SimParams key, see core/params.hpp):
//   engine        reference | cpu | gpu          (default reference)
//   ranks         rank count for parallel engines (default 4)
//   variant       combined | tiling | fastred | unoptimized  (gpu only)
//   kernel_check  0 | 1 | permute               (gpu only) KernelCheck race
//                 analyzer; permute also re-runs every launch under permuted
//                 thread schedules (same as SIMCOV_KERNEL_CHECK)
//   foi_mode      random | lattice | ct          (default random)
//   lesions       CT lesion count                (foi_mode=ct)
//   lesion_radius mean CT lesion radius          (foi_mode=ct)
//   airways       true to overlay a bronchial tree of empty voxels
//   airway_generations  tree depth               (default 5)
//   series_csv    path for the per-step statistics CSV
//   frames        number of PPM frames (reference engine only)
//   frame_prefix  path prefix for frames         (default "simcov")
//   checkpoint    path to write a final checkpoint (reference engine only)
//   resume        path to a checkpoint to resume from (reference engine)
//   steps_after_resume  extra steps when resuming (default num_steps)

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "core/airways.hpp"
#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/params.hpp"
#include "core/reference_sim.hpp"
#include "harness/experiment.hpp"
#include "io/snapshot.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace simcov;

const char* const kDriverKeys[] = {
    "engine",      "ranks",         "variant",     "foi_mode",
    "lesions",     "lesion_radius", "airways",     "airway_generations",
    "series_csv",  "frames",        "frame_prefix", "checkpoint",
    "resume",      "steps_after_resume", "kernel_check"};

bool is_driver_key(const std::string& k) {
  for (const char* d : kDriverKeys) {
    if (k == d) return true;
  }
  return false;
}

gpu::GpuVariant parse_variant(const std::string& name) {
  if (name == "combined") return gpu::GpuVariant::combined();
  if (name == "tiling") return gpu::GpuVariant::memory_tiling_only();
  if (name == "fastred") return gpu::GpuVariant::fast_reduction_only();
  if (name == "unoptimized") return gpu::GpuVariant::unoptimized();
  throw Error("unknown variant '" + name +
              "' (combined|tiling|fastred|unoptimized)");
}

void print_summary(const TimeSeries& history) {
  if (history.empty()) return;
  const auto virus = series_virus(history);
  const auto tcells = series_tcells(history);
  const StepStats& last = history.back();
  TextTable t({"metric", "value"});
  t.add_row({"steps", std::to_string(history.size())});
  t.add_row({"peak virus", fmt(peak(virus), 1)});
  t.add_row({"final virus", fmt(last.virus_total, 1)});
  t.add_row({"peak tissue T cells", fmt(peak(tcells), 0)});
  t.add_row({"final dead epithelial cells", std::to_string(last.dead())});
  std::printf("%s", t.to_string().c_str());
}

int run(const Config& cfg) {
  // Split driver keys from simulation parameters.
  Config sim_cfg;
  for (const auto& k : cfg.keys()) {
    if (!is_driver_key(k)) sim_cfg.set(k, cfg.get_string(k));
  }

  const std::string engine = cfg.get_string("engine", "reference");

  // ---- resume path (reference engine only) -------------------------------
  if (cfg.has("resume")) {
    SIMCOV_REQUIRE(engine == "reference",
                   "checkpoint resume is supported by the reference engine");
    ReferenceSim sim = io::load_checkpoint(cfg.get_string("resume"));
    const long long extra = cfg.get_int("steps_after_resume",
                                        sim.params().num_steps);
    std::printf("resumed at step %llu; running %lld more steps\n",
                static_cast<unsigned long long>(sim.current_step()), extra);
    sim.run(extra);
    if (cfg.has("series_csv")) {
      io::write_series_csv(cfg.get_string("series_csv"), sim.history());
    }
    if (cfg.has("checkpoint")) {
      io::save_checkpoint(cfg.get_string("checkpoint"), sim);
    }
    print_summary(sim.history());
    return 0;
  }

  SimParams params = SimParams::covid_default();
  params.apply(sim_cfg);
  params.validate();
  const Grid grid(params.dim_x, params.dim_y, params.dim_z);

  // ---- structure & seeding -------------------------------------------------
  std::vector<VoxelId> empties;
  if (cfg.get_bool("airways", false)) {
    AirwayParams ap;
    ap.generations = static_cast<int>(cfg.get_int("airway_generations", 5));
    ap.seed = params.seed;
    empties = airway_voxels(grid, ap);
    std::printf("airway structure: %zu empty voxels\n", empties.size());
  }

  std::vector<VoxelId> foi;
  const std::string foi_mode = cfg.get_string("foi_mode", "random");
  if (foi_mode == "random") {
    foi = foi_uniform_random(grid, params.num_foi, params.seed);
  } else if (foi_mode == "lattice") {
    foi = foi_lattice(grid, params.num_foi);
  } else if (foi_mode == "ct") {
    foi = foi_ct_lesions(grid, cfg.get_int("lesions", 12),
                         cfg.get_double("lesion_radius", 4.0), params.seed);
  } else {
    throw Error("unknown foi_mode '" + foi_mode + "' (random|lattice|ct)");
  }
  // Never seed inside an airway lumen.
  if (!empties.empty()) {
    std::vector<VoxelId> filtered;
    for (VoxelId v : foi) {
      if (!std::binary_search(empties.begin(), empties.end(), v)) {
        filtered.push_back(v);
      }
    }
    foi.swap(filtered);
  }
  std::printf("engine=%s  %s  (%zu FOI voxels)\n", engine.c_str(),
              params.summary().c_str(), foi.size());

  // ---- run ---------------------------------------------------------------------
  if (engine == "reference") {
    ReferenceSim sim(params, foi, empties);
    const long long frames = cfg.get_int("frames", 0);
    const std::string prefix = cfg.get_string("frame_prefix", "simcov");
    const long long frame_every =
        frames > 0 ? std::max<long long>(1, params.num_steps / frames) : 0;
    int frame_no = 0;
    for (long long s = 0; s < params.num_steps; ++s) {
      sim.step();
      if (frames > 0 && (s + 1) % frame_every == 0 && frame_no < frames) {
        io::write_ppm(prefix + "_frame" + std::to_string(frame_no++) + ".ppm",
                      io::render_state(sim));
      }
    }
    if (cfg.has("series_csv")) {
      io::write_series_csv(cfg.get_string("series_csv"), sim.history());
    }
    if (cfg.has("checkpoint")) {
      io::save_checkpoint(cfg.get_string("checkpoint"), sim);
      std::printf("checkpoint written to %s\n",
                  cfg.get_string("checkpoint").c_str());
    }
    print_summary(sim.history());
    return 0;
  }

  harness::RunSpec spec;
  spec.params = params;
  spec.foi = foi;
  const int ranks = static_cast<int>(cfg.get_int("ranks", 4));
  harness::BackendResult result;
  if (engine == "cpu") {
    cpu::CpuSimOptions opt;
    opt.num_ranks = ranks;
    const auto r = cpu::run_cpu_sim(params, foi, opt, empties);
    result.history = r.history;
    result.cost = r.cost;
    result.modeled_seconds = r.cost.total_s;
  } else if (engine == "gpu") {
    gpu::GpuSimOptions opt;
    opt.num_ranks = ranks;
    opt.variant = parse_variant(cfg.get_string("variant", "combined"));
    const std::string kc = cfg.get_string("kernel_check", "0");
    SIMCOV_REQUIRE(kc == "0" || kc == "1" || kc == "permute",
                   "kernel_check must be 0, 1 or permute");
    opt.check_kernels = kc != "0";
    opt.permute_schedules = kc == "permute";
    const auto r = gpu::run_gpu_sim(params, foi, opt, empties);
    result.history = r.history;
    result.cost = r.cost;
    result.modeled_seconds = r.cost.total_s;
  } else {
    throw Error("unknown engine '" + engine + "' (reference|cpu|gpu)");
  }
  if (cfg.has("series_csv")) {
    io::write_series_csv(cfg.get_string("series_csv"), result.history);
  }
  print_summary(result.history);
  std::printf("modeled runtime: %.3f s (update %.3f, reduce %.3f)\n",
              result.modeled_seconds, result.cost.update_agents_s(),
              result.cost.reduce_stats_s());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Observability flags come out of argv first: they are process-level
    // (not simulation parameters) and must be validated before anything
    // expensive runs.
    std::string trace_path, metrics_path;
    std::size_t trace_ring = 0;
    std::vector<char*> rest;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--trace=", 0) == 0) {
        trace_path = a.substr(8);
      } else if (a.rfind("--trace-ring=", 0) == 0) {
        const std::string v = a.substr(13);
        char* end = nullptr;
        const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
        SIMCOV_REQUIRE(end != nullptr && *end == '\0' && n > 0,
                       "--trace-ring needs a positive integer, got '" + v +
                           "'");
        trace_ring = static_cast<std::size_t>(n);
      } else if (a.rfind("--metrics-out=", 0) == 0) {
        metrics_path = a.substr(14);
      } else {
        rest.push_back(argv[i]);
      }
    }
    harness::configure_observability(trace_path, metrics_path, trace_ring);

    Config cfg;
    std::size_t first_kv = 0;
    if (rest.size() >= 2 && std::string(rest[0]) == "--config") {
      cfg = Config::from_file(rest[1]);
      first_kv = 2;
    }
    cfg.merge(Config::from_args(static_cast<int>(rest.size() - first_kv),
                                rest.data() + first_kv));
    const int rc = run(cfg);
    harness::finish_observability();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
