#include "perfmodel/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace simcov::perfmodel {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kTCells: return "t_cells";
    case Phase::kEpithelial: return "epithelial";
    case Phase::kConcentrations: return "concentrations";
    case Phase::kHalo: return "halo";
    case Phase::kTileSweep: return "tile_sweep";
    case Phase::kReduceStats: return "reduce_stats";
    case Phase::kPhaseCount: break;
  }
  return "?";
}

CostModel::CostModel(const MachineSpec& spec, Backend backend, int world_size,
                     double area_scale)
    : spec_(spec), backend_(backend), area_scale_(area_scale),
      boundary_scale_(std::sqrt(area_scale)) {
  SIMCOV_REQUIRE(world_size >= 1, "world size must be positive");
  SIMCOV_REQUIRE(area_scale >= 1.0, "area_scale must be >= 1");
  log2_world_ = std::log2(static_cast<double>(world_size) + 1.0);
}

double CostModel::price(const WorkSample& s) const {
  // Per-voxel / per-agent events extrapolate with the area; halo strips
  // with the boundary (sqrt of area); latencies and launches do not scale.
  const double A = area_scale_;
  const double B = boundary_scale_;
  double t = 0.0;
  if (backend_ == Backend::kGpu) {
    const GpuSpec& g = spec_.gpu;
    const auto& d = s.dev;
    t += static_cast<double>(d.kernel_launches) * g.kernel_launch_s;
    t += static_cast<double>(d.threads_executed) * g.thread_s * A;
    t += static_cast<double>(d.global_read_bytes + d.global_write_bytes) *
         g.global_byte_s * A * s.mem_penalty;
    t += static_cast<double>(d.atomic_ops) * g.atomic_s * A * s.mem_penalty;
    t += static_cast<double>(d.h2d_bytes + d.d2h_bytes) * g.pcie_byte_s * B;
    t += static_cast<double>(s.comm.puts) * g.link_latency_s;
    t += static_cast<double>(s.comm.put_bytes) * g.link_byte_s * B;
    t += static_cast<double>(s.comm.reductions) * g.allreduce_latency_s *
         log2_world_;
    // Broadcasts: tree-structured like the reductions (log2(P) latency),
    // payload moving over the same links as halo puts.
    t += static_cast<double>(s.comm.broadcasts) * g.allreduce_latency_s *
         log2_world_;
    t += static_cast<double>(s.comm.broadcast_bytes) * g.link_byte_s * B;
  } else {
    const CpuSpec& c = spec_.cpu;
    t += static_cast<double>(s.cpu_voxel_updates) * c.voxel_update_s * A;
    t += static_cast<double>(s.cpu_list_ops) * c.list_op_s * A;
    t += static_cast<double>(s.comm.rpcs_sent) * c.rpc_s * B;
    t += static_cast<double>(s.comm.rpc_bytes) * c.rpc_byte_s * B;
    t += static_cast<double>(s.comm.puts) * c.copy_latency_s;
    t += static_cast<double>(s.comm.put_bytes) * c.copy_byte_s * B;
    t += static_cast<double>(s.comm.barriers) * c.barrier_base_s * log2_world_;
    t += static_cast<double>(s.comm.reductions) * c.allreduce_base_s *
         log2_world_;
    t += static_cast<double>(s.comm.broadcasts) * c.allreduce_base_s *
         log2_world_;
    t += static_cast<double>(s.comm.broadcast_bytes) * c.copy_byte_s * B;
  }
  return t;
}

void RankCostLog::add(Phase phase, const WorkSample& sample) {
  const int p = static_cast<int>(phase);
  SIMCOV_REQUIRE(p >= 0 && p < kNumPhases, "bad phase");
  current_[static_cast<std::size_t>(p)] += model_->price(sample);
  dirty_ = true;
}

void RankCostLog::end_step() {
  steps_.push_back(current_);
  current_.fill(0.0);
  dirty_ = false;
}

double RankCostLog::cost(std::size_t step, Phase phase) const {
  SIMCOV_REQUIRE(step < steps_.size(), "step out of range");
  return steps_[step][static_cast<std::size_t>(static_cast<int>(phase))];
}

double RunCost::update_agents_s() const {
  double t = 0.0;
  for (int p = 0; p < kNumPhases; ++p) {
    if (is_update_phase(static_cast<Phase>(p)))
      t += by_phase[static_cast<std::size_t>(p)];
  }
  return t;
}

double RunCost::reduce_stats_s() const {
  return by_phase[static_cast<std::size_t>(
      static_cast<int>(Phase::kReduceStats))];
}

namespace {

template <typename GetLog>
RunCost fold_impl(std::size_t n, GetLog&& get) {
  SIMCOV_REQUIRE(n > 0, "fold needs at least one rank log");
  const std::size_t steps = get(0).num_steps();
  for (std::size_t r = 1; r < n; ++r) {
    SIMCOV_REQUIRE(get(r).num_steps() == steps,
                   "rank logs have differing step counts");
  }
  RunCost out;
  for (std::size_t s = 0; s < steps; ++s) {
    for (int p = 0; p < kNumPhases; ++p) {
      double mx = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        mx = std::max(mx, get(r).cost(s, static_cast<Phase>(p)));
      }
      out.by_phase[static_cast<std::size_t>(p)] += mx;
      out.total_s += mx;
    }
  }
  return out;
}

}  // namespace

RunCost fold(std::span<const RankCostLog> logs) {
  return fold_impl(logs.size(),
                   [&](std::size_t r) -> const RankCostLog& { return logs[r]; });
}

RunCost fold(std::span<const RankCostLog* const> logs) {
  return fold_impl(logs.size(), [&](std::size_t r) -> const RankCostLog& {
    return *logs[r];
  });
}

}  // namespace simcov::perfmodel
