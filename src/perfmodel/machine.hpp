#pragma once
// Machine specifications for the performance model.
//
// The paper's evaluation ran on NERSC Perlmutter (GPU nodes: 4× A100 +
// Slingshot-11; CPU nodes: 2× 64-core EPYC Milan) and ASU Sol/Agave.  We do
// not have that hardware; instead the functional simulation counts every
// performance-relevant event (voxel updates, global-memory bytes, atomics,
// kernel launches, RPCs, halo bytes, collectives) and these specs convert
// the counts into *modeled seconds*.  Constants are grounded in public
// hardware characteristics and then calibrated (see CALIBRATION notes
// below) so the base-case GPU:CPU ratio matches the paper's measured ~5x at
// a 1:32 GPU:core ratio; all *shapes* (scaling curves, crossovers,
// saturation) then emerge from the measured counts, not from tuning.

namespace simcov::perfmodel {

/// A100-class GPU with UPC++-over-Slingshot device-to-device links.
struct GpuSpec {
  // Kernel launch overhead (CUDA launch + UPC++ progress): ~6 us measured
  // values for small kernels on A100 are 3-10 us.
  double kernel_launch_s = 4e-5;
  // Per-thread execution quantum for one voxel-ish unit of ALU work.  A100
  // sustains O(10^10) fused voxel updates/s when compute-bound; memory
  // traffic is priced separately below.
  double thread_s = 5e-12;
  // Global-memory byte cost: 1 / (effective HBM2e bandwidth ~1.3 TB/s).
  double global_byte_s = 1.6e-12;
  // Serialized global atomic (contended atomicAdd): tens of ns each.  This
  // is the constant the §3.3 fast reduction removes from the critical path.
  // CALIBRATION: set so the unoptimized variant's reduce phase dominates
  // its runtime as in Fig. 4.
  double atomic_s = 3e-9;
  // Host<->device staging (PCIe 4.0 ~25 GB/s) used around halo packing.
  double pcie_byte_s = 4e-11;
  // Device-to-device put over NVLink/Slingshot via UPC++: per-message
  // latency and per-byte cost (~25 GB/s effective).
  double link_latency_s = 4e-5;
  double link_byte_s = 4e-11;
  // Cross-rank collective (UPC++ reduction over GPU ranks).
  double allreduce_latency_s = 2e-5;
};

/// One EPYC Milan-class CPU core running one SIMCoV-CPU process (the
/// original runs one UPC++ process per core).
struct CpuSpec {
  // Per active-voxel update (agent FSM + diffusion + list bookkeeping
  // amortized).  SIMCoV-CPU sustains O(10^7) active-voxel updates/s/core:
  // the active list is pointer-chasing and hash-heavy.
  double voxel_update_s = 2.5e-8;
  // Per active-list maintenance operation (insert/erase/dedup).
  double list_op_s = 8e-9;
  // Per RPC: UPC++ rput/rpc injection + remote handler execution.
  double rpc_s = 1.5e-6;
  double rpc_byte_s = 1e-9;  // ~1 GB/s effective small-message stream
  // Bulk byte copies (concentration halo exchange between processes).
  double copy_byte_s = 2.5e-10;  // ~4 GB/s effective per process pair
  double copy_latency_s = 2e-6;
  // Barrier / allreduce latency *per participation*; grows with log2(P)
  // and is applied per rank sample (see CostModel).
  double barrier_base_s = 2e-6;
  double allreduce_base_s = 4e-6;
};

struct MachineSpec {
  GpuSpec gpu;
  CpuSpec cpu;
  /// GPU:CPU-core resource ratio used in the paper's tuples {G, 32G}.
  int cores_per_gpu = 32;

  /// Perlmutter-like defaults (the values above).
  static MachineSpec perlmutter_like() { return {}; }
};

}  // namespace simcov::perfmodel
