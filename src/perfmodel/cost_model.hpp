#pragma once
// Pricing counted events into modeled seconds, and folding per-rank costs
// into a bulk-synchronous run time.
//
// Both simulation backends are bulk-synchronous: a timestep is a sequence
// of phases, each ending at a device sync and/or PGAS barrier.  The modeled
// wall time of a run is therefore
//
//     sum over steps  sum over phases  max over ranks  price(sample)
//
// The inner max is what exposes load imbalance: a rank whose sub-domain
// contains all the infection pays for it while idle ranks wait — the effect
// that makes FOI count (Fig. 8) a performance variable at all.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "pgas/comm_stats.hpp"
#include "perfmodel/machine.hpp"

namespace simcov::perfmodel {

/// Phases of one simulation timestep.  Fig. 4 groups these into two
/// categories: everything except kReduceStats is "Update Agents".
enum class Phase : int {
  kTCells = 0,      ///< T cell move/bind kernels or active-list pass
  kEpithelial,      ///< epithelial FSM updates
  kConcentrations,  ///< virus + inflammatory-signal diffusion
  kHalo,            ///< boundary exchange (GPU) / RPC tiebreaks (CPU)
  kTileSweep,       ///< active-tile check kernel (GPU w/ tiling only)
  kReduceStats,     ///< per-step statistics reduction
  kPhaseCount
};

constexpr int kNumPhases = static_cast<int>(Phase::kPhaseCount);

const char* phase_name(Phase p);

/// True for phases the paper's Fig. 4 counts as "Update Agents".
constexpr bool is_update_phase(Phase p) { return p != Phase::kReduceStats; }

/// Counter deltas for one (rank, step, phase).
struct WorkSample {
  gpusim::DeviceStats dev;    ///< zeroes for the CPU backend
  pgas::CommStats comm;
  std::uint64_t cpu_voxel_updates = 0;  ///< CPU backend functional work
  std::uint64_t cpu_list_ops = 0;       ///< CPU active-list maintenance
  /// Global-memory efficiency penalty (>= 1): the GPU backend sets this
  /// above 1 when the memory-tiling layout optimization is disabled,
  /// modelling the poorer locality of the untiled layout (§3.2/§3.4).
  double mem_penalty = 1.0;
};

enum class Backend { kCpu, kGpu };

/// Converts WorkSamples to seconds under a MachineSpec.
///
/// `area_scale`: the evaluation's functional runs use grids scaled down
/// from the paper's (e.g. 512^2 instead of 10,000^2).  Per-voxel and
/// per-agent event counts are extrapolated linearly by this factor, and
/// boundary-proportional traffic (halo bytes) by its square root, so the
/// modeled seconds correspond to a paper-scale run while load imbalance and
/// active fractions come from the real (scaled) simulation.  1.0 = no
/// extrapolation.
class CostModel {
 public:
  CostModel(const MachineSpec& spec, Backend backend, int world_size,
            double area_scale = 1.0);

  double price(const WorkSample& s) const;
  Backend backend() const { return backend_; }

 private:
  MachineSpec spec_;
  Backend backend_;
  double log2_world_;  ///< log2(P), for barrier/collective scaling
  double area_scale_;
  double boundary_scale_;  ///< sqrt(area_scale)
};

/// Per-rank accumulation of priced phase costs, step by step.
/// Memory: steps * kNumPhases doubles per rank.
class RankCostLog {
 public:
  explicit RankCostLog(const CostModel& model) : model_(&model) {}

  /// Records the sample for `phase` of the current step (at most one sample
  /// per phase per step; phases may be skipped).
  void add(Phase phase, const WorkSample& sample);

  /// Closes the current step.
  void end_step();

  std::size_t num_steps() const { return steps_.size(); }
  /// Priced seconds for (step, phase).
  double cost(std::size_t step, Phase phase) const;

 private:
  const CostModel* model_;
  std::array<double, kNumPhases> current_{};
  bool dirty_ = false;
  std::vector<std::array<double, kNumPhases>> steps_;
};

/// Modeled run cost after the bulk-synchronous fold over ranks.
struct RunCost {
  double total_s = 0.0;
  std::array<double, kNumPhases> by_phase{};  ///< max-folded, summed over steps

  double update_agents_s() const;   ///< Fig. 4 "Update Agents" category
  double reduce_stats_s() const;    ///< Fig. 4 "Reduce Statistics" category
};

/// Folds per-rank logs: for every (step, phase), takes the max across ranks
/// (ranks wait at the phase-ending barrier), then sums.
/// All logs must have the same step count.
RunCost fold(std::span<const RankCostLog> logs);
RunCost fold(std::span<const RankCostLog* const> logs);

}  // namespace simcov::perfmodel
