#pragma once
// Machine-readable benchmark reports: BENCH_<name>.json.
//
// Every bench binary historically printed a human table and exited — the
// numbers evaporated, so no PR could prove it made a hot path faster (or be
// caught making one slower).  BenchReport is the single source of truth the
// tables and the JSON now both come from: per configuration it records the
// *measured* wall seconds and per-phase breakdown (from the PhaseClock
// counters in obs::Metrics), the *modeled* seconds and per-phase costs (from
// perfmodel::RunCost), the divergence between the two (the drift report that
// makes the Fig. 6-8 extrapolations falsifiable), and the communication
// counters including the per-(src,dst)-rank matrix.  tools/check_bench.py
// validates the schema and gates regressions against bench/baselines/.
//
// Schema (version "simcov-bench/1"):
//   {
//     "schema": "simcov-bench/1",
//     "bench": "<name>",
//     "experiment" | "paper_config" | "our_config": strings,
//     "machine": {"host", "compiler", "build", "hardware_threads"},
//     "configs": [ {
//        "label", "backend", "ranks", "params": {..},
//        "measured_wall_s", "modeled_s",
//        "measured_by_phase_s": {phase: s}, "modeled_by_phase_s": {phase: s},
//        "drift": [ {"phase", "measured_s", "measured_share",
//                    "modeled_s", "modeled_share", "divergence"} ],
//        "comm": { aggregate counters ...,
//                  "matrix": [ {"src","dst","puts","put_bytes",
//                               "rpcs","rpc_bytes"} ],
//                  "matrix_pairs", "matrix_max_put_bytes" } } ],
//     "shape_checks": [ {"claim", "ok"} ],
//     "metrics": {name: value}
//   }
// No timestamps anywhere: for deterministic inputs everything except the
// measured_* fields and the machine fingerprint is bit-stable across runs.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "pgas/comm_stats.hpp"
#include "perfmodel/cost_model.hpp"

namespace simcov::obs {

/// One phase's measured-vs-modeled comparison.  Shares are fractions of the
/// respective totals; divergence = measured_share - modeled_share, so a
/// positive value means the phase costs more of the real step time than the
/// cost model predicts.
struct DriftRow {
  std::string phase;
  double measured_s = 0.0;
  double measured_share = 0.0;
  double modeled_s = 0.0;
  double modeled_share = 0.0;
  double divergence = 0.0;
};

/// One (src,dst) cell of the communication matrix.
struct CommEdge {
  int src = 0;
  int dst = 0;
  pgas::PeerStats traffic;
};

/// Where BenchReport builds its machine fingerprint from.
struct MachineFingerprint {
  std::string host;
  std::string compiler;
  std::string build;  ///< "release" / "debug" (NDEBUG)
  unsigned hardware_threads = 0;

  static MachineFingerprint current();
};

/// One benchmarked configuration of a bench binary.
struct BenchConfig {
  std::string label;
  std::string backend;  ///< "cpu" | "gpu" | "reference"
  int ranks = 0;
  /// Flat numeric parameters (dim_x, num_steps, seed, area_scale, ...).
  std::map<std::string, double> params;
  double measured_wall_s = 0.0;
  double modeled_s = 0.0;
  std::map<std::string, double> measured_by_phase_s;
  std::map<std::string, double> modeled_by_phase_s;
  std::vector<DriftRow> drift;
  pgas::CommStats comm_total;       ///< summed over ranks (peers merged)
  std::vector<CommEdge> comm_matrix;  ///< sorted by (src,dst)
};

struct ShapeCheck {
  std::string claim;
  bool ok = false;
};

/// Builder for one BENCH_<name>.json.  Collect configs / shape checks /
/// scalar metrics, then write().  The output directory is $SIMCOV_BENCH_DIR
/// when set, else the current working directory (CI runs benches from the
/// repo root so reports land where the baselines expect them).
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void set_context(std::string experiment, std::string paper_config,
                   std::string our_config);

  BenchConfig& add_config(BenchConfig cfg);
  void add_shape_check(const std::string& claim, bool ok);
  void add_metric(const std::string& name, double value);

  const std::string& name() const { return name_; }
  const std::vector<BenchConfig>& configs() const { return configs_; }
  const std::vector<ShapeCheck>& shape_checks() const { return shape_checks_; }

  std::string to_json() const;
  /// Resolved output path: <SIMCOV_BENCH_DIR or .>/BENCH_<name>.json.
  std::string path() const;
  /// Writes to path(); throws simcov::Error on I/O failure.
  void write() const;

  /// Prints the aggregate measured-vs-modeled drift table (summed over all
  /// recorded configs) to `out`.  No-op when nothing was measured.
  void print_drift_summary(std::FILE* out) const;

  // ---- builders for the pieces callers assemble a BenchConfig from -------

  /// Per-phase drift from the "phase.<name>.wall_ns" counters (summed over
  /// ranks) against a modeled RunCost.  Phases with neither measured nor
  /// modeled time are omitted.
  static std::vector<DriftRow> drift_from(
      const std::map<std::string, std::map<int, double>>& counters,
      const perfmodel::RunCost& cost);

  /// Measured per-phase seconds (summed over ranks) from the PhaseClock
  /// counters.
  static std::map<std::string, double> measured_phases_from(
      const std::map<std::string, std::map<int, double>>& counters);

  /// Modeled per-phase seconds from a RunCost (zero phases omitted).
  static std::map<std::string, double> modeled_phases_from(
      const perfmodel::RunCost& cost);

  /// Flattens per-rank CommStats into sorted (src,dst) matrix edges.
  static std::vector<CommEdge> matrix_from(
      const std::vector<pgas::CommStats>& by_rank);

 private:
  std::string name_;
  std::string experiment_;
  std::string paper_config_;
  std::string our_config_;
  MachineFingerprint machine_;
  std::vector<BenchConfig> configs_;
  std::vector<ShapeCheck> shape_checks_;
  std::map<std::string, double> metrics_;
};

}  // namespace simcov::obs
