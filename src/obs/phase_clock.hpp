#pragma once
// Wall-clock phase instrumentation for a bulk-synchronous rank loop.
//
// Both backends already mark the end of every timestep phase for the
// performance model (record_phase); PhaseClock piggybacks on the same
// points so the *measured* phases and the *modeled* phases share one enum
// and one set of names (perfmodel::phase_name).  Per step it produces:
//
//   * one span per phase region on the rank's trace track, covering
//     contiguously from the previous mark to now;
//   * one enclosing "step" span;
//   * cumulative counters "phase.<name>.wall_ns" and "step.wall_ns" per
//     rank in the metrics registry — the input of the end-of-run phase
//     breakdown table (harness::print_phase_breakdown).
//
// Disabled cost: begin_step pays the two enablement loads; phase_end and
// end_step then pay a single branch each.

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace simcov::obs {

class PhaseClock {
 public:
  /// `track` is the PGAS rank id.
  explicit PhaseClock(int track) : track_(track) {}

  /// Call at the top of step(); re-samples enablement so a tracer enabled
  /// between runs is honoured without reconstructing the simulation.
  void begin_step() {
    trace_ = tracer().enabled();
    metrics_ = metrics().enabled();
    if (!trace_ && !metrics_) return;
    step_start_ = now_ns();
    mark_ = step_start_;
  }

  /// Closes the phase region that started at the previous mark (or at
  /// begin_step for the first phase).  `name` must be a static string.
  void phase_end(const char* name) {
    if (!trace_ && !metrics_) return;
    const Nanos t = now_ns();
    if (trace_) tracer().record(name, track_, mark_, t);
    if (metrics_) {
      metrics().add(std::string("phase.") + name + ".wall_ns", track_,
                    static_cast<double>(t - mark_));
    }
    mark_ = t;
  }

  /// Closes the enclosing step span.
  void end_step() {
    if (!trace_ && !metrics_) return;
    const Nanos t = now_ns();
    if (trace_) tracer().record("step", track_, step_start_, t);
    if (metrics_) {
      metrics().add("step.wall_ns", track_,
                    static_cast<double>(t - step_start_));
    }
  }

 private:
  int track_;
  bool trace_ = false;
  bool metrics_ = false;
  Nanos step_start_ = 0;
  Nanos mark_ = 0;
};

}  // namespace simcov::obs
