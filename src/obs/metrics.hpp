#pragma once
// Per-rank runtime metrics registry with a step-level snapshot exporter.
//
// Where the tracer answers "when did this rank do what", the metrics
// registry answers "how much": cumulative counters (per-phase wall time,
// tile activations), gauges (last-observed values), histograms (RPC drain
// batch sizes), and per-step series (barrier wait per rank to expose skew,
// halo bytes, active-tile occupancy, voxels touched per step).  Every
// metric is keyed (name, rank) so cross-rank skew is directly visible.
//
// Snapshots export as JSON (default) or CSV (path ending in ".csv").  All
// maps are ordered, so for a fixed seed and rank count the exported
// structure — and every value that is not a wall-clock measurement — is
// bit-identical across runs (tested in tests/obs_test.cpp).
//
// Enabling: SIMCOV_METRICS=<path> in the environment, --metrics-out=<path>
// on simcov_main, or obs::metrics().enable(path); an empty path collects
// without auto-writing (used for the end-of-run phase table).  Disabled
// cost at a call site is one relaxed atomic load and one branch — callers
// must guard with `if (obs::metrics().enabled())`.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace simcov::obs {

/// Histogram summary: count / sum / min / max plus fixed log-spaced (base-2)
/// buckets, from which deterministic p50/p95/p99 estimates are exported.
/// Bucket index for a positive value v is floor(log2(v)) via std::ilogb —
/// pure bit inspection, no libm rounding variance — so for a fixed input
/// sequence the buckets (and therefore the quantiles and the JSON) are
/// bit-identical across runs.  Non-positive values land in a sentinel
/// underflow bucket.
struct HistSummary {
  /// Bucket index for values <= 0 (log-spaced buckets only cover v > 0).
  static constexpr int kUnderflowBucket = -10000;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// base-2 log bucket index -> observation count.
  std::map<int, std::uint64_t> buckets;

  static int bucket_of(double value);

  /// Deterministic quantile estimate (q in [0,1]): the upper bound 2^(i+1)
  /// of the bucket holding the ceil(q*count)-th smallest observation,
  /// clamped to [min, max].  Exact for the extremes, within one bucket
  /// (a factor of 2) elsewhere.
  double quantile(double q) const;
};

class MetricsRegistry {
 public:
  /// Reads SIMCOV_METRICS once; a non-empty value enables collection with
  /// that output path.
  MetricsRegistry();
  /// Last-chance flush, mirroring the tracer.
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Starts collecting.  `out_path` may be empty (collect only).  Clears
  /// any previously collected data.
  void enable(std::string out_path = "");
  /// Stops collecting and discards all data.
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // ---- recording (thread-safe; no-ops when disabled) ----------------------
  void add(const std::string& name, int rank, double delta);       ///< counter
  void set(const std::string& name, int rank, double value);       ///< gauge
  void observe(const std::string& name, int rank, double value);   ///< histogram
  /// Appends one (step, value) sample to a per-rank series.
  void step_value(const std::string& name, int rank, std::uint64_t step,
                  double value);

  // ---- queries -------------------------------------------------------------
  double counter_value(const std::string& name, int rank) const;
  /// All counters: name -> rank -> value (sorted, for reports).
  std::map<std::string, std::map<int, double>> counters() const;
  /// Total recorded datapoints (used by the overhead bench to count sites).
  std::uint64_t datapoint_count() const;

  // ---- export -------------------------------------------------------------
  std::string to_json() const;
  std::string to_csv() const;
  /// Writes JSON, or CSV when the path ends in ".csv".  Throws on failure.
  void write(const std::string& path) const;
  /// Writes to the enabled path, if any.
  void flush();
  std::string path() const;

 private:
  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;
  std::string path_;
  std::uint64_t datapoints_ = 0;
  std::map<std::string, std::map<int, double>> counters_;
  std::map<std::string, std::map<int, double>> gauges_;
  std::map<std::string, std::map<int, HistSummary>> hists_;
  std::map<std::string,
           std::map<int, std::vector<std::pair<std::uint64_t, double>>>>
      series_;
};

/// The process-wide registry (one process hosts all ranks).
MetricsRegistry& metrics();

}  // namespace simcov::obs
