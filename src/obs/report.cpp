#include "obs/report.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace simcov::obs {

namespace {

constexpr const char* kSchema = "simcov-bench/1";

void emit_kv(std::ostream& os, const char* key, const std::string& value,
             bool comma = true) {
  os << "\"" << key << "\":\"";
  json_escape(os, value);
  os << "\"";
  if (comma) os << ",";
}

void emit_num_map(std::ostream& os, const char* key,
                  const std::map<std::string, double>& m) {
  os << "\"" << key << "\":{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, k);
    os << "\":" << json_num(v);
  }
  os << "}";
}

}  // namespace

MachineFingerprint MachineFingerprint::current() {
  MachineFingerprint f;
  char host[256] = {};
  if (gethostname(host, sizeof host - 1) == 0) f.host = host;
  f.compiler = __VERSION__;
#ifdef NDEBUG
  f.build = "release";
#else
  f.build = "debug";
#endif
  f.hardware_threads = std::thread::hardware_concurrency();
  return f;
}

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), machine_(MachineFingerprint::current()) {
  SIMCOV_REQUIRE(!name_.empty(), "bench report needs a name");
}

void BenchReport::set_context(std::string experiment, std::string paper_config,
                              std::string our_config) {
  experiment_ = std::move(experiment);
  paper_config_ = std::move(paper_config);
  our_config_ = std::move(our_config);
}

BenchConfig& BenchReport::add_config(BenchConfig cfg) {
  configs_.push_back(std::move(cfg));
  return configs_.back();
}

void BenchReport::add_shape_check(const std::string& claim, bool ok) {
  shape_checks_.push_back({claim, ok});
}

void BenchReport::add_metric(const std::string& name, double value) {
  metrics_[name] = value;
}

std::vector<DriftRow> BenchReport::drift_from(
    const std::map<std::string, std::map<int, double>>& counters,
    const perfmodel::RunCost& cost) {
  // Per-phase measured seconds: the PhaseClock counters are wall ns per
  // (phase, rank); summing over ranks weights each phase by total rank-time,
  // matching the bulk-synchronous cost fold's sum-over-phases structure.
  std::array<double, perfmodel::kNumPhases> measured{};
  double measured_total = 0.0;
  double modeled_total = 0.0;
  for (int p = 0; p < perfmodel::kNumPhases; ++p) {
    const char* name = perfmodel::phase_name(static_cast<perfmodel::Phase>(p));
    const auto it = counters.find(std::string("phase.") + name + ".wall_ns");
    if (it != counters.end()) {
      for (const auto& [rank, v] : it->second) {
        measured[static_cast<std::size_t>(p)] += v / 1e9;
      }
    }
    measured_total += measured[static_cast<std::size_t>(p)];
    modeled_total += cost.by_phase[static_cast<std::size_t>(p)];
  }
  std::vector<DriftRow> rows;
  for (int p = 0; p < perfmodel::kNumPhases; ++p) {
    const double m = measured[static_cast<std::size_t>(p)];
    const double c = cost.by_phase[static_cast<std::size_t>(p)];
    if (m == 0.0 && c == 0.0) continue;
    DriftRow row;
    row.phase = perfmodel::phase_name(static_cast<perfmodel::Phase>(p));
    row.measured_s = m;
    row.measured_share = measured_total > 0.0 ? m / measured_total : 0.0;
    row.modeled_s = c;
    row.modeled_share = modeled_total > 0.0 ? c / modeled_total : 0.0;
    row.divergence = row.measured_share - row.modeled_share;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::map<std::string, double> BenchReport::measured_phases_from(
    const std::map<std::string, std::map<int, double>>& counters) {
  std::map<std::string, double> out;
  for (int p = 0; p < perfmodel::kNumPhases; ++p) {
    const char* name = perfmodel::phase_name(static_cast<perfmodel::Phase>(p));
    const auto it = counters.find(std::string("phase.") + name + ".wall_ns");
    if (it == counters.end()) continue;
    double s = 0.0;
    for (const auto& [rank, v] : it->second) s += v / 1e9;
    if (s > 0.0) out[name] = s;
  }
  return out;
}

std::map<std::string, double> BenchReport::modeled_phases_from(
    const perfmodel::RunCost& cost) {
  std::map<std::string, double> out;
  for (int p = 0; p < perfmodel::kNumPhases; ++p) {
    const double s = cost.by_phase[static_cast<std::size_t>(p)];
    if (s > 0.0) {
      out[perfmodel::phase_name(static_cast<perfmodel::Phase>(p))] = s;
    }
  }
  return out;
}

std::vector<CommEdge> BenchReport::matrix_from(
    const std::vector<pgas::CommStats>& by_rank) {
  std::vector<CommEdge> edges;
  for (std::size_t src = 0; src < by_rank.size(); ++src) {
    for (const auto& [dst, p] : by_rank[src].peers) {
      if (p.zero()) continue;
      edges.push_back({static_cast<int>(src), dst, p});
    }
  }
  // by_rank is rank-ordered and peers is a sorted map, so edges are already
  // sorted by (src,dst) — the deterministic order the JSON relies on.
  return edges;
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  emit_kv(os, "schema", kSchema);
  os << "\n";
  emit_kv(os, "bench", name_);
  os << "\n";
  emit_kv(os, "experiment", experiment_);
  os << "\n";
  emit_kv(os, "paper_config", paper_config_);
  os << "\n";
  emit_kv(os, "our_config", our_config_);
  os << "\n\"machine\":{";
  emit_kv(os, "host", machine_.host);
  emit_kv(os, "compiler", machine_.compiler);
  emit_kv(os, "build", machine_.build, /*comma=*/false);
  os << ",\"hardware_threads\":" << machine_.hardware_threads << "},\n";
  os << "\"configs\":[";
  bool first_cfg = true;
  for (const BenchConfig& c : configs_) {
    if (!first_cfg) os << ",";
    first_cfg = false;
    os << "\n {";
    emit_kv(os, "label", c.label);
    emit_kv(os, "backend", c.backend, /*comma=*/false);
    os << ",\"ranks\":" << c.ranks << ",\n  ";
    emit_num_map(os, "params", c.params);
    os << ",\n  \"measured_wall_s\":" << json_num(c.measured_wall_s)
       << ",\"modeled_s\":" << json_num(c.modeled_s) << ",\n  ";
    emit_num_map(os, "measured_by_phase_s", c.measured_by_phase_s);
    os << ",\n  ";
    emit_num_map(os, "modeled_by_phase_s", c.modeled_by_phase_s);
    os << ",\n  \"drift\":[";
    bool first_row = true;
    for (const DriftRow& d : c.drift) {
      if (!first_row) os << ",";
      first_row = false;
      os << "\n   {";
      emit_kv(os, "phase", d.phase, /*comma=*/false);
      os << ",\"measured_s\":" << json_num(d.measured_s)
         << ",\"measured_share\":" << json_num(d.measured_share)
         << ",\"modeled_s\":" << json_num(d.modeled_s)
         << ",\"modeled_share\":" << json_num(d.modeled_share)
         << ",\"divergence\":" << json_num(d.divergence) << "}";
    }
    os << "],\n  \"comm\":{";
    const pgas::CommStats& t = c.comm_total;
    os << "\"rpcs_sent\":" << t.rpcs_sent << ",\"rpc_bytes\":" << t.rpc_bytes
       << ",\"puts\":" << t.puts << ",\"put_bytes\":" << t.put_bytes
       << ",\"barriers\":" << t.barriers << ",\"reductions\":" << t.reductions
       << ",\"reduction_bytes\":" << t.reduction_bytes
       << ",\"broadcasts\":" << t.broadcasts
       << ",\"broadcast_bytes\":" << t.broadcast_bytes
       << ",\"barrier_wait_ns\":" << t.barrier_wait_ns;
    std::uint64_t max_put_bytes = 0;
    for (const CommEdge& e : c.comm_matrix) {
      max_put_bytes = std::max(max_put_bytes, e.traffic.put_bytes);
    }
    os << ",\n   \"matrix_pairs\":" << c.comm_matrix.size()
       << ",\"matrix_max_put_bytes\":" << max_put_bytes
       << ",\"matrix\":[";
    bool first_edge = true;
    for (const CommEdge& e : c.comm_matrix) {
      if (!first_edge) os << ",";
      first_edge = false;
      os << "\n    {\"src\":" << e.src << ",\"dst\":" << e.dst
         << ",\"puts\":" << e.traffic.puts
         << ",\"put_bytes\":" << e.traffic.put_bytes
         << ",\"rpcs\":" << e.traffic.rpcs_sent
         << ",\"rpc_bytes\":" << e.traffic.rpc_bytes << "}";
    }
    os << "]}}";
  }
  os << "\n],\n\"shape_checks\":[";
  bool first_check = true;
  for (const ShapeCheck& s : shape_checks_) {
    if (!first_check) os << ",";
    first_check = false;
    os << "\n {";
    emit_kv(os, "claim", s.claim, /*comma=*/false);
    os << ",\"ok\":" << (s.ok ? "true" : "false") << "}";
  }
  os << "\n],\n";
  emit_num_map(os, "metrics", metrics_);
  os << "\n}\n";
  return os.str();
}

std::string BenchReport::path() const {
  std::string dir = ".";
  // Read at write time, not construction: tests set SIMCOV_BENCH_DIR before
  // the report is written, never concurrently with it.
  const char* e = std::getenv("SIMCOV_BENCH_DIR");  // NOLINT(concurrency-mt-unsafe)
  if (e != nullptr && *e != '\0') dir = e;
  return dir + "/BENCH_" + name_ + ".json";
}

void BenchReport::write() const {
  const std::string p = path();
  std::ofstream f(p, std::ios::trunc);
  SIMCOV_REQUIRE(f.good(), "cannot open bench report for writing: " + p);
  f << to_json();
  f.flush();
  SIMCOV_REQUIRE(f.good(), "failed writing bench report: " + p);
}

void BenchReport::print_drift_summary(std::FILE* out) const {
  // Aggregate over configs: sum measured and modeled per-phase seconds, then
  // compare shares.  One table per bench keeps the signal readable even for
  // binaries that run ten configurations.
  std::map<std::string, double> measured, modeled;
  double measured_total = 0.0, modeled_total = 0.0;
  for (const BenchConfig& c : configs_) {
    for (const auto& [k, v] : c.measured_by_phase_s) {
      measured[k] += v;
      measured_total += v;
    }
    for (const auto& [k, v] : c.modeled_by_phase_s) {
      modeled[k] += v;
      modeled_total += v;
    }
  }
  if (measured_total <= 0.0 || modeled_total <= 0.0) return;
  TextTable t({"phase", "measured s", "share", "modeled s", "share",
               "divergence"});
  // Walk phases in the perfmodel's canonical order so the table matches the
  // phase-breakdown table printed by the harness.
  for (int p = 0; p < perfmodel::kNumPhases; ++p) {
    const char* name = perfmodel::phase_name(static_cast<perfmodel::Phase>(p));
    const double m = measured.count(name) ? measured.at(name) : 0.0;
    const double c = modeled.count(name) ? modeled.at(name) : 0.0;
    if (m == 0.0 && c == 0.0) continue;
    const double ms = m / measured_total;
    const double cs = c / modeled_total;
    t.add_row({name, fmt(m, 4), fmt(ms * 100.0, 1) + "%", fmt(c, 4),
               fmt(cs * 100.0, 1) + "%",
               fmt((ms - cs) * 100.0, 1) + " pp"});
  }
  std::fprintf(out,
               "measured-vs-modeled phase drift (all configs, divergence = "
               "measured share - modeled share):\n%s",
               t.to_string().c_str());
}

}  // namespace simcov::obs
