#pragma once
// Wall-clock span tracer.
//
// The perfmodel records *modeled* seconds; this layer records *measured*
// ones.  Every PGAS rank is a track; a span is a named wall-clock interval
// on a track (a simulation phase, a barrier wait, an RPC drain, a put).
// Spans land in a thread-safe ring buffer and are flushed as Chrome
// trace-event JSON ("traceEvents" array of "ph":"X" complete events), which
// loads directly in Perfetto or chrome://tracing with one named track per
// rank.
//
// Enabling: set SIMCOV_TRACE=<path> in the environment (picked up the first
// time the global tracer is touched), pass --trace=<path> to simcov_main,
// or call obs::tracer().enable(path) programmatically before the run.  An
// empty path collects spans in memory only (tests, overhead benches).
//
// Overhead contract: when tracing is disabled every span site costs one
// relaxed atomic load and one branch — no clock read, no lock, no
// allocation.  This is asserted by bench/obs_overhead.cpp.  When enabled,
// recording takes two steady_clock reads and one short mutex-guarded ring
// write.  When the ring is full the *oldest* spans are overwritten (the
// tail of a run is usually the interesting part) and a drop counter is
// kept.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace simcov::obs {

/// Monotonic nanoseconds (std::chrono::steady_clock).
using Nanos = std::int64_t;
Nanos now_ns();

/// One completed span.  `name` must point at storage that outlives the
/// tracer (phase names and span-site literals are static strings).
struct TraceEvent {
  const char* name;
  int track;  ///< PGAS rank id; rendered as one named Perfetto track each
  Nanos start_ns;
  Nanos end_ns;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;

  /// Reads SIMCOV_TRACE once; a non-empty value enables tracing to that
  /// path.  (Read before any rank threads exist; nothing calls setenv.)
  Tracer();
  /// Flushes to the configured path so SIMCOV_TRACE works for any binary
  /// even if it never calls flush() explicitly.
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts collecting.  `path` may be empty (collect only, no auto-flush).
  /// Resets the ring, the drop counter and the time origin.  `capacity` = 0
  /// (the default) resolves to the SIMCOV_TRACE_RING environment override
  /// if set, else kDefaultCapacity; an explicit positive capacity (tests,
  /// --trace-ring=N) always wins over the environment.
  void enable(std::string path, std::size_t capacity = 0);
  /// Stops collecting and discards buffered spans.
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a completed span (thread-safe; no-op when disabled).
  void record(const char* name, int track, Nanos start_ns, Nanos end_ns);

  std::size_t event_count() const;
  std::uint64_t dropped() const;
  std::size_t capacity() const;
  std::string path() const;

  /// Buffered spans, oldest first (testing / programmatic consumption).
  std::vector<TraceEvent> events() const;

  /// Serializes the buffer as Chrome trace-event JSON.  Spans are sorted by
  /// start time (ties: longer span first) so per-track timestamps are
  /// monotonically non-decreasing and parents precede children.
  void write_json(std::ostream& os) const;
  std::string to_json() const;

  /// Writes to `path` (throws simcov::Error if the file cannot be written).
  void write_json_file(const std::string& path) const;

  /// Writes to the enabled path, if any.  Safe to call repeatedly.
  void flush();

 private:
  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t next_ = 0;  ///< ring write cursor
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
  std::string path_;
  Nanos origin_ = 0;  ///< timestamps are exported relative to enable() time
};

/// The process-wide tracer.  Ranks are threads of one process, so one
/// tracer sees every track; enable/disable before starting a run.
Tracer& tracer();

/// RAII span: costs one branch when tracing is disabled (see Tracer docs).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, int track)
      : name_(name), track_(track),
        start_(tracer().enabled() ? now_ns() : kInactive) {}
  ~ScopedSpan() {
    if (start_ != kInactive) tracer().record(name_, track_, start_, now_ns());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static constexpr Nanos kInactive = -1;
  const char* name_;
  int track_;
  Nanos start_;
};

}  // namespace simcov::obs
