#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace simcov::obs {

namespace {

/// Shortest representation that round-trips a double (shared with the bench
/// report writer via obs/json.hpp).
std::string num(double v) { return json_num(v); }

template <typename PerRank, typename EmitValue>
void json_group(std::ostream& os, const char* key,
                const std::map<std::string, PerRank>& group,
                EmitValue&& emit_value, bool& first_group) {
  if (!first_group) os << ",\n";
  first_group = false;
  os << "\"" << key << "\":{";
  bool first_name = true;
  for (const auto& [name, ranks] : group) {
    if (!first_name) os << ",";
    first_name = false;
    os << "\n  \"";
    json_escape(os, name);
    os << "\":{";
    bool first_rank = true;
    for (const auto& [rank, value] : ranks) {
      if (!first_rank) os << ",";
      first_rank = false;
      os << "\"" << rank << "\":";
      emit_value(os, value);
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

int HistSummary::bucket_of(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return kUnderflowBucket;
  return std::ilogb(value);
}

double HistSummary::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based; ceil without floating error
  // for the q*count products we use (0.5/0.95/0.99 of 64-bit counts).
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (target == 0) target = 1;
  if (target > count) target = count;
  std::uint64_t cum = 0;
  for (const auto& [idx, n] : buckets) {
    cum += n;
    if (cum >= target) {
      if (idx == kUnderflowBucket) return min;
      // Upper edge of bucket [2^idx, 2^(idx+1)), clamped so the estimate
      // never leaves the observed range.
      return std::clamp(std::ldexp(1.0, idx + 1), min, max);
    }
  }
  return max;  // unreachable for consistent counts; safe fallback
}

MetricsRegistry::MetricsRegistry() {
  const char* e = std::getenv("SIMCOV_METRICS");  // NOLINT(concurrency-mt-unsafe)
  if (e != nullptr && *e != '\0') enable(e);
}

MetricsRegistry::~MetricsRegistry() {
  try {
    flush();
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "simcov: metrics flush failed: %s\n", ex.what());
  }
}

void MetricsRegistry::enable(std::string out_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = std::move(out_path);
  datapoints_ = 0;
  counters_.clear();
  gauges_.clear();
  hists_.clear();
  series_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void MetricsRegistry::disable() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  path_.clear();
  counters_.clear();
  gauges_.clear();
  hists_.clear();
  series_.clear();
}

void MetricsRegistry::add(const std::string& name, int rank, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  counters_[name][rank] += delta;
  ++datapoints_;
}

void MetricsRegistry::set(const std::string& name, int rank, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  gauges_[name][rank] = value;
  ++datapoints_;
}

void MetricsRegistry::observe(const std::string& name, int rank,
                              double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  HistSummary& h = hists_[name][rank];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[HistSummary::bucket_of(value)];
  ++datapoints_;
}

void MetricsRegistry::step_value(const std::string& name, int rank,
                                 std::uint64_t step, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  series_[name][rank].emplace_back(step, value);
  ++datapoints_;
}

double MetricsRegistry::counter_value(const std::string& name,
                                      int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) return 0.0;
  auto jt = it->second.find(rank);
  return jt == it->second.end() ? 0.0 : jt->second;
}

std::map<std::string, std::map<int, double>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::uint64_t MetricsRegistry::datapoint_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return datapoints_;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  json_group(os, "counters", counters_,
             [](std::ostream& o, double v) { o << num(v); }, first);
  json_group(os, "gauges", gauges_,
             [](std::ostream& o, double v) { o << num(v); }, first);
  json_group(os, "histograms", hists_,
             [](std::ostream& o, const HistSummary& h) {
               o << "{\"count\":" << h.count << ",\"sum\":" << num(h.sum)
                 << ",\"min\":" << num(h.min) << ",\"max\":" << num(h.max)
                 << ",\"p50\":" << num(h.quantile(0.50))
                 << ",\"p95\":" << num(h.quantile(0.95))
                 << ",\"p99\":" << num(h.quantile(0.99)) << ",\"buckets\":{";
               bool f = true;
               for (const auto& [idx, n] : h.buckets) {
                 if (!f) o << ",";
                 f = false;
                 o << "\"" << idx << "\":" << n;
               }
               o << "}}";
             },
             first);
  json_group(os, "series", series_,
             [](std::ostream& o,
                const std::vector<std::pair<std::uint64_t, double>>& sv) {
               o << "[";
               bool f = true;
               for (const auto& [step, v] : sv) {
                 if (!f) o << ",";
                 f = false;
                 o << "[" << step << "," << num(v) << "]";
               }
               o << "]";
             },
             first);
  os << "\n}\n";
  return os.str();
}

std::string MetricsRegistry::to_csv() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "kind,name,rank,step,value\n";
  for (const auto& [name, ranks] : counters_) {
    for (const auto& [rank, v] : ranks) {
      os << "counter," << name << "," << rank << ",," << num(v) << "\n";
    }
  }
  for (const auto& [name, ranks] : gauges_) {
    for (const auto& [rank, v] : ranks) {
      os << "gauge," << name << "," << rank << ",," << num(v) << "\n";
    }
  }
  for (const auto& [name, ranks] : hists_) {
    for (const auto& [rank, h] : ranks) {
      os << "histogram_count," << name << "," << rank << ",," << h.count
         << "\n";
      os << "histogram_sum," << name << "," << rank << ",," << num(h.sum)
         << "\n";
      os << "histogram_min," << name << "," << rank << ",," << num(h.min)
         << "\n";
      os << "histogram_max," << name << "," << rank << ",," << num(h.max)
         << "\n";
      os << "histogram_p50," << name << "," << rank << ",,"
         << num(h.quantile(0.50)) << "\n";
      os << "histogram_p95," << name << "," << rank << ",,"
         << num(h.quantile(0.95)) << "\n";
      os << "histogram_p99," << name << "," << rank << ",,"
         << num(h.quantile(0.99)) << "\n";
    }
  }
  for (const auto& [name, ranks] : series_) {
    for (const auto& [rank, sv] : ranks) {
      for (const auto& [step, v] : sv) {
        os << "series," << name << "," << rank << "," << step << ","
           << num(v) << "\n";
      }
    }
  }
  return os.str();
}

void MetricsRegistry::write(const std::string& file_path) const {
  const bool csv = file_path.size() >= 4 &&
                   file_path.compare(file_path.size() - 4, 4, ".csv") == 0;
  std::ofstream f(file_path, std::ios::trunc);
  SIMCOV_REQUIRE(f.good(),
                 "cannot open metrics file for writing: " + file_path);
  f << (csv ? to_csv() : to_json());
  f.flush();
  SIMCOV_REQUIRE(f.good(), "failed writing metrics file: " + file_path);
}

void MetricsRegistry::flush() {
  std::string p = path();
  if (!enabled() || p.empty()) return;
  write(p);
}

std::string MetricsRegistry::path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return path_;
}

MetricsRegistry& metrics() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace simcov::obs
