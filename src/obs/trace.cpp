#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace simcov::obs {

Nanos now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::Tracer() {
  const char* e = std::getenv("SIMCOV_TRACE");  // NOLINT(concurrency-mt-unsafe)
  if (e != nullptr && *e != '\0') enable(e);
}

Tracer::~Tracer() {
  // Last-chance flush for SIMCOV_TRACE users that exit without calling
  // flush(); a write failure here can only be reported, not thrown.
  try {
    flush();
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "simcov: trace flush failed: %s\n", ex.what());
  }
}

void Tracer::enable(std::string path, std::size_t capacity) {
  if (capacity == 0) {
    // Resolve the ring size from the environment (SIMCOV_TRACE_RING=N).
    // Re-read on every enable() so tests and long-lived processes can
    // adjust it between runs; nothing in the library calls setenv.
    capacity = kDefaultCapacity;
    const char* e = std::getenv("SIMCOV_TRACE_RING");  // NOLINT(concurrency-mt-unsafe)
    if (e != nullptr && *e != '\0') {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(e, &end, 10);
      if (end != nullptr && *end == '\0' && n > 0) {
        capacity = static_cast<std::size_t>(n);
      } else {
        std::fprintf(stderr,
                     "simcov: ignoring invalid SIMCOV_TRACE_RING=%s "
                     "(want a positive integer); using %zu\n",
                     e, capacity);
      }
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = std::move(path);
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
  origin_ = now_ns();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  path_.clear();
}

void Tracer::record(const char* name, int track, Nanos start_ns,
                    Nanos end_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;  // disabled mid-span
  const TraceEvent ev{name, track, start_ns, std::max(start_ns, end_ns)};
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
    next_ = ring_.size() % capacity_;
  } else {
    ring_[next_] = ev;  // overwrite the oldest
    next_ = (next_ + 1) % capacity_;
    wrapped_ = true;
    ++dropped_;
  }
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::string Tracer::path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return path_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  } else {
    out = ring_;
  }
  return out;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      os << buf;
    } else {
      os << c;
    }
  }
}

/// Microseconds with nanosecond resolution, printed exactly (ns/1000 has at
/// most three decimals), so parsed timestamps compare without rounding
/// surprises.
void write_us(std::ostream& os, Nanos ns) {
  const char sign = ns < 0 ? '-' : '\0';
  const std::uint64_t abs_ns =
      sign ? static_cast<std::uint64_t>(-ns) : static_cast<std::uint64_t>(ns);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%s%llu.%03llu", sign ? "-" : "",
                static_cast<unsigned long long>(abs_ns / 1000),
                static_cast<unsigned long long>(abs_ns % 1000));
  os << buf;
}

}  // namespace

void Tracer::write_json(std::ostream& os) const {
  std::vector<TraceEvent> evs = events();
  Nanos origin;
  std::uint64_t dropped_count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    origin = origin_;
    dropped_count = dropped_;
  }
  // Sorted by start time; ties put the longer (enclosing) span first so a
  // parent always precedes its children on a track.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.end_ns > b.end_ns;
                   });
  std::vector<int> tracks;
  for (const TraceEvent& e : evs) tracks.push_back(e.track);
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());

  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << dropped_count << "},\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  sep();
  os << R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
     << R"("args":{"name":"simcov"}})";
  for (int t : tracks) {
    sep();
    os << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << t
       << R"(,"args":{"name":"rank )" << t << R"("}})";
  }
  for (const TraceEvent& e : evs) {
    sep();
    os << R"({"name":")";
    write_escaped(os, e.name);
    os << R"(","ph":"X","cat":"simcov","pid":1,"tid":)" << e.track
       << ",\"ts\":";
    write_us(os, e.start_ns - origin);
    os << ",\"dur\":";
    write_us(os, e.end_ns - e.start_ns);
    os << "}";
  }
  os << "\n]}\n";
}

std::string Tracer::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void Tracer::write_json_file(const std::string& file_path) const {
  std::ofstream f(file_path, std::ios::trunc);
  SIMCOV_REQUIRE(f.good(), "cannot open trace file for writing: " + file_path);
  write_json(f);
  f.flush();
  SIMCOV_REQUIRE(f.good(), "failed writing trace file: " + file_path);
}

void Tracer::flush() {
  std::string p = path();
  if (!enabled() || p.empty()) return;
  write_json_file(p);
  // Saturation is otherwise only visible inside the JSON's otherData, which
  // nobody reads until the trace looks mysteriously truncated.
  const std::uint64_t d = dropped();
  if (d > 0) {
    std::fprintf(stderr,
                 "simcov: trace ring saturated: %llu oldest spans were "
                 "overwritten (capacity %zu); raise it with --trace-ring=N "
                 "or SIMCOV_TRACE_RING=N\n",
                 static_cast<unsigned long long>(d), capacity());
  }
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace simcov::obs
