#pragma once
// Tiny JSON emission helpers shared by the metrics exporter and the bench
// report writer.  Not a JSON library: just the two primitives both exporters
// need to produce deterministic, round-trippable output by hand.

#include <cstdio>
#include <ostream>
#include <string>

namespace simcov::obs {

/// Shortest decimal representation that round-trips a double (counters hold
/// exact integer counts well inside 2^53, so these print as integers).
inline std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0.0;
  for (int prec = 1; prec <= 16; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

inline void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      os << buf;
    } else {
      os << c;
    }
  }
}

/// json_escape into a fresh string (convenience for string building).
inline std::string json_escaped(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace simcov::obs
