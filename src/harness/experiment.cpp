#include "harness/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/grid.hpp"
#include "core/reference_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace simcov::harness {

std::vector<VoxelId> RunSpec::resolve_foi() const {
  if (!foi.empty()) return foi;
  const Grid grid(params.dim_x, params.dim_y, params.dim_z);
  return foi_uniform_random(grid, params.num_foi, params.seed);
}

pgas::CommStats BackendResult::comm_total() const {
  pgas::CommStats total;
  for (const auto& s : comm_by_rank) total += s;
  return total;
}

namespace {

/// Seconds elapsed on the host steady clock since `t0` — the measured side
/// of the drift report (the modeled side comes from the cost model).
double wall_since(obs::Nanos t0) {
  return static_cast<double>(obs::now_ns() - t0) / 1e9;
}

}  // namespace

BackendResult run_reference(const RunSpec& spec) {
  const std::vector<VoxelId> foi = spec.resolve_foi();
  const obs::Nanos t0 = obs::now_ns();
  ReferenceSim sim(spec.params, foi);
  sim.run(spec.params.num_steps);
  BackendResult out;
  out.measured_wall_s = wall_since(t0);
  out.history = sim.history();
  return out;
}

BackendResult run_cpu(const RunSpec& spec, int cpu_ranks) {
  cpu::CpuSimOptions opt;
  opt.num_ranks = cpu_ranks;
  opt.decomp = spec.decomp;
  opt.area_scale = spec.area_scale;
  const std::vector<VoxelId> foi = spec.resolve_foi();
  const obs::Nanos t0 = obs::now_ns();
  cpu::CpuRunResult r = cpu::run_cpu_sim(spec.params, foi, opt);
  BackendResult out;
  out.measured_wall_s = wall_since(t0);
  out.history = std::move(r.history);
  out.cost = r.cost;
  out.modeled_seconds = r.cost.total_s;
  out.comm_by_rank = std::move(r.comm_by_rank);
  return out;
}

BackendResult run_gpu(const RunSpec& spec, int gpu_ranks,
                      gpu::GpuVariant variant) {
  gpu::GpuSimOptions opt;
  opt.num_ranks = gpu_ranks;
  opt.decomp = spec.decomp;
  opt.variant = variant;
  opt.area_scale = spec.area_scale;
  opt.check_kernels = spec.check_kernels;
  opt.permute_schedules = spec.permute_schedules;
  const std::vector<VoxelId> foi = spec.resolve_foi();
  const obs::Nanos t0 = obs::now_ns();
  gpu::GpuRunResult r = gpu::run_gpu_sim(spec.params, foi, opt);
  BackendResult out;
  out.measured_wall_s = wall_since(t0);
  out.history = std::move(r.history);
  out.cost = r.cost;
  out.modeled_seconds = r.cost.total_s;
  out.comm_by_rank = std::move(r.comm_by_rank);
  return out;
}

double speedup(const BackendResult& cpu, const BackendResult& gpu) {
  SIMCOV_REQUIRE(gpu.modeled_seconds > 0.0, "GPU runtime is zero");
  return cpu.modeled_seconds / gpu.modeled_seconds;
}

namespace {

/// Fails fast on an unwritable output path (bad directory, permissions).
/// Opens in append mode so an existing file's contents survive the probe;
/// the real write at flush time truncates it anyway.
void require_writable(const std::string& path, const char* what) {
  std::ofstream probe(path, std::ios::out | std::ios::app);
  if (!probe) {
    throw Error(std::string(what) + " output path '" + path +
                "' is not writable");
  }
}

/// Measured per-phase wall-clock breakdown from the "phase.*.wall_ns"
/// counters the PhaseClock accumulates: mean and max over ranks (the gap
/// between them is load skew) and each phase's share of the total.
void print_phase_breakdown(std::FILE* out) {
  const auto counters = obs::metrics().counters();
  struct Row {
    const char* name;
    double mean_ns, max_ns, total_ns;
  };
  std::vector<Row> rows;
  double grand = 0.0;
  for (int p = 0; p < perfmodel::kNumPhases; ++p) {
    const char* name = perfmodel::phase_name(static_cast<perfmodel::Phase>(p));
    const auto it = counters.find(std::string("phase.") + name + ".wall_ns");
    if (it == counters.end() || it->second.empty()) continue;
    double sum = 0.0, mx = 0.0;
    for (const auto& [rank, v] : it->second) {
      sum += v;
      mx = std::max(mx, v);
    }
    rows.push_back({name, sum / static_cast<double>(it->second.size()), mx,
                    sum});
    grand += sum;
  }
  if (rows.empty() || grand <= 0.0) return;
  TextTable t({"phase", "mean ms/rank", "max ms/rank", "share"});
  for (const Row& r : rows) {
    t.add_row({r.name, fmt(r.mean_ns / 1e6, 3), fmt(r.max_ns / 1e6, 3),
               fmt(r.total_ns / grand * 100.0, 1) + "%"});
  }
  std::fprintf(out, "measured phase wall-clock breakdown:\n%s",
               t.to_string().c_str());
}

}  // namespace

void configure_observability(const std::string& trace_path,
                             const std::string& metrics_path,
                             std::size_t trace_ring) {
  if (!trace_path.empty()) {
    require_writable(trace_path, "trace");
    obs::tracer().enable(trace_path, trace_ring);
  } else if (trace_ring > 0 && obs::tracer().enabled()) {
    // --trace-ring with SIMCOV_TRACE: re-enable in place with the requested
    // capacity (drops any spans recorded before the run starts, which is
    // the same reset enable() always performs).
    obs::tracer().enable(obs::tracer().path(), trace_ring);
  }
  if (!metrics_path.empty()) {
    require_writable(metrics_path, "metrics");
    obs::metrics().enable(metrics_path);
  }
}

void finish_observability() {
  obs::Tracer& tr = obs::tracer();
  if (tr.enabled() && !tr.path().empty()) {
    const std::string path = tr.path();
    const std::size_t events = tr.event_count();
    tr.flush();
    std::fprintf(stderr, "trace written to %s (%zu events)\n", path.c_str(),
                 events);
  }
  obs::MetricsRegistry& m = obs::metrics();
  if (m.enabled()) {
    print_phase_breakdown(stderr);
    if (!m.path().empty()) {
      m.flush();
      std::fprintf(stderr, "metrics written to %s\n", m.path().c_str());
    }
  }
}

}  // namespace simcov::harness
