#include "harness/experiment.hpp"

#include "core/grid.hpp"
#include "core/reference_sim.hpp"
#include "util/error.hpp"

namespace simcov::harness {

std::vector<VoxelId> RunSpec::resolve_foi() const {
  if (!foi.empty()) return foi;
  const Grid grid(params.dim_x, params.dim_y, params.dim_z);
  return foi_uniform_random(grid, params.num_foi, params.seed);
}

BackendResult run_reference(const RunSpec& spec) {
  ReferenceSim sim(spec.params, spec.resolve_foi());
  sim.run(spec.params.num_steps);
  BackendResult out;
  out.history = sim.history();
  return out;
}

BackendResult run_cpu(const RunSpec& spec, int cpu_ranks) {
  cpu::CpuSimOptions opt;
  opt.num_ranks = cpu_ranks;
  opt.area_scale = spec.area_scale;
  cpu::CpuRunResult r = cpu::run_cpu_sim(spec.params, spec.resolve_foi(), opt);
  BackendResult out;
  out.history = std::move(r.history);
  out.cost = r.cost;
  out.modeled_seconds = r.cost.total_s;
  return out;
}

BackendResult run_gpu(const RunSpec& spec, int gpu_ranks,
                      gpu::GpuVariant variant) {
  gpu::GpuSimOptions opt;
  opt.num_ranks = gpu_ranks;
  opt.variant = variant;
  opt.area_scale = spec.area_scale;
  gpu::GpuRunResult r = gpu::run_gpu_sim(spec.params, spec.resolve_foi(), opt);
  BackendResult out;
  out.history = std::move(r.history);
  out.cost = r.cost;
  out.modeled_seconds = r.cost.total_s;
  return out;
}

double speedup(const BackendResult& cpu, const BackendResult& gpu) {
  SIMCOV_REQUIRE(gpu.modeled_seconds > 0.0, "GPU runtime is zero");
  return cpu.modeled_seconds / gpu.modeled_seconds;
}

}  // namespace simcov::harness
