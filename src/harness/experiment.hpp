#pragma once
// Experiment harness: uniform entry points the benchmark binaries use to
// regenerate the paper's tables and figures.
//
// A RunSpec describes one simulation configuration (grid, steps, FOI, seed,
// and the area-scale factor mapping our scaled-down grid to the paper's);
// run_cpu / run_gpu execute it on the requested backend with the requested
// resources and return both the scientific output (time series) and the
// modeled runtime from the performance model.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/decomposition.hpp"
#include "core/foi.hpp"
#include "core/params.hpp"
#include "core/stats.hpp"
#include "pgas/comm_stats.hpp"
#include "perfmodel/cost_model.hpp"
#include "simcov_cpu/cpu_sim.hpp"
#include "simcov_gpu/gpu_sim.hpp"

namespace simcov::harness {

struct RunSpec {
  SimParams params;
  /// Explicit FOI voxels; when empty, params.num_foi uniform-random seeds
  /// (keyed by params.seed) are generated.
  std::vector<VoxelId> foi;
  /// Modeled-time extrapolation factor: paper-scale voxels / our voxels.
  double area_scale = 1.0;
  /// Sub-domain shape (paper Fig. 1B); the decomposition ablation bench
  /// flips this to compare halo traffic.
  Decomposition::Kind decomp = Decomposition::Kind::kBlock2D;
  /// KernelCheck (gpusim/check.hpp) for GPU runs: access-set race
  /// detection, plus bit-determinism certification under permuted thread
  /// schedules.  Also enabled by SIMCOV_KERNEL_CHECK.
  bool check_kernels = false;
  bool permute_schedules = false;

  std::vector<VoxelId> resolve_foi() const;
};

struct BackendResult {
  TimeSeries history;
  perfmodel::RunCost cost;
  double modeled_seconds = 0.0;  ///< == cost.total_s
  /// Host wall-clock seconds of the simulation call itself (excludes FOI
  /// resolution and report building) — the *measured* side of the
  /// measured-vs-modeled drift report.  Zero only if a backend forgets to
  /// time itself.
  double measured_wall_s = 0.0;
  /// Per-rank communication counters from the run, including the
  /// per-destination comm matrix (empty for the serial reference).
  std::vector<pgas::CommStats> comm_by_rank;

  /// Sum of comm_by_rank (all ranks' counters + merged comm matrix).
  pgas::CommStats comm_total() const;
};

/// Serial reference run (no cost model; correctness baseline).
BackendResult run_reference(const RunSpec& spec);

/// SIMCoV-CPU with `cpu_ranks` ranks (one per modeled core).
BackendResult run_cpu(const RunSpec& spec, int cpu_ranks);

/// SIMCoV-GPU with `gpu_ranks` virtual GPUs and the given variant.
BackendResult run_gpu(const RunSpec& spec, int gpu_ranks,
                      gpu::GpuVariant variant = gpu::GpuVariant::combined());

/// The paper's resource tuples pair G GPUs with 32*G CPU cores.
constexpr int cpus_for_gpus(int gpus) { return 32 * gpus; }

/// Formats a speedup annotation as in Figs. 6-8 (CPU runtime / GPU runtime).
double speedup(const BackendResult& cpu, const BackendResult& gpu);

/// Enables the process-wide tracer and/or metrics registry (src/obs) for the
/// given output paths; an empty path leaves the corresponding collector as
/// configured by the environment (SIMCOV_TRACE / SIMCOV_METRICS).  Paths are
/// validated up front — an unwritable path throws simcov::Error immediately
/// rather than after the simulation has run.  `trace_ring` > 0 overrides the
/// tracer's ring capacity (--trace-ring=N); 0 defers to SIMCOV_TRACE_RING or
/// the built-in default.  A ring override with no trace path re-sizes an
/// environment-enabled tracer in place.
void configure_observability(const std::string& trace_path,
                             const std::string& metrics_path,
                             std::size_t trace_ring = 0);

/// Flushes the trace and metrics to their configured paths and, when metrics
/// were collected, prints the measured per-phase wall-clock breakdown table
/// to stderr.  Safe to call when observability is disabled (no-op).
void finish_observability();

}  // namespace simcov::harness
