#pragma once
// Aligned text tables and CSV series output for the benchmark harness.
//
// Every bench binary prints (a) an aligned human-readable table matching the
// rows/series the paper reports and (b) optional CSV for plotting.  Keeping
// this in one place makes the bench output uniform across figures.

#include <string>
#include <vector>

namespace simcov {

/// A simple column-aligned table.  Cells are strings; callers format numbers
/// with the precision appropriate to the figure being reproduced.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  std::string to_string() const;

  /// Renders as CSV (comma-separated, quotes when needed).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` significant-ish decimal digits (fixed).
std::string fmt(double value, int prec = 2);

/// Formats "{g,c}" compute-resource tuples as in the paper's x-axes.
std::string fmt_resources(int gpus, int cpus);

}  // namespace simcov
