#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace simcov {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SIMCOV_REQUIRE(!header_.empty(), "table must have at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  SIMCOV_REQUIRE(cells.size() == header_.size(),
                 "row has " + std::to_string(cells.size()) +
                     " cells, table has " + std::to_string(header_.size()) +
                     " columns");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c], '-') << "  ";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << value;
  return os.str();
}

std::string fmt_resources(int gpus, int cpus) {
  return "{" + std::to_string(gpus) + "," + std::to_string(cpus) + "}";
}

}  // namespace simcov
