#pragma once
// Counter-based pseudo-random number generation.
//
// Every stochastic decision in the simulation is a *pure function* of its
// simulation coordinates: (seed, timestep, voxel, stream).  This is the
// property that makes the whole reproduction testable: the serial reference
// simulator, the CPU-parallel baseline and the virtual-GPU implementation
// all ask the same question ("does epithelial cell at voxel v become
// infected at step t?") and get the same answer regardless of how the domain
// is decomposed, how many ranks run, or which backend executes the update.
//
// The paper's bid-based T cell conflict resolution (§3.1) relies on exactly
// this style of RNG on the device: each T cell draws a bid from "a large
// range of integers" and neighbouring GPUs resolve identical winners from
// halo-exchanged bids.  We additionally fold the source voxel id into the
// low bits of the bid so that bids are unique by construction and the
// paper's "true ties are possible but ignorable" caveat becomes "ties are
// impossible" (see BidDraw below).
//
// The mixer is the SplitMix64 finalizer (Steele et al.), a well-studied
// 64-bit avalanche function; statistical quality is exercised by the rng
// unit tests (equidistribution and independence smoke checks).

#include <cstdint>

namespace simcov {

/// Identifies *which* decision at a given (step, voxel) a draw feeds, so that
/// independent decisions never share a counter.
enum class RngStream : std::uint64_t {
  kInfection = 0x1001,       ///< healthy -> incubating trial
  kIncubationPeriod = 0x1002,///< Poisson incubation-period sample
  kExpressingPeriod = 0x1003,///< Poisson expressing-period sample
  kApoptosisPeriod = 0x1004, ///< Poisson apoptosis-period sample
  kTCellDirection = 0x2001,  ///< T cell movement target choice
  kTCellBid = 0x2002,        ///< T cell movement bid value
  kTCellBindChoice = 0x2003, ///< which expressing neighbour to try to bind
  kTCellBindBid = 0x2004,    ///< binding-competition bid value
  kExtravasate = 0x3001,     ///< extravasation location / acceptance
  kExtravasateProb = 0x3002, ///< extravasation probability trial
  kGeneric = 0x7001,         ///< examples / tests
};

namespace rng_detail {

/// SplitMix64 finalizer: full-avalanche 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace rng_detail

/// A counter-based generator: stateless, O(1) to "seek", and identical on
/// every backend.  Copies are free; there is no sequence to advance.
class CounterRng {
 public:
  constexpr explicit CounterRng(std::uint64_t seed) : seed_(seed) {}

  /// Raw 64-bit draw for decision `stream` at (step, entity).
  /// `entity` is usually a voxel id; `salt` distinguishes repeated draws
  /// within one decision (e.g. rejection sampling iterations).
  constexpr std::uint64_t draw(std::uint64_t step, std::uint64_t entity,
                               RngStream stream, std::uint64_t salt = 0) const {
    using rng_detail::mix64;
    std::uint64_t h = mix64(seed_ ^ 0x243f6a8885a308d3ULL);
    h = mix64(h ^ step);
    h = mix64(h ^ entity);
    h = mix64(h ^ static_cast<std::uint64_t>(stream));
    h = mix64(h ^ salt);
    return h;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform(std::uint64_t step, std::uint64_t entity,
                           RngStream stream, std::uint64_t salt = 0) const {
    // 53 high bits -> [0,1) with full double precision.
    return static_cast<double>(draw(step, entity, stream, salt) >> 11) *
           (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint32_t uniform_int(std::uint64_t step, std::uint64_t entity,
                                      RngStream stream, std::uint32_t n,
                                      std::uint64_t salt = 0) const {
    // 64-bit multiply-shift; bias is < 2^-32 which is negligible for the
    // small ranges (neighbour counts, tile counts) used here.
    const std::uint64_t r = draw(step, entity, stream, salt);
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(r) * n) >> 64);
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  constexpr bool bernoulli(std::uint64_t step, std::uint64_t entity,
                           RngStream stream, double p,
                           std::uint64_t salt = 0) const {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform(step, entity, stream, salt) < p;
  }

  /// Poisson sample by inversion (Knuth's algorithm); mean must be modest
  /// (incubation periods are O(100)), so we cap iterations defensively.
  std::uint32_t poisson(std::uint64_t step, std::uint64_t entity,
                        RngStream stream, double mean) const;

  constexpr std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Bid values for spatial resource competition (§3.1).  The top 32 bits are
/// a pseudo-random draw, the bottom 32 bits are the source voxel id, so two
/// distinct competitors can never tie, and every rank computes the same
/// winner from the same inputs.
constexpr std::uint64_t make_bid(const CounterRng& rng, std::uint64_t step,
                                 std::uint64_t source_voxel, RngStream stream) {
  const std::uint64_t r = rng.draw(step, source_voxel, stream);
  return (r & 0xffffffff00000000ULL) |
         (source_voxel & 0x00000000ffffffffULL);
}

/// Recovers the source voxel encoded in a bid (used when executing moves).
constexpr std::uint32_t bid_source(std::uint64_t bid) {
  return static_cast<std::uint32_t>(bid & 0xffffffffULL);
}

}  // namespace simcov
