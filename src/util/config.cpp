#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace simcov {

namespace {

std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    SIMCOV_REQUIRE(eq != std::string::npos,
                   "config line " + std::to_string(lineno) +
                       " is not 'key = value': '" + line + "'");
    auto key = trim(line.substr(0, eq));
    auto value = trim(line.substr(eq + 1));
    SIMCOV_REQUIRE(!key.empty(), "config line " + std::to_string(lineno) +
                                     " has an empty key");
    cfg.set(key, value);
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  SIMCOV_REQUIRE(in.good(), "cannot open config file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return from_string(text.str());
}

Config Config::from_args(int argc, const char* const argv[]) {
  Config cfg;
  for (int i = 0; i < argc; ++i) {
    std::string tok = argv[i];
    auto eq = tok.find('=');
    SIMCOV_REQUIRE(eq != std::string::npos && eq > 0,
                   "argument '" + tok + "' is not key=value");
    cfg.set(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Config::find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  auto v = find(key);
  SIMCOV_REQUIRE(v.has_value(), "missing required config key '" + key + "'");
  return *v;
}

std::string Config::get_string(const std::string& key,
                               const std::string& dflt) const {
  return find(key).value_or(dflt);
}

long long Config::get_int(const std::string& key) const {
  const std::string v = get_string(key);
  try {
    size_t pos = 0;
    long long result = std::stoll(v, &pos);
    SIMCOV_REQUIRE(pos == v.size(), "trailing characters in integer");
    return result;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("config key '" + key + "' is not an integer: '" + v + "'");
  }
}

long long Config::get_int(const std::string& key, long long dflt) const {
  return has(key) ? get_int(key) : dflt;
}

double Config::get_double(const std::string& key) const {
  const std::string v = get_string(key);
  try {
    size_t pos = 0;
    double result = std::stod(v, &pos);
    SIMCOV_REQUIRE(pos == v.size(), "trailing characters in number");
    return result;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("config key '" + key + "' is not a number: '" + v + "'");
  }
}

double Config::get_double(const std::string& key, double dflt) const {
  return has(key) ? get_double(key) : dflt;
}

bool Config::get_bool(const std::string& key) const {
  const std::string v = lower(get_string(key));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("config key '" + key + "' is not a boolean: '" + v + "'");
}

bool Config::get_bool(const std::string& key, bool dflt) const {
  return has(key) ? get_bool(key) : dflt;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace simcov
