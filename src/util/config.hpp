#pragma once
// Minimal key=value configuration store.
//
// SIMCoV (the original) reads a flat config file of `key = value` lines;
// examples and benchmark harnesses here accept the same format plus
// command-line overrides (`key=value` arguments).  Typed getters validate
// and convert, throwing simcov::Error with the offending key on failure.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace simcov {

class Config {
 public:
  Config() = default;

  /// Parses `key = value` lines.  '#' starts a comment; blank lines are
  /// ignored.  Later keys override earlier ones.
  static Config from_string(const std::string& text);

  /// Loads a file in the same format.  Throws Error if unreadable.
  static Config from_file(const std::string& path);

  /// Parses argv-style `key=value` tokens (used by examples/benches).
  /// Tokens without '=' raise an error so typos are caught.
  static Config from_args(int argc, const char* const argv[]);

  void set(const std::string& key, const std::string& value);

  /// Merges `other` into this config; other's values win.
  void merge(const Config& other);

  bool has(const std::string& key) const;

  /// Typed getters with defaults.  The throwing variants (no default) are
  /// used for required keys.
  std::string get_string(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& dflt) const;
  long long get_int(const std::string& key) const;
  long long get_int(const std::string& key, long long dflt) const;
  double get_double(const std::string& key) const;
  double get_double(const std::string& key, double dflt) const;
  bool get_bool(const std::string& key) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// All keys in sorted order (for dumping effective configs into reports).
  std::vector<std::string> keys() const;

 private:
  std::optional<std::string> find(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace simcov
