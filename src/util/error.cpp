#include "util/error.hpp"

#include <sstream>

namespace simcov::detail {

void throw_error(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << msg << " [failed: " << expr << " at " << file << ":" << line << "]";
  throw Error(os.str());
}

}  // namespace simcov::detail
