#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace simcov {

std::uint32_t CounterRng::poisson(std::uint64_t step, std::uint64_t entity,
                                  RngStream stream, double mean) const {
  SIMCOV_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  // Knuth inversion: product of uniforms until it drops below e^-mean.
  // Each iteration uses a distinct salt so draws are independent.
  const double limit = std::exp(-mean);
  double product = 1.0;
  std::uint32_t k = 0;
  // Defensive cap: P(k > mean + 40*sqrt(mean)) is astronomically small.
  const std::uint32_t cap =
      static_cast<std::uint32_t>(mean + 40.0 * std::sqrt(mean) + 16.0);
  while (k < cap) {
    product *= uniform(step, entity, stream, /*salt=*/k + 1);
    if (product <= limit) break;
    ++k;
  }
  return k;
}

}  // namespace simcov
