#pragma once
// Error-handling helpers shared by every module.
//
// The library is exception-based: precondition violations and invalid
// configurations throw simcov::Error (a std::runtime_error) with a message
// that includes the failing expression and source location.  Tests use the
// failure-injection suites to assert that misuse is rejected rather than
// silently accepted.

#include <stdexcept>
#include <string>

namespace simcov {

/// Exception type thrown on precondition violations and invalid configs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace simcov

/// Precondition check that is always active (benchmarks rely on rejected
/// misconfigurations, so this is not compiled out in release builds).
#define SIMCOV_REQUIRE(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::simcov::detail::throw_error(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                     \
  } while (0)

/// Internal invariant check; same behaviour, different wording for readers.
#define SIMCOV_ASSERT(expr, msg) SIMCOV_REQUIRE(expr, msg)
