# Empty dependencies file for stats_foi_params_test.
# This may be replaced when dependencies are built.
