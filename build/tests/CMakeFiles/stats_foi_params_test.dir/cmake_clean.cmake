file(REMOVE_RECURSE
  "CMakeFiles/stats_foi_params_test.dir/stats_foi_params_test.cpp.o"
  "CMakeFiles/stats_foi_params_test.dir/stats_foi_params_test.cpp.o.d"
  "stats_foi_params_test"
  "stats_foi_params_test.pdb"
  "stats_foi_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_foi_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
