# Empty dependencies file for io_airways_test.
# This may be replaced when dependencies are built.
