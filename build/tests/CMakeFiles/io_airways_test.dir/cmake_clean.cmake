file(REMOVE_RECURSE
  "CMakeFiles/io_airways_test.dir/io_airways_test.cpp.o"
  "CMakeFiles/io_airways_test.dir/io_airways_test.cpp.o.d"
  "io_airways_test"
  "io_airways_test.pdb"
  "io_airways_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_airways_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
