file(REMOVE_RECURSE
  "CMakeFiles/tiles_test.dir/tiles_test.cpp.o"
  "CMakeFiles/tiles_test.dir/tiles_test.cpp.o.d"
  "tiles_test"
  "tiles_test.pdb"
  "tiles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
