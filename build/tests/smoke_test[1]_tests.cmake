add_test([=[Smoke.ReferenceRuns]=]  /root/repo/build/tests/smoke_test [==[--gtest_filter=Smoke.ReferenceRuns]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Smoke.ReferenceRuns]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 600)
set(  smoke_test_TESTS Smoke.ReferenceRuns)
