# Empty compiler generated dependencies file for lung_slice.
# This may be replaced when dependencies are built.
