file(REMOVE_RECURSE
  "CMakeFiles/lung_slice.dir/lung_slice.cpp.o"
  "CMakeFiles/lung_slice.dir/lung_slice.cpp.o.d"
  "lung_slice"
  "lung_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lung_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
