# Empty dependencies file for foi_sweep.
# This may be replaced when dependencies are built.
