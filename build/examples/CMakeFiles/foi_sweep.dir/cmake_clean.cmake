file(REMOVE_RECURSE
  "CMakeFiles/foi_sweep.dir/foi_sweep.cpp.o"
  "CMakeFiles/foi_sweep.dir/foi_sweep.cpp.o.d"
  "foi_sweep"
  "foi_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foi_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
