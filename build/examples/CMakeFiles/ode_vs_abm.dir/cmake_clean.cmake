file(REMOVE_RECURSE
  "CMakeFiles/ode_vs_abm.dir/ode_vs_abm.cpp.o"
  "CMakeFiles/ode_vs_abm.dir/ode_vs_abm.cpp.o.d"
  "ode_vs_abm"
  "ode_vs_abm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_vs_abm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
