# Empty dependencies file for ode_vs_abm.
# This may be replaced when dependencies are built.
