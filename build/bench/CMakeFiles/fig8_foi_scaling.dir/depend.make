# Empty dependencies file for fig8_foi_scaling.
# This may be replaced when dependencies are built.
