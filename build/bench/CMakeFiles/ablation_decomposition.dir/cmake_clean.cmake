file(REMOVE_RECURSE
  "CMakeFiles/ablation_decomposition.dir/ablation_decomposition.cpp.o"
  "CMakeFiles/ablation_decomposition.dir/ablation_decomposition.cpp.o.d"
  "ablation_decomposition"
  "ablation_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
