# Empty compiler generated dependencies file for fig7_weak_scaling.
# This may be replaced when dependencies are built.
