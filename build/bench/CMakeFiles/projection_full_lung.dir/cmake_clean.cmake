file(REMOVE_RECURSE
  "CMakeFiles/projection_full_lung.dir/projection_full_lung.cpp.o"
  "CMakeFiles/projection_full_lung.dir/projection_full_lung.cpp.o.d"
  "projection_full_lung"
  "projection_full_lung.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_full_lung.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
