# Empty dependencies file for projection_full_lung.
# This may be replaced when dependencies are built.
