# Empty dependencies file for simcov_cpu.
# This may be replaced when dependencies are built.
