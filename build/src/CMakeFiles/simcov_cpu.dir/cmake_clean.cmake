file(REMOVE_RECURSE
  "CMakeFiles/simcov_cpu.dir/simcov_cpu/cpu_sim.cpp.o"
  "CMakeFiles/simcov_cpu.dir/simcov_cpu/cpu_sim.cpp.o.d"
  "libsimcov_cpu.a"
  "libsimcov_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcov_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
