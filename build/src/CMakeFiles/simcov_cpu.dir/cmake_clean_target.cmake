file(REMOVE_RECURSE
  "libsimcov_cpu.a"
)
