file(REMOVE_RECURSE
  "libsimcov_util.a"
)
