file(REMOVE_RECURSE
  "CMakeFiles/simcov_util.dir/util/config.cpp.o"
  "CMakeFiles/simcov_util.dir/util/config.cpp.o.d"
  "CMakeFiles/simcov_util.dir/util/error.cpp.o"
  "CMakeFiles/simcov_util.dir/util/error.cpp.o.d"
  "CMakeFiles/simcov_util.dir/util/rng.cpp.o"
  "CMakeFiles/simcov_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/simcov_util.dir/util/table.cpp.o"
  "CMakeFiles/simcov_util.dir/util/table.cpp.o.d"
  "libsimcov_util.a"
  "libsimcov_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcov_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
