# Empty compiler generated dependencies file for simcov_util.
# This may be replaced when dependencies are built.
