file(REMOVE_RECURSE
  "CMakeFiles/simcov.dir/tools/simcov_main.cpp.o"
  "CMakeFiles/simcov.dir/tools/simcov_main.cpp.o.d"
  "simcov"
  "simcov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
