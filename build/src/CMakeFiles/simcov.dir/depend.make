# Empty dependencies file for simcov.
# This may be replaced when dependencies are built.
