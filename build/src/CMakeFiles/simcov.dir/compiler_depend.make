# Empty compiler generated dependencies file for simcov.
# This may be replaced when dependencies are built.
