file(REMOVE_RECURSE
  "libsimcov_core.a"
)
