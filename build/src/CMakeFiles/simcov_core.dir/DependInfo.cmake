
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/airways.cpp" "src/CMakeFiles/simcov_core.dir/core/airways.cpp.o" "gcc" "src/CMakeFiles/simcov_core.dir/core/airways.cpp.o.d"
  "/root/repo/src/core/decomposition.cpp" "src/CMakeFiles/simcov_core.dir/core/decomposition.cpp.o" "gcc" "src/CMakeFiles/simcov_core.dir/core/decomposition.cpp.o.d"
  "/root/repo/src/core/foi.cpp" "src/CMakeFiles/simcov_core.dir/core/foi.cpp.o" "gcc" "src/CMakeFiles/simcov_core.dir/core/foi.cpp.o.d"
  "/root/repo/src/core/ode_baseline.cpp" "src/CMakeFiles/simcov_core.dir/core/ode_baseline.cpp.o" "gcc" "src/CMakeFiles/simcov_core.dir/core/ode_baseline.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/simcov_core.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/simcov_core.dir/core/params.cpp.o.d"
  "/root/repo/src/core/reference_sim.cpp" "src/CMakeFiles/simcov_core.dir/core/reference_sim.cpp.o" "gcc" "src/CMakeFiles/simcov_core.dir/core/reference_sim.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/CMakeFiles/simcov_core.dir/core/rules.cpp.o" "gcc" "src/CMakeFiles/simcov_core.dir/core/rules.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/simcov_core.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/simcov_core.dir/core/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simcov_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
