file(REMOVE_RECURSE
  "CMakeFiles/simcov_core.dir/core/airways.cpp.o"
  "CMakeFiles/simcov_core.dir/core/airways.cpp.o.d"
  "CMakeFiles/simcov_core.dir/core/decomposition.cpp.o"
  "CMakeFiles/simcov_core.dir/core/decomposition.cpp.o.d"
  "CMakeFiles/simcov_core.dir/core/foi.cpp.o"
  "CMakeFiles/simcov_core.dir/core/foi.cpp.o.d"
  "CMakeFiles/simcov_core.dir/core/ode_baseline.cpp.o"
  "CMakeFiles/simcov_core.dir/core/ode_baseline.cpp.o.d"
  "CMakeFiles/simcov_core.dir/core/params.cpp.o"
  "CMakeFiles/simcov_core.dir/core/params.cpp.o.d"
  "CMakeFiles/simcov_core.dir/core/reference_sim.cpp.o"
  "CMakeFiles/simcov_core.dir/core/reference_sim.cpp.o.d"
  "CMakeFiles/simcov_core.dir/core/rules.cpp.o"
  "CMakeFiles/simcov_core.dir/core/rules.cpp.o.d"
  "CMakeFiles/simcov_core.dir/core/stats.cpp.o"
  "CMakeFiles/simcov_core.dir/core/stats.cpp.o.d"
  "libsimcov_core.a"
  "libsimcov_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcov_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
