# Empty compiler generated dependencies file for simcov_core.
# This may be replaced when dependencies are built.
