# Empty dependencies file for simcov_io.
# This may be replaced when dependencies are built.
