file(REMOVE_RECURSE
  "libsimcov_io.a"
)
