file(REMOVE_RECURSE
  "CMakeFiles/simcov_io.dir/io/snapshot.cpp.o"
  "CMakeFiles/simcov_io.dir/io/snapshot.cpp.o.d"
  "libsimcov_io.a"
  "libsimcov_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcov_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
