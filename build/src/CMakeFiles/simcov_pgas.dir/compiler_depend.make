# Empty compiler generated dependencies file for simcov_pgas.
# This may be replaced when dependencies are built.
