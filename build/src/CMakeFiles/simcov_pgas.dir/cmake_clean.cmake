file(REMOVE_RECURSE
  "CMakeFiles/simcov_pgas.dir/pgas/runtime.cpp.o"
  "CMakeFiles/simcov_pgas.dir/pgas/runtime.cpp.o.d"
  "libsimcov_pgas.a"
  "libsimcov_pgas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcov_pgas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
