file(REMOVE_RECURSE
  "libsimcov_pgas.a"
)
