file(REMOVE_RECURSE
  "CMakeFiles/simcov_perfmodel.dir/perfmodel/cost_model.cpp.o"
  "CMakeFiles/simcov_perfmodel.dir/perfmodel/cost_model.cpp.o.d"
  "libsimcov_perfmodel.a"
  "libsimcov_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcov_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
