file(REMOVE_RECURSE
  "libsimcov_perfmodel.a"
)
