# Empty dependencies file for simcov_perfmodel.
# This may be replaced when dependencies are built.
