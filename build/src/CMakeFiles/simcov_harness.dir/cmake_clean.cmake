file(REMOVE_RECURSE
  "CMakeFiles/simcov_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/simcov_harness.dir/harness/experiment.cpp.o.d"
  "libsimcov_harness.a"
  "libsimcov_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcov_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
