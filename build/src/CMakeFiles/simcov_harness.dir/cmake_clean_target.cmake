file(REMOVE_RECURSE
  "libsimcov_harness.a"
)
