# Empty dependencies file for simcov_harness.
# This may be replaced when dependencies are built.
