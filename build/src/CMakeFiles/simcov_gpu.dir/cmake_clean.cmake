file(REMOVE_RECURSE
  "CMakeFiles/simcov_gpu.dir/simcov_gpu/gpu_sim.cpp.o"
  "CMakeFiles/simcov_gpu.dir/simcov_gpu/gpu_sim.cpp.o.d"
  "CMakeFiles/simcov_gpu.dir/simcov_gpu/tiles.cpp.o"
  "CMakeFiles/simcov_gpu.dir/simcov_gpu/tiles.cpp.o.d"
  "libsimcov_gpu.a"
  "libsimcov_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcov_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
