file(REMOVE_RECURSE
  "libsimcov_gpu.a"
)
