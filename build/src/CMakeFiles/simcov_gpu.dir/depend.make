# Empty dependencies file for simcov_gpu.
# This may be replaced when dependencies are built.
