// Scientific use-case: spatially distributed infection increases viral load.
//
// This reproduces the headline result of the original SIMCoV study (Moses
// et al. 2021 [25], the model this paper accelerates): holding the *total*
// initial virion load fixed, spreading it across more foci of infection
// (FOI) produces a larger infection, because each focus grows its own
// front.  The paper's Fig. 8 turns the same variable into a performance
// axis; this example shows why scientists sweep it in the first place.
//
// Usage: foi_sweep [key=value ...]  (SimParams keys; num_foi is swept)

#include <cstdio>
#include <exception>

#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/params.hpp"
#include "core/reference_sim.hpp"
#include "core/stats.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  try {
    simcov::SimParams base = simcov::SimParams::bench_fast();
    base.dim_x = 192;
    base.dim_y = 192;
    base.num_steps = 500;
    base.tcell_initial_delay = 200;
    // Reliable establishment even from small per-focus seeds, so the sweep
    // isolates the *spatial distribution* effect (as in [25]).
    base.infectivity = 0.12;
    base.virus_production = 0.12;
    base.apply(simcov::Config::from_args(argc - 1, argv + 1));
    base.validate();

    const double total_initial_virus = 1.0;  // held fixed across the sweep

    std::printf("# FOI sweep on %dx%d, %lld steps, total initial virus %.2f\n",
                base.dim_x, base.dim_y,
                static_cast<long long>(base.num_steps), total_initial_virus);
    simcov::TextTable t({"FOI", "virus/focus", "peak virus", "final virus",
                         "final dead cells", "peak T cells"});
    std::vector<double> peaks;
    for (long long foi : {1LL, 4LL, 16LL, 64LL}) {
      simcov::SimParams p = base;
      p.num_foi = foi;
      p.initial_virus =
          static_cast<float>(total_initial_virus / static_cast<double>(foi));
      const simcov::Grid grid(p.dim_x, p.dim_y, p.dim_z);
      simcov::ReferenceSim sim(p,
                               simcov::foi_uniform_random(grid, foi, p.seed));
      sim.run(p.num_steps);
      const auto virus = simcov::series_virus(sim.history());
      const auto tcells = simcov::series_tcells(sim.history());
      const auto& last = sim.history().back();
      t.add_row({std::to_string(foi), simcov::fmt(p.initial_virus, 4),
                 simcov::fmt(simcov::peak(virus), 1),
                 simcov::fmt(virus.back(), 1), std::to_string(last.dead()),
                 simcov::fmt(simcov::peak(tcells), 0)});
      peaks.push_back(simcov::peak(virus));
    }
    std::printf("%s\n", t.to_string().c_str());
    // [25]'s effect: more foci -> more simultaneous growth fronts -> higher
    // viral load, until per-focus seeds become too dilute to establish
    // reliably (the 64-FOI row divides the fixed total into 1/64 doses).
    const bool rising = peaks[1] > peaks[0] && peaks[2] > peaks[1];
    std::printf("distributed infection increases viral load (1 -> 16 FOI): %s\n",
                rising ? "confirmed" : "NOT observed with these parameters");
    if (peaks[3] < peaks[2]) {
      std::printf("note: at 64 FOI the per-focus dose is too dilute to "
                  "establish every focus (establishment stochasticity).\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
