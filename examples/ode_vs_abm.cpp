// Why spatial structure matters: ODE baseline vs the spatial ABM.
//
// The paper (§2.2) contrasts SIMCoV with earlier well-mixed ODE models in
// which every virion can reach every cell.  This example runs both on a
// matched setup (same number of epithelial cells, one initial infection
// site / virion dose) and prints the early viral growth side by side: the
// well-mixed ODE grows exponentially from the start, while the spatial
// model's infection can only grow at its front, so its early expansion is
// polynomial — one of the core reasons SIMCoV fits patient data better with
// spatially distributed FOI (Moses et al. [25]).
//
// Usage: ode_vs_abm [key=value ...]  (SimParams keys)

#include <cmath>
#include <cstdio>
#include <exception>

#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/ode_baseline.hpp"
#include "core/params.hpp"
#include "core/reference_sim.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  try {
    simcov::SimParams p = simcov::SimParams::bench_fast();
    p.dim_x = 100;
    p.dim_y = 100;
    p.num_steps = 420;
    p.num_foi = 1;
    // Compare pure growth shapes: no immune response in either model.
    p.tcell_initial_delay = 1000000;
    p.apply(simcov::Config::from_args(argc - 1, argv + 1));
    p.validate();

    const simcov::Grid grid(p.dim_x, p.dim_y, p.dim_z);
    simcov::ReferenceSim abm(p, simcov::foi_uniform_random(grid, 1, p.seed));
    abm.run(p.num_steps);
    const auto abm_virus = simcov::series_virus(abm.history());

    simcov::ode::OdeParams op;
    op.n_cells = static_cast<double>(grid.num_voxels());
    op.effector_delay = 1e9;  // growth-shape comparison: no response
    const auto ode = simcov::ode::integrate(op, p.num_steps);

    std::printf("# well-mixed ODE vs spatial ABM, %lld cells, 1 infection "
                "site\n",
                static_cast<long long>(grid.num_voxels()));
    simcov::TextTable t({"step", "ODE virions", "ABM virions",
                         "ODE growth x", "ABM growth x"});
    const int checkpoints[] = {50, 100, 150, 200, 300, 400};
    double prev_ode = 0.0, prev_abm = 0.0;
    for (int s : checkpoints) {
      if (s > p.num_steps) break;
      const double ov = ode[static_cast<std::size_t>(s)].v;
      const double av = abm_virus[static_cast<std::size_t>(s - 1)];
      t.add_row({std::to_string(s), simcov::fmt(ov, 2), simcov::fmt(av, 2),
                 prev_ode > 0 ? simcov::fmt(ov / prev_ode, 1) : "-",
                 prev_abm > 0 ? simcov::fmt(av / prev_abm, 1) : "-"});
      prev_ode = ov;
      prev_abm = av;
    }
    std::printf("%s\n", t.to_string().c_str());

    // Quantify the shape difference over the pre-immune window: fit the
    // growth-factor ratio between two doubling windows; exponential growth
    // keeps a constant factor, front-limited growth slows down.
    auto factor = [](const std::vector<double>& v, int a, int b) {
      return v[static_cast<std::size_t>(b)] / std::max(1e-9, v[static_cast<std::size_t>(a)]);
    };
    std::vector<double> ode_v;
    for (const auto& s : ode) ode_v.push_back(s.v);
    // Windows start after the ABM front is reliably established (the
    // single-voxel seeding phase is stochastic) and end before ODE target
    // cells deplete.
    const double ode_early = factor(ode_v, 120, 220);
    const double ode_late = factor(ode_v, 220, 320);
    const double abm_early = factor(abm_virus, 120, 220);
    const double abm_late = factor(abm_virus, 220, 320);
    std::printf("growth factor ratio late/early (1.0 = exponential): "
                "ODE %.2f, ABM %.2f\n",
                ode_late / ode_early, abm_late / abm_early);
    std::printf("spatial growth is front-limited (sub-exponential): %s\n",
                (abm_late / abm_early) < 0.8 * (ode_late / ode_early)
                    ? "confirmed"
                    : "not visible with these parameters");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
