// Quickstart: run a small SIMCoV infection on the serial reference engine
// and print the infection time series.
//
// Usage:
//   quickstart [key=value ...]
// e.g.
//   quickstart dim_x=128 dim_y=128 num_steps=800 num_foi=4 seed=7
//
// Any SimParams key is accepted (see src/core/params.hpp).  Output is one
// CSV row every `print_every` steps: the aggregates SIMCoV logs to study
// infection dynamics (paper Fig. 5 uses exactly these series).

#include <cstdio>
#include <exception>
#include <string>

#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/params.hpp"
#include "core/reference_sim.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  try {
    simcov::Config cfg = simcov::Config::from_args(argc - 1, argv + 1);
    long long print_every = 20;
    if (cfg.has("print_every")) {
      print_every = cfg.get_int("print_every");
      simcov::Config rest;  // strip the harness-only key before apply()
      for (const auto& k : cfg.keys()) {
        if (k != "print_every") rest.set(k, cfg.get_string(k));
      }
      cfg = rest;
    }

    simcov::SimParams params = simcov::SimParams::bench_fast();
    params.dim_x = 128;
    params.dim_y = 128;
    params.num_steps = 800;
    params.apply(cfg);
    params.validate();

    const simcov::Grid grid(params.dim_x, params.dim_y, params.dim_z);
    const auto foi =
        simcov::foi_uniform_random(grid, params.num_foi, params.seed);

    std::printf("# SIMCoV quickstart: %s\n", params.summary().c_str());
    std::printf(
        "step,virus,chem,healthy,incubating,expressing,apoptotic,dead,"
        "tcells_tissue,tcells_vascular\n");

    simcov::ReferenceSim sim(params, foi);
    for (long long s = 0; s < params.num_steps; ++s) {
      sim.step();
      if ((s + 1) % print_every == 0 || s + 1 == params.num_steps) {
        const simcov::StepStats& st = sim.history().back();
        std::printf("%lld,%.1f,%.1f,%llu,%llu,%llu,%llu,%llu,%llu,%.1f\n",
                    s + 1, st.virus_total, st.chem_total,
                    static_cast<unsigned long long>(st.healthy()),
                    static_cast<unsigned long long>(st.incubating()),
                    static_cast<unsigned long long>(st.expressing()),
                    static_cast<unsigned long long>(st.apoptotic()),
                    static_cast<unsigned long long>(st.dead()),
                    static_cast<unsigned long long>(st.tcells_tissue),
                    st.tcells_vascular);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
