// Lung-slice scenario: branching airway structure + CT-scan-like patchy
// initial infection (paper §6: CT scans of diseased patients "feature large
// patchy lesions ... distributed throughout the lung", and airway topology
// is overlaid on the voxel grid as empty voxels).
//
// Renders PPM frames of the infection spreading around the bronchial tree
// and writes the aggregate time series as CSV.
//
// Usage: lung_slice [key=value ...]   (SimParams keys, plus:
//   frames=<n>        number of PPM frames to write (default 6)
//   lesions=<n>       number of CT lesions (default 12)
//   lesion_radius=<r> mean lesion radius in voxels (default 4)
//   out=<prefix>      output path prefix (default "lung_slice"))

#include <cstdio>
#include <exception>
#include <string>

#include "core/airways.hpp"
#include "core/foi.hpp"
#include "core/grid.hpp"
#include "core/params.hpp"
#include "core/reference_sim.hpp"
#include "io/snapshot.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  try {
    simcov::Config cfg = simcov::Config::from_args(argc - 1, argv + 1);
    const long long frames = cfg.has("frames") ? cfg.get_int("frames") : 6;
    const long long lesions = cfg.has("lesions") ? cfg.get_int("lesions") : 12;
    const double lesion_radius =
        cfg.has("lesion_radius") ? cfg.get_double("lesion_radius") : 4.0;
    const std::string prefix = cfg.get_string("out", "lung_slice");
    simcov::Config sim_cfg;
    for (const auto& k : cfg.keys()) {
      if (k != "frames" && k != "lesions" && k != "lesion_radius" &&
          k != "out") {
        sim_cfg.set(k, cfg.get_string(k));
      }
    }

    simcov::SimParams params = simcov::SimParams::bench_fast();
    params.dim_x = 192;
    params.dim_y = 192;
    params.num_steps = 600;
    params.tcell_generation_rate = 14.0;
    params.apply(sim_cfg);
    params.validate();

    const simcov::Grid grid(params.dim_x, params.dim_y, params.dim_z);

    // Bronchial tree entering from the top of the slice.
    simcov::AirwayParams airway;
    airway.generations = 6;
    airway.seed = params.seed;
    const auto airway_set = simcov::airway_voxels(grid, airway);

    // CT-like patchy lesions, skipping voxels inside airway lumens.
    auto lesion_voxels =
        simcov::foi_ct_lesions(grid, lesions, lesion_radius, params.seed);
    std::vector<simcov::VoxelId> foi;
    {
      std::vector<simcov::VoxelId> sorted_airways = airway_set;
      for (simcov::VoxelId v : lesion_voxels) {
        if (!std::binary_search(sorted_airways.begin(), sorted_airways.end(),
                                v)) {
          foi.push_back(v);
        }
      }
    }

    std::printf("# lung slice: %s\n", params.summary().c_str());
    std::printf("# airway voxels: %zu, lesion FOI voxels: %zu\n",
                airway_set.size(), foi.size());

    simcov::ReferenceSim sim(params, foi, airway_set);
    const long long frame_every =
        std::max<long long>(1, params.num_steps / std::max(frames, 1LL));
    int frame_no = 0;
    for (long long s = 0; s < params.num_steps; ++s) {
      sim.step();
      if ((s + 1) % frame_every == 0 && frame_no < frames) {
        const std::string path =
            prefix + "_frame" + std::to_string(frame_no++) + ".ppm";
        simcov::io::write_ppm(path, simcov::io::render_state(sim));
        const auto& st = sim.history().back();
        std::printf("step %5lld  virus %10.1f  tcells %6llu  -> %s\n", s + 1,
                    st.virus_total,
                    static_cast<unsigned long long>(st.tcells_tissue),
                    path.c_str());
      }
    }
    const std::string csv = prefix + "_series.csv";
    simcov::io::write_series_csv(csv, sim.history());
    std::printf("# wrote %s (%zu steps)\n", csv.c_str(),
                sim.history().size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
