// Parallel API quickstart: run the identical simulation on all three
// engines — the serial reference, SIMCoV-CPU (rank-per-core baseline with
// active lists + RPC tiebreaks) and SIMCoV-GPU (virtual GPUs with tiled
// memory, bid-based conflict resolution and tree reductions) — verify they
// agree bit-for-bit, and report the modeled target-machine runtimes.
//
// Usage: backend_compare [key=value ...]  (SimParams keys, plus
//   cpu_ranks=<n> gpu_ranks=<n>)

#include <cstdio>
#include <exception>

#include "harness/experiment.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  try {
    simcov::Config cfg = simcov::Config::from_args(argc - 1, argv + 1);
    const int cpu_ranks =
        static_cast<int>(cfg.has("cpu_ranks") ? cfg.get_int("cpu_ranks") : 8);
    const int gpu_ranks =
        static_cast<int>(cfg.has("gpu_ranks") ? cfg.get_int("gpu_ranks") : 4);
    simcov::Config sim_cfg;
    for (const auto& k : cfg.keys()) {
      if (k != "cpu_ranks" && k != "gpu_ranks") sim_cfg.set(k, cfg.get_string(k));
    }

    simcov::harness::RunSpec spec;
    spec.params = simcov::SimParams::bench_fast();
    spec.params.dim_x = 128;
    spec.params.dim_y = 128;
    spec.params.num_steps = 300;
    spec.params.apply(sim_cfg);
    spec.params.validate();

    std::printf("# backend comparison: %s\n", spec.params.summary().c_str());

    const auto ref = simcov::harness::run_reference(spec);
    // Model the run as a 1/39-linear-scale stand-in for a paper-sized
    // problem, exactly as the figure benches do (see bench/bench_common.hpp):
    // each virtual GPU carries one A100's per-step load, each CPU rank 16
    // cores' worth.
    spec.area_scale = 95.4;
    const auto cpu = simcov::harness::run_cpu(spec, cpu_ranks);
    spec.area_scale = 1526.0;
    const auto gpu = simcov::harness::run_gpu(spec, gpu_ranks);

    // All three engines execute the same rules from the same counter-based
    // RNG; integer statistics must agree exactly.
    bool agree = true;
    for (std::size_t i = 0; i < ref.history.size(); ++i) {
      agree = agree &&
              ref.history[i].tcells_tissue == cpu.history[i].tcells_tissue &&
              ref.history[i].tcells_tissue == gpu.history[i].tcells_tissue &&
              ref.history[i].epi_counts == cpu.history[i].epi_counts &&
              ref.history[i].epi_counts == gpu.history[i].epi_counts;
    }
    std::printf("engines agree on every step: %s\n\n",
                agree ? "yes" : "NO (bug!)");

    simcov::TextTable t({"engine", "resources", "modeled runtime (s)",
                         "update agents (s)", "reduce stats (s)"});
    t.add_row({"reference (serial)", "1 host core", "n/a", "n/a", "n/a"});
    t.add_row({"SIMCoV-CPU", std::to_string(cpu_ranks) + " ranks (x16 cores)",
               simcov::fmt(cpu.modeled_seconds),
               simcov::fmt(cpu.cost.update_agents_s()),
               simcov::fmt(cpu.cost.reduce_stats_s())});
    t.add_row({"SIMCoV-GPU", std::to_string(gpu_ranks) + " virtual GPUs",
               simcov::fmt(gpu.modeled_seconds),
               simcov::fmt(gpu.cost.update_agents_s()),
               simcov::fmt(gpu.cost.reduce_stats_s())});
    std::printf("%s\n", t.to_string().c_str());
    std::printf("modeled GPU speedup over CPU: %.2fx\n",
                simcov::harness::speedup(cpu, gpu));
    return agree ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
