#!/usr/bin/env python3
"""Validate and regression-gate the BENCH_*.json bench reports.

Every bench binary writes a machine-readable ``BENCH_<name>.json``
(schema ``simcov-bench/1``, see src/obs/report.hpp).  This script does
two independent jobs:

1. **Schema validation** — structural checks every report must pass on
   any machine: required fields present, the per-(src,dst) comm matrix
   sums exactly to the aggregate comm counters, drift rows are
   internally consistent, and no shape check failed.

2. **Regression gate** — compare against committed baselines in
   ``bench/baselines/``.  Metrics are classed by how machine-dependent
   they are:

   * *exact*   — comm counts (excluding ``barrier_wait_ns``), the comm
                 matrix, params, ranks, backend, shape-check verdicts.
                 These are deterministic; any difference is a failure.
   * *modeled* — ``modeled_s`` / ``modeled_by_phase_s`` come from the
                 cost model and are deterministic in principle, but tiny
                 float reassociation across compilers is tolerated:
                 relative drift <= 2% warns, an *increase* beyond 2%
                 fails, a decrease beyond 2% warns (likely a genuine
                 model change — refresh the baseline).
   * *measured* — wall-clock numbers vary by machine; reported only,
                 unless ``--measured-factor F`` is given, which fails a
                 report whose measured_wall_s exceeds baseline * F.

Baselines are *normalized*: machine fingerprint, measured phase
breakdowns, drift rows and free-form metrics are stripped so committed
baselines stay machine-independent (a single reference
``measured_wall_s`` per config is kept for --measured-factor).

Usage:
  python3 tools/check_bench.py [REPORT.json ...]
      No reports given: checks every BENCH_*.json in the current
      directory.  A report without a committed baseline gets schema
      validation plus a warning.
  python3 tools/check_bench.py --update-baselines [REPORT.json ...]
      Rewrite bench/baselines/<name>.json from the given (or found)
      reports.  Commit the result.

Exit status: 0 = all checks passed (warnings allowed), 1 = any failure.
"""

import argparse
import glob
import json
import os
import sys

SCHEMA = "simcov-bench/1"
MODELED_RTOL = 0.02
# report "comm" aggregate key -> matrix edge key
MATRIX_SUMS = {
    "puts": "puts",
    "put_bytes": "put_bytes",
    "rpcs_sent": "rpcs",
    "rpc_bytes": "rpc_bytes",
}
COMM_EXACT_KEYS = [
    "rpcs_sent", "rpc_bytes", "puts", "put_bytes", "barriers",
    "reductions", "reduction_bytes", "broadcasts", "broadcast_bytes",
]  # everything except barrier_wait_ns, which is wall time


class Log:
    def __init__(self):
        self.failures = 0
        self.warnings = 0

    def fail(self, ctx, msg):
        self.failures += 1
        print(f"FAIL  {ctx}: {msg}")

    def warn(self, ctx, msg):
        self.warnings += 1
        print(f"WARN  {ctx}: {msg}")

    def note(self, ctx, msg):
        print(f"note  {ctx}: {msg}")


def validate(report, ctx, log):
    """Machine-independent structural checks on one report."""
    if report.get("schema") != SCHEMA:
        log.fail(ctx, f"schema is {report.get('schema')!r}, want {SCHEMA!r}")
        return
    for key in ("bench", "experiment", "machine", "configs", "shape_checks",
                "metrics"):
        if key not in report:
            log.fail(ctx, f"missing top-level key {key!r}")
            return
    for check in report["shape_checks"]:
        if not check.get("ok", False):
            log.fail(ctx, f"shape check failed: {check.get('claim')!r}")
    for cfg in report["configs"]:
        cctx = f"{ctx} [{cfg.get('label', '?')}]"
        for key in ("label", "backend", "ranks", "params", "measured_wall_s",
                    "modeled_s", "measured_by_phase_s", "modeled_by_phase_s",
                    "drift", "comm"):
            if key not in cfg:
                log.fail(cctx, f"missing config key {key!r}")
                return
        comm = cfg["comm"]
        matrix = comm.get("matrix", [])
        if comm.get("matrix_pairs") != len(matrix):
            log.fail(cctx, f"matrix_pairs={comm.get('matrix_pairs')} but "
                           f"matrix has {len(matrix)} edges")
        edges = [(e["src"], e["dst"]) for e in matrix]
        if edges != sorted(edges):
            log.fail(cctx, "comm matrix is not sorted by (src, dst)")
        if len(edges) != len(set(edges)):
            log.fail(cctx, "comm matrix has duplicate (src, dst) edges")
        for src, dst in edges:
            if not (0 <= src < cfg["ranks"] and 0 <= dst < cfg["ranks"]):
                log.fail(cctx, f"matrix edge ({src},{dst}) outside "
                               f"[0,{cfg['ranks']})")
        # The core invariant: per-pair traffic sums exactly to aggregates.
        for agg_key, edge_key in MATRIX_SUMS.items():
            total = sum(e[edge_key] for e in matrix)
            if total != comm.get(agg_key):
                log.fail(cctx, f"sum(matrix.{edge_key})={total} != "
                               f"comm.{agg_key}={comm.get(agg_key)}")
        for row in cfg["drift"]:
            want = row["measured_share"] - row["modeled_share"]
            if abs(row["divergence"] - want) > 1e-9:
                log.fail(cctx, f"drift[{row['phase']}].divergence="
                               f"{row['divergence']} != measured_share - "
                               f"modeled_share = {want}")


def rel_diff(new, old):
    if old == 0.0:
        return 0.0 if new == 0.0 else float("inf")
    return (new - old) / old


def compare_modeled(new, old, ctx, log):
    d = rel_diff(new, old)
    if abs(d) <= MODELED_RTOL:
        return
    if d > 0:
        log.fail(ctx, f"modeled time regressed: {old:g} -> {new:g} s "
                      f"({d * 100:+.1f}%, tolerance {MODELED_RTOL * 100:.0f}%)")
    else:
        log.warn(ctx, f"modeled time improved: {old:g} -> {new:g} s "
                      f"({d * 100:+.1f}%) — refresh the baseline if intended")


def compare(report, baseline, ctx, log, measured_factor):
    """Regression gate: report vs a normalized committed baseline."""
    new_cfgs = {c["label"]: c for c in report["configs"]}
    old_cfgs = {c["label"]: c for c in baseline["configs"]}
    for label in old_cfgs:
        if label not in new_cfgs:
            log.fail(ctx, f"config {label!r} present in baseline but missing "
                          f"from report")
    for label in new_cfgs:
        if label not in old_cfgs:
            log.warn(ctx, f"config {label!r} has no baseline entry "
                          f"(new config? refresh baselines)")
    for label, old in old_cfgs.items():
        new = new_cfgs.get(label)
        if new is None:
            continue
        cctx = f"{ctx} [{label}]"
        # exact class
        for key in ("backend", "ranks", "params"):
            if new[key] != old[key]:
                log.fail(cctx, f"{key} changed: {old[key]!r} -> {new[key]!r}")
        for key in COMM_EXACT_KEYS:
            if new["comm"][key] != old["comm"][key]:
                log.fail(cctx, f"comm.{key} changed: {old['comm'][key]} -> "
                               f"{new['comm'][key]}")
        old_matrix = old["comm"]["matrix"]
        new_matrix = new["comm"]["matrix"]
        if new_matrix != old_matrix:
            log.fail(cctx, f"comm matrix changed ({len(old_matrix)} -> "
                           f"{len(new_matrix)} edges, or traffic differs)")
        # modeled class
        compare_modeled(new["modeled_s"], old["modeled_s"], cctx, log)
        phases = set(old["modeled_by_phase_s"]) | set(new["modeled_by_phase_s"])
        for phase in sorted(phases):
            compare_modeled(new["modeled_by_phase_s"].get(phase, 0.0),
                            old["modeled_by_phase_s"].get(phase, 0.0),
                            f"{cctx} phase {phase}", log)
        # measured class
        old_wall = old.get("measured_wall_s", 0.0)
        new_wall = new["measured_wall_s"]
        if old_wall > 0.0:
            log.note(cctx, f"measured wall {new_wall:.3g} s "
                           f"(baseline machine: {old_wall:.3g} s, "
                           f"x{new_wall / old_wall:.2f})")
            if measured_factor is not None and \
                    new_wall > old_wall * measured_factor:
                log.fail(cctx, f"measured wall {new_wall:.3g} s exceeds "
                               f"baseline {old_wall:.3g} s * factor "
                               f"{measured_factor:g}")
    # shape-check verdicts are exact
    old_checks = {c["claim"]: c["ok"] for c in baseline.get("shape_checks", [])}
    new_checks = {c["claim"]: c["ok"] for c in report.get("shape_checks", [])}
    for claim, ok in old_checks.items():
        if claim not in new_checks:
            log.fail(ctx, f"shape check disappeared: {claim!r}")
        elif new_checks[claim] != ok:
            log.fail(ctx, f"shape check flipped {ok} -> {new_checks[claim]}: "
                          f"{claim!r}")


def normalize(report):
    """Strip machine-dependent content so the committed baseline is stable."""
    out = {
        "schema": report["schema"],
        "bench": report["bench"],
        "experiment": report["experiment"],
        "configs": [],
        "shape_checks": report["shape_checks"],
    }
    for cfg in report["configs"]:
        out["configs"].append({
            "label": cfg["label"],
            "backend": cfg["backend"],
            "ranks": cfg["ranks"],
            "params": cfg["params"],
            # One machine-specific reference point, used only by
            # --measured-factor; everything else measured is stripped.
            "measured_wall_s": cfg["measured_wall_s"],
            "modeled_s": cfg["modeled_s"],
            "modeled_by_phase_s": cfg["modeled_by_phase_s"],
            "comm": {k: v for k, v in cfg["comm"].items()
                     if k != "barrier_wait_ns"},
        })
    return out


def dump_baseline(b):
    """One line per config / shape check: diffs after a baseline refresh show
    which configuration moved without expanding thousand-edge comm matrices
    across ten thousand lines."""
    def c(v):
        return json.dumps(v, sort_keys=True, separators=(",", ":"))
    lines = ["{"]
    lines.append(f' "schema": {c(b["schema"])},')
    lines.append(f' "bench": {c(b["bench"])},')
    lines.append(f' "experiment": {c(b["experiment"])},')
    lines.append(' "configs": [')
    for i, cfg in enumerate(b["configs"]):
        comma = "," if i + 1 < len(b["configs"]) else ""
        lines.append(f"  {c(cfg)}{comma}")
    lines.append(" ],")
    lines.append(' "shape_checks": [')
    for i, chk in enumerate(b["shape_checks"]):
        comma = "," if i + 1 < len(b["shape_checks"]) else ""
        lines.append(f"  {c(chk)}{comma}")
    lines.append(" ]")
    lines.append("}")
    return "\n".join(lines) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("reports", nargs="*",
                    help="BENCH_*.json files (default: ./BENCH_*.json)")
    ap.add_argument("--baselines", default=None,
                    help="baseline dir (default: <repo>/bench/baselines)")
    ap.add_argument("--update-baselines", action="store_true",
                    help="rewrite baselines from the given reports")
    ap.add_argument("--measured-factor", type=float, default=None,
                    help="fail if measured_wall_s > baseline * FACTOR "
                         "(default: measured times are report-only)")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_dir = args.baselines or os.path.join(repo_root, "bench",
                                                  "baselines")
    reports = args.reports or sorted(glob.glob("BENCH_*.json"))
    if not reports:
        print("FAIL  no BENCH_*.json reports found (run the bench binaries "
              "from the directory holding their output, or pass paths)")
        return 1

    log = Log()
    for path in reports:
        ctx = os.path.basename(path)
        try:
            with open(path) as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            log.fail(ctx, f"unreadable or invalid JSON: {e}")
            continue
        validate(report, ctx, log)
        name = report.get("bench")
        if not name:
            continue
        baseline_path = os.path.join(baseline_dir, f"{name}.json")
        if args.update_baselines:
            os.makedirs(baseline_dir, exist_ok=True)
            with open(baseline_path, "w") as f:
                f.write(dump_baseline(normalize(report)))
            log.note(ctx, f"baseline written: {baseline_path}")
            continue
        if not os.path.exists(baseline_path):
            log.warn(ctx, f"no committed baseline at {baseline_path} — "
                          f"schema-checked only (use --update-baselines)")
            continue
        with open(baseline_path) as f:
            baseline = json.load(f)
        compare(report, baseline, ctx, log, args.measured_factor)

    verb = "updated" if args.update_baselines else "checked"
    print(f"{verb} {len(reports)} report(s): {log.failures} failure(s), "
          f"{log.warnings} warning(s)")
    return 1 if log.failures else 0


if __name__ == "__main__":
    sys.exit(main())
