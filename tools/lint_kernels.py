#!/usr/bin/env python3
"""Source-level kernel-discipline lint for the virtual-GPU layer.

KernelCheck (src/gpusim/check.hpp) can only analyze what flows through the
instrumented access paths: GlobalSpan reads/writes/atomics and BlockCtx
shared memory.  A kernel body that reaches device data any other way —
raw pointers, host staging copies, casts that launder a pointer past the
type system — executes unchecked, and a race through that side channel is
invisible to the dynamic analyzer.  This lint closes the loophole
statically: every lambda passed to ``parallel_for`` / ``launch_blocks``
(including the ``for_active_voxels`` wrapper) in ``src/`` must touch
device data only through the instrumented abstractions.

Rules (rule name -> what is banned inside a kernel lambda):
  raw-pointer      .raw( — bypasses the GlobalSpan access hooks
  reinterpret-cast reinterpret_cast — pointer laundering
  const-cast       const_cast — writing through a read-only view
  host-copy        copy_to_host / copy_from_host — host I/O mid-kernel
  host-fill        .fill( — whole-buffer host-side store mid-kernel
  storage-access   storage_ — reaching into DeviceBuffer internals
  heap-alloc       new / malloc — device code must not allocate

A deliberate exception is suppressed in place with a trailing comment
naming the rule::

    ptr = buf.raw();  // lint-kernels: allow(raw-pointer) host-side probe

Tests are exempt (gpusim_test seeds violations on purpose); only
``src/`` is scanned.  Exit status: 0 = clean, 1 = findings (printed as
``file:line: rule: source line``).

Usage:
  python3 tools/lint_kernels.py [ROOT]      # default ROOT: repo src/
"""

import os
import re
import sys

# Call sites of the kernel-launch entry points.  The leading ``.``/``->``
# (or the wrapper's name) keeps the *definitions* in device.hpp out.
LAUNCH_RE = re.compile(
    r"(?:(?:\.|->)\s*(?:parallel_for|launch_blocks)|\bfor_active_voxels)\s*\(")

# A region is only a kernel if it actually contains a lambda; the
# for_active_voxels *declaration* (``const char* name, F&& body``) has none.
LAMBDA_RE = re.compile(r"\[[&=]|\[this")

RULES = [
    ("raw-pointer", re.compile(r"\.\s*raw\s*\(")),
    ("reinterpret-cast", re.compile(r"\breinterpret_cast\b")),
    ("const-cast", re.compile(r"\bconst_cast\b")),
    ("host-copy", re.compile(r"\bcopy_(?:to|from)_host\b")),
    ("host-fill", re.compile(r"\.\s*fill\s*\(")),
    ("storage-access", re.compile(r"\bstorage_\b")),
    ("heap-alloc", re.compile(r"\bnew\b|\bmalloc\s*\(")),
]

ALLOW_RE = re.compile(r"//.*lint-kernels:\s*allow\(([a-z-]+)\)")


def balanced_region(text, open_paren):
    """Returns the index one past the ``)`` matching ``text[open_paren]``,
    skipping comments, string and char literals (an unbalanced file returns
    len(text), which just widens the lint region — safe)."""
    depth = 0
    i = open_paren
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            i = text.find("\n", i)
            if i < 0:
                return n
        elif c == "/" and nxt == "*":
            i = text.find("*/", i + 2)
            if i < 0:
                return n
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
    return n


def strip_line_comment(line):
    """Drops a // comment (good enough per line: kernel bodies in this repo
    do not put // inside string literals)."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def lint_file(path, text):
    findings = []
    line_starts = [0]
    for m in re.finditer("\n", text):
        line_starts.append(m.end())

    def line_no(offset):
        lo, hi = 0, len(line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    for m in LAUNCH_RE.finditer(text):
        open_paren = text.rfind("(", m.start(), m.end())
        end = balanced_region(text, open_paren)
        region = text[open_paren:end]
        if not LAMBDA_RE.search(region):
            continue  # declaration or config-only call, not a kernel body
        base_line = line_no(open_paren)
        for k, raw_line in enumerate(region.splitlines()):
            allowed = {a.group(1) for a in ALLOW_RE.finditer(raw_line)}
            code = strip_line_comment(raw_line)
            for rule, pat in RULES:
                if pat.search(code) and rule not in allowed:
                    findings.append(
                        (path, base_line + k, rule, raw_line.strip()))
    return findings


def main(argv):
    root = argv[1] if len(argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    findings = []
    scanned = 0
    for dirpath, _, names in sorted(os.walk(root)):
        for name in sorted(names):
            if not name.endswith((".cpp", ".hpp")):
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            if "parallel_for" not in text and "launch_blocks" not in text:
                continue
            scanned += 1
            findings.extend(lint_file(os.path.relpath(path), text))
    for path, line, rule, src in findings:
        print(f"{path}:{line}: {rule}: {src}")
    if findings:
        print(f"lint-kernels: {len(findings)} finding(s) in {scanned} "
              "file(s) with kernel launches", file=sys.stderr)
        return 1
    print(f"lint-kernels: clean ({scanned} file(s) with kernel launches)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
