// Figure 6 (§4.2): strong scaling of SIMCoV-GPU vs SIMCoV-CPU.
//
// Fixed problem size; compute resources double per configuration from
// {4 GPUs, 128 CPU cores} to {64, 2048}.  Expected shape: SIMCoV-GPU is
// several times faster at the base configuration but saturates as GPUs are
// added (the per-GPU slice becomes too small), while SIMCoV-CPU keeps
// scaling; the speedup annotation decays from ~5x to below 1x at the top.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace simcov;
  bench::Reporter rep(
      "fig6_strong_scaling",
      "Figure 6: strong scaling (fixed problem, resources double)",
      "10,000^2 voxels, 16 FOI, 33,120 steps, {4,128}..{64,2048}",
      "256^2 voxels, 16 FOI, 300 steps, GPU ranks = paper GPUs, CPU ranks = "
      "paper cores / 16");

  const double paper_speedups[5] = {4.98, 3.38, 2.59, 1.38, 0.85};

  harness::RunSpec spec;
  spec.params = bench::bench_params(256, 256, 300, 16);

  std::vector<double> gpu_t, cpu_t;
  TextTable t({"{GPUs,CPUs}", "SIMCoV-CPU (s)", "SIMCoV-GPU (s)",
               "Speedup", "Paper speedup", "CPU optimal (s)",
               "GPU optimal (s)"});
  for (int i = 0; i < 5; ++i) {
    const int gpus = 4 << i;
    const int paper_cpus = 128 << i;
    spec.area_scale = bench::kGpuAreaScale;
    const auto g = rep.run_gpu("gpu " + std::to_string(gpus), spec, gpus);
    spec.area_scale = bench::kCpuAreaScale;
    const auto c = rep.run_cpu("cpu " + std::to_string(paper_cpus), spec,
                              bench::cpu_ranks_for(paper_cpus));
    gpu_t.push_back(g.modeled_seconds);
    cpu_t.push_back(c.modeled_seconds);
    t.add_row({fmt_resources(gpus, paper_cpus), fmt(c.modeled_seconds),
               fmt(g.modeled_seconds), fmt(harness::speedup(c, g)),
               fmt(paper_speedups[i]), fmt(cpu_t[0] / (1 << i)),
               fmt(gpu_t[0] / (1 << i))});
    std::fprintf(stderr, "  ran {%d,%d}\n", gpus, paper_cpus);
  }
  std::printf("%s\n", t.to_string().c_str());

  rep.shape_check("GPU beats CPU at the base configuration",
                           gpu_t[0] < cpu_t[0]);
  rep.shape_check(
      "speedup decays monotonically as resources grow",
      cpu_t[0] / gpu_t[0] > cpu_t[2] / gpu_t[2] &&
          cpu_t[2] / gpu_t[2] > cpu_t[4] / gpu_t[4]);
  rep.shape_check(
      "GPU saturates: last doubling gains < 30% (paper: curve flattens)",
      gpu_t[4] > 0.7 * gpu_t[3]);
  rep.shape_check(
      "CPU keeps scaling: last doubling gains > 30%",
      cpu_t[4] < 0.7 * cpu_t[3]);
  rep.shape_check("speedup drops below ~1x at {64,2048} (paper 0.85)",
                           cpu_t[4] / gpu_t[4] < 1.3);
  rep.finish();
  return 0;
}
