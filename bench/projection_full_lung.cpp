// Projection: what would a full-lung simulation need? (paper §6)
//
// "The total air volume of the average pair of healthy adult human lungs is
// approximately six liters ... with five cubic micron voxels this
// corresponds roughly to a simulation size of order 10^13 voxels — far
// larger than any SIMCoV simulation run to date.  To achieve this scale
// will require exascale supercomputers."
//
// This bench measures the per-voxel-step cost of both backends on a real
// (scaled) run, then projects the wall time of one simulated day
// (1,440 one-minute steps) of a 10^13-voxel lung across GPU counts — the
// quantitative version of the paper's closing argument.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace simcov;
  bench::Reporter rep(
      "projection_full_lung",
      "Projection: full-lung (10^13 voxels) runtime vs GPU count (§6)",
      "discussion estimate only ('will require exascale supercomputers')",
      "per-voxel-step costs measured on a 256^2 run at paper per-rank load, "
      "linear projection to 1e13 voxels, dense activity");

  // Measure per-(active)voxel-step modeled cost at paper per-rank load.
  harness::RunSpec spec;
  spec.params = bench::bench_params(256, 256, 300, 64);  // dense activity
  spec.area_scale = bench::kGpuAreaScale;
  const auto g = rep.run_gpu("gpu 4 ranks dense", spec, 4);
  spec.area_scale = bench::kCpuAreaScale;
  const auto c = rep.run_cpu("cpu 8 ranks dense", spec, bench::cpu_ranks_for(128));

  // Modeled voxel-steps at paper scale for the measured runs.
  const double voxel_steps_gpu = 256.0 * 256.0 * bench::kGpuAreaScale * 300.0;
  const double voxel_steps_cpu = 256.0 * 256.0 * bench::kCpuAreaScale *
                                 bench::kCpuRankCompression * 300.0;
  // Per-unit rates, normalized to the resources used (4 GPUs / 128 cores).
  const double s_per_voxelstep_per_gpu = g.modeled_seconds * 4.0 / voxel_steps_gpu;
  const double s_per_voxelstep_per_core =
      c.modeled_seconds * 128.0 / voxel_steps_cpu;

  std::printf("measured: %.3g s/voxel-step/GPU, %.3g s/voxel-step/core\n\n",
              s_per_voxelstep_per_gpu, s_per_voxelstep_per_core);

  const double lung_voxels = 1e13;
  const double steps_per_day = 1440.0;  // one-minute timesteps
  TextTable t({"GPUs", "= CPU cores", "GPU: one sim-day", "CPU: one sim-day"});
  auto human = [](double seconds) {
    if (seconds > 2 * 86400) return fmt(seconds / 86400.0, 1) + " days";
    if (seconds > 2 * 3600) return fmt(seconds / 3600.0, 1) + " hours";
    return fmt(seconds, 0) + " s";
  };
  for (double gpus : {512.0, 2048.0, 8192.0, 37888.0 /* full Frontier-class */}) {
    const double cores = 32.0 * gpus;
    const double tg =
        lung_voxels * steps_per_day * s_per_voxelstep_per_gpu / gpus;
    const double tc =
        lung_voxels * steps_per_day * s_per_voxelstep_per_core / cores;
    t.add_row({fmt(gpus, 0), fmt(cores, 0), human(tg), human(tc)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Assumes dense activity and perfect weak scaling beyond the measured\n"
      "range (Fig. 7 supports near-flat GPU weak scaling).  The point of the\n"
      "paper's closing argument survives quantification: only a GPU-dense\n"
      "exascale machine brings a simulated day of a full lung into\n"
      "practical turnaround.\n");
  rep.metric("s_per_voxelstep_per_gpu", s_per_voxelstep_per_gpu);
  rep.metric("s_per_voxelstep_per_core", s_per_voxelstep_per_core);
  rep.finish();
  return 0;
}
