// Ablation: domain decomposition shape (paper Fig. 1B: "block (top) or
// linear (bottom) domain decomposition, which has impacts on communication
// overhead").
//
// At a fixed rank count, a linear decomposition has boundaries of total
// length ~(R-1) * dim_x, while a 2D block decomposition's scale like
// ~2 * sqrt(R) * dim.  Both backends run both shapes; communication volume
// (RPCs / halo bytes) and modeled runtime are reported.

#include <cstdio>

#include "bench_common.hpp"
#include "simcov_cpu/cpu_sim.hpp"
#include "simcov_gpu/gpu_sim.hpp"

int main() {
  using namespace simcov;
  bench::print_header(
      "Ablation: linear vs 2D block decomposition (Fig. 1B design choice)",
      "(not a paper figure; supports the Fig. 1B design discussion)",
      "16 ranks each backend, 256^2 voxels, 16 FOI, 240 steps");

  SimParams params = bench::bench_params(256, 256, 240, 16);
  const Grid grid(params.dim_x, params.dim_y, params.dim_z);
  const auto foi = foi_uniform_random(grid, params.num_foi, params.seed);

  TextTable t({"backend", "decomposition", "modeled time (s)",
               "RPCs", "halo bytes"});
  for (const auto kind :
       {Decomposition::Kind::kBlock2D, Decomposition::Kind::kLinear}) {
    const char* kind_name =
        kind == Decomposition::Kind::kLinear ? "linear" : "2D block";
    {
      cpu::CpuSimOptions opt;
      opt.num_ranks = 16;
      opt.decomp = kind;
      opt.area_scale = bench::kCpuAreaScale;
      const auto r = cpu::run_cpu_sim(params, foi, opt);
      t.add_row({"SIMCoV-CPU", kind_name, fmt(r.cost.total_s),
                 std::to_string(r.total_rpcs),
                 std::to_string(r.total_put_bytes)});
    }
    {
      gpu::GpuSimOptions opt;
      opt.num_ranks = 16;
      opt.decomp = kind;
      opt.area_scale = bench::kGpuAreaScale;
      const auto r = gpu::run_gpu_sim(params, foi, opt);
      t.add_row({"SIMCoV-GPU", kind_name, fmt(r.cost.total_s), "0",
                 std::to_string(r.total_put_bytes)});
    }
    std::fprintf(stderr, "  %s done\n", kind_name);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("NOTE: both decompositions compute the identical simulation "
              "(bit-equal; see tests); the difference is pure "
              "communication/boundary geometry.\n");
  return 0;
}
