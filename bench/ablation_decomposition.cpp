// Ablation: domain decomposition shape (paper Fig. 1B: "block (top) or
// linear (bottom) domain decomposition, which has impacts on communication
// overhead").
//
// At a fixed rank count, a linear decomposition has boundaries of total
// length ~(R-1) * dim_x, while a 2D block decomposition's scale like
// ~2 * sqrt(R) * dim.  Both backends run both shapes; communication volume
// (RPCs / halo bytes) and modeled runtime are reported.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace simcov;
  bench::Reporter rep(
      "ablation_decomposition",
      "Ablation: linear vs 2D block decomposition (Fig. 1B design choice)",
      "(not a paper figure; supports the Fig. 1B design discussion)",
      "16 ranks each backend, 256^2 voxels, 16 FOI, 240 steps");

  harness::RunSpec spec;
  spec.params = bench::bench_params(256, 256, 240, 16);

  TextTable t({"backend", "decomposition", "modeled time (s)",
               "RPCs", "halo bytes"});
  for (const auto kind :
       {Decomposition::Kind::kBlock2D, Decomposition::Kind::kLinear}) {
    const char* kind_name =
        kind == Decomposition::Kind::kLinear ? "linear" : "2D block";
    spec.decomp = kind;
    {
      spec.area_scale = bench::kCpuAreaScale;
      const auto r = rep.run_cpu(std::string("cpu ") + kind_name, spec, 16);
      const pgas::CommStats comm = r.comm_total();
      t.add_row({"SIMCoV-CPU", kind_name, fmt(r.cost.total_s),
                 std::to_string(comm.rpcs_sent),
                 std::to_string(comm.put_bytes)});
    }
    {
      spec.area_scale = bench::kGpuAreaScale;
      const auto r = rep.run_gpu(std::string("gpu ") + kind_name, spec, 16);
      const pgas::CommStats comm = r.comm_total();
      t.add_row({"SIMCoV-GPU", kind_name, fmt(r.cost.total_s),
                 std::to_string(comm.rpcs_sent),
                 std::to_string(comm.put_bytes)});
    }
    std::fprintf(stderr, "  %s done\n", kind_name);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("NOTE: both decompositions compute the identical simulation "
              "(bit-equal; see tests); the difference is pure "
              "communication/boundary geometry.\n");
  rep.finish();
  return 0;
}
