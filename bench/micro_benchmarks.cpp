// Micro-benchmarks (google-benchmark) for the design choices DESIGN.md
// calls out: counter-RNG cost, tiled-layout index math, the diffusion
// stencil, atomic vs tree reduction on the virtual GPU, PGAS collective
// latency, and conflict-resolution throughput.  These measure *host wall
// time* of this repository's implementations (the figure benches report
// modeled target-machine time instead).

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/grid.hpp"
#include "core/rules.hpp"
#include "gpusim/gpusim.hpp"
#include "pgas/runtime.hpp"
#include "simcov_gpu/layout.hpp"
#include "util/rng.hpp"

namespace {

using namespace simcov;

void BM_RngDraw(benchmark::State& state) {
  const CounterRng rng(7);
  std::uint64_t step = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rng.draw(step++, 12345, RngStream::kTCellBid));
  }
}
BENCHMARK(BM_RngDraw);

void BM_RngPoisson(benchmark::State& state) {
  const CounterRng rng(7);
  std::uint64_t step = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rng.poisson(step++, 99, RngStream::kIncubationPeriod,
                    static_cast<double>(state.range(0))));
  }
}
BENCHMARK(BM_RngPoisson)->Arg(8)->Arg(64)->Arg(480);

void BM_TiledLayoutIndex(benchmark::State& state) {
  const gpu::TiledLayout lay(256, 256, static_cast<std::int32_t>(state.range(0)));
  std::int32_t x = 0, y = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lay.index(x, y));
    x = (x + 7) % 256;
    y = (y + 3) % 256;
  }
}
BENCHMARK(BM_TiledLayoutIndex)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_DiffusionStencilRow(benchmark::State& state) {
  const std::int32_t n = 256;
  std::vector<float> field(static_cast<std::size_t>(n) * n, 0.5f);
  std::vector<float> out(field.size());
  for (auto _ : state) {
    for (std::int32_t y = 1; y + 1 < n; ++y) {
      for (std::int32_t x = 1; x + 1 < n; ++x) {
        const std::size_t i = static_cast<std::size_t>(y) * n + x;
        const double sum = static_cast<double>(field[i - 1]) + field[i + 1] +
                           field[i - n] + field[i + n];
        out[i] = rules::diffuse(field[i], sum, 4, 0.15, 1e-5);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2));
}
BENCHMARK(BM_DiffusionStencilRow);

void BM_TCellIntent(benchmark::State& state) {
  const CounterRng rng(11);
  rules::NeighbourView nb;
  nb.count = 4;
  for (int i = 0; i < 4; ++i) {
    nb.ids[static_cast<std::size_t>(i)] = static_cast<VoxelId>(100 + i);
    nb.epi[static_cast<std::size_t>(i)] =
        (i == 2) ? EpiState::kExpressing : EpiState::kHealthy;
  }
  std::uint64_t step = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rules::tcell_intent(rng, step++, 555, EpiState::kHealthy, nb));
  }
}
BENCHMARK(BM_TCellIntent);

/// Atomic-per-voxel reduction vs shared-memory tree reduction on the
/// virtual GPU (§3.3) — both wall time and counted atomics differ sharply.
void BM_GpuReduce(benchmark::State& state) {
  const bool tree = state.range(0) != 0;
  const std::size_t n = 64 * 1024;
  gpusim::Device dev(0);
  gpusim::DeviceBuffer<float> data(dev, n, 0.25f);
  gpusim::DeviceBuffer<double> out(dev, 1, 0.0);
  const std::uint32_t bd = 128;
  for (auto _ : state) {
    out.fill(0.0);
    if (!tree) {
      dev.parallel_for({static_cast<std::uint32_t>(n / bd), bd}, [&](auto& t) {
        auto v = t.global(data);
        t.global(out).atomic_add(0,
                                 static_cast<double>(v.read(t.global_index())));
      });
    } else {
      const std::uint32_t blocks = 64;
      dev.launch_blocks({blocks, bd}, [&](auto& blk) {
        auto sh = blk.template shared<double>(bd);
        blk.for_each_thread([&](std::uint32_t tid) {
          auto v = blk.global(data);
          double acc = 0.0;
          for (std::size_t i = blk.block_idx() * bd + tid; i < n;
               i += static_cast<std::size_t>(blocks) * bd) {
            acc += static_cast<double>(v.read(i));
          }
          sh[tid] = acc;
        });
        for (std::uint32_t off = bd / 2; off > 0; off >>= 1) {
          blk.for_each_thread([&](std::uint32_t tid) {
            if (tid < off) sh[tid] += sh[tid + off];
          });
        }
        blk.for_each_thread([&](std::uint32_t tid) {
          if (tid == 0) blk.global(out).atomic_add(0, sh[0]);
        });
      });
    }
    benchmark::DoNotOptimize(dev.stats());
  }
  state.counters["atomics/iter"] = static_cast<double>(
      dev.stats().atomic_ops / static_cast<std::uint64_t>(state.iterations()));
}
BENCHMARK(BM_GpuReduce)->Arg(0)->Arg(1);

void BM_PgasAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    pgas::Runtime rt(ranks);
    rt.run([](pgas::Rank& r) {
      double v = static_cast<double>(r.id());
      for (int i = 0; i < 50; ++i) v = r.allreduce_sum(v) / r.world_size();
      benchmark::DoNotOptimize(v);
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_PgasAllreduce)->Arg(2)->Arg(4)->Arg(8);

/// Forwards console output unchanged while recording each benchmark's
/// per-iteration real time (normalized to ns) into the BENCH_*.json report.
class RecordingReporter : public benchmark::BenchmarkReporter {
 public:
  RecordingReporter(benchmark::BenchmarkReporter& inner, bench::Reporter& rep)
      : inner_(inner), rep_(rep) {}

  bool ReportContext(const Context& context) override {
    return inner_.ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double to_ns =
          1e9 / benchmark::GetTimeUnitMultiplier(run.time_unit);
      rep_.metric(run.benchmark_name() + ".real_ns",
                  run.GetAdjustedRealTime() * to_ns);
    }
    inner_.ReportRuns(runs);
  }

  void Finalize() override { inner_.Finalize(); }

 private:
  benchmark::BenchmarkReporter& inner_;
  bench::Reporter& rep_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  bench::Reporter rep(
      "micro_benchmarks", "Micro-benchmarks (host wall time, not modeled)",
      "n/a (design-choice microbenches, not a paper figure)",
      "google-benchmark over RNG / layout / stencil / reduction / PGAS");
  {
    benchmark::ConsoleReporter console;
    RecordingReporter recorder(console, rep);
    benchmark::RunSpecifiedBenchmarks(&recorder);
  }

  // One instrumented end-to-end run so this report — like every bench's —
  // also carries measured + modeled seconds, drift and a comm matrix.
  harness::RunSpec spec;
  spec.params = bench::bench_params(96, 96, 30, 2);
  spec.area_scale = bench::kGpuAreaScale;
  rep.run_gpu("instrumented gpu 4 ranks 96^2 x30", spec, 4);
  rep.finish();
  benchmark::Shutdown();
  return 0;
}
