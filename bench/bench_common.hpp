#pragma once
// Shared configuration for the figure/table reproduction benches.
//
// Scale mapping (documented in EXPERIMENTS.md): the paper's grids are
// 10,000^2 .. 40,000^2 voxels over 33,120 steps on Perlmutter.  Our
// functional runs shrink every linear dimension 39x (10,000 -> 256) and run
// a fast-spread parameter preset for a few hundred steps; the performance
// model extrapolates per-rank work back to paper scale:
//
//  * GPU backend: one virtual GPU per paper GPU (ranks match 1:1), so
//    area_scale = (10,000/256)^2 ~= 1526 makes each virtual GPU's modeled
//    per-step load equal the paper's per-A100 load.
//  * CPU backend: one rank per 16 paper cores (2048 threads is not a
//    sensible functional configuration), so area_scale = 1526/16 ~= 95.4
//    makes each rank's modeled load equal one paper core's.
//
// Modeled runtimes are therefore per-step comparable to the paper's
// machines; absolute totals are smaller because we run ~100x fewer steps.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace simcov::bench {

constexpr double kGpuAreaScale = 1526.0;
constexpr double kCpuAreaScale = 95.4;
constexpr int kCpuRankCompression = 16;

/// Our CPU rank count standing in for `paper_cores` paper cores.
constexpr int cpu_ranks_for(int paper_cores) {
  return paper_cores / kCpuRankCompression;
}

/// The fast-spread preset used by all performance benches, sized by caller.
inline SimParams bench_params(int dim_x, int dim_y, long long steps,
                              long long foi) {
  SimParams p = SimParams::bench_fast();
  p.dim_x = dim_x;
  p.dim_y = dim_y;
  p.num_steps = steps;
  p.num_foi = foi;
  p.seed = 42;
  return p;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_config,
                         const std::string& our_config) {
  std::string bar(72, '=');
  std::printf("%s\n%s\n", bar.c_str(), experiment.c_str());
  std::printf("paper config : %s\n", paper_config.c_str());
  std::printf("our config   : %s\n", our_config.c_str());
  std::printf("%s\n", bar.c_str());
}

inline void print_shape_check(const std::string& claim, bool holds) {
  std::printf("SHAPE CHECK: %-58s [%s]\n", claim.c_str(),
              holds ? "OK" : "MISS");
}

/// One object per bench binary: the human-readable output and the
/// machine-readable BENCH_<name>.json come from the same recorded runs.
///
/// Usage: construct with the bench name + header strings, route every
/// simulation through run_gpu/run_cpu/run_reference (each wraps the harness
/// call with in-memory metrics so the PhaseClock counters and comm matrix
/// are harvested into the report), record verdicts via shape_check() and
/// scalars via metric(), then finish() — which prints the aggregate
/// measured-vs-modeled drift table to stderr and writes the JSON.
///
/// Note: each instrumented run enables the in-memory metrics registry and
/// disables it afterwards; benches own the process-wide telemetry while
/// they run (SIMCOV_METRICS is ignored inside a bench binary).
class Reporter {
 public:
  Reporter(std::string name, const std::string& experiment,
           const std::string& paper_config, const std::string& our_config)
      : report_(std::move(name)) {
    report_.set_context(experiment, paper_config, our_config);
    print_header(experiment, paper_config, our_config);
  }

  harness::BackendResult run_gpu(
      const std::string& label, const harness::RunSpec& spec, int ranks,
      gpu::GpuVariant variant = gpu::GpuVariant::combined()) {
    return instrumented(label, "gpu", ranks, spec, [&] {
      return harness::run_gpu(spec, ranks, variant);
    });
  }

  harness::BackendResult run_cpu(const std::string& label,
                                 const harness::RunSpec& spec, int ranks) {
    return instrumented(label, "cpu", ranks, spec,
                        [&] { return harness::run_cpu(spec, ranks); });
  }

  harness::BackendResult run_reference(const std::string& label,
                                       const harness::RunSpec& spec) {
    return instrumented(label, "reference", 1, spec,
                        [&] { return harness::run_reference(spec); });
  }

  /// Prints the verdict line and records it in the report.
  void shape_check(const std::string& claim, bool holds) {
    print_shape_check(claim, holds);
    report_.add_shape_check(claim, holds);
  }

  /// Records a free-form scalar (micro-benchmark timings, overhead ratios).
  void metric(const std::string& name, double value) {
    report_.add_metric(name, value);
  }

  obs::BenchReport& report() { return report_; }

  /// Prints the aggregate drift table to stderr and writes the JSON.
  void finish() {
    report_.print_drift_summary(stderr);
    report_.write();
    std::fprintf(stderr, "bench report written to %s\n",
                 report_.path().c_str());
  }

 private:
  template <typename RunFn>
  harness::BackendResult instrumented(const std::string& label,
                                      const char* backend, int ranks,
                                      const harness::RunSpec& spec,
                                      RunFn&& run) {
    // Fresh in-memory collection per configuration so the harvested
    // counters belong to exactly this run.
    obs::metrics().enable("");
    harness::BackendResult r = run();
    const auto counters = obs::metrics().counters();
    obs::metrics().disable();

    obs::BenchConfig cfg;
    cfg.label = label;
    cfg.backend = backend;
    cfg.ranks = ranks;
    cfg.params = {
        {"dim_x", static_cast<double>(spec.params.dim_x)},
        {"dim_y", static_cast<double>(spec.params.dim_y)},
        {"dim_z", static_cast<double>(spec.params.dim_z)},
        {"num_steps", static_cast<double>(spec.params.num_steps)},
        {"num_foi", static_cast<double>(spec.params.num_foi)},
        {"seed", static_cast<double>(spec.params.seed)},
        {"area_scale", spec.area_scale},
        {"decomp_linear",
         spec.decomp == Decomposition::Kind::kLinear ? 1.0 : 0.0},
    };
    cfg.measured_wall_s = r.measured_wall_s;
    cfg.modeled_s = r.modeled_seconds;
    cfg.measured_by_phase_s = obs::BenchReport::measured_phases_from(counters);
    cfg.modeled_by_phase_s = obs::BenchReport::modeled_phases_from(r.cost);
    cfg.drift = obs::BenchReport::drift_from(counters, r.cost);
    cfg.comm_total = r.comm_total();
    cfg.comm_matrix = obs::BenchReport::matrix_from(r.comm_by_rank);
    report_.add_config(std::move(cfg));
    return r;
  }

  obs::BenchReport report_;
};

/// Measured cost of the observability layer when it is *disabled*.  The
/// contract (src/obs/trace.hpp) is one relaxed atomic load + branch per
/// span/metric site; this report turns that into a fraction of real step
/// time so the gate survives site-count growth.
struct ObsOverheadReport {
  double ns_per_site = 0.0;     ///< measured cost of one disabled span site
  double sites_per_step = 0.0;  ///< span + metric sites hit per step
  double step_ns = 0.0;         ///< wall time of one step, observability off
  double overhead() const {
    return step_ns > 0.0 ? ns_per_site * sites_per_step / step_ns : 0.0;
  }
};

/// Measures the disabled-observability overhead of `spec` on the GPU
/// backend: (1) times a disabled span site in a tight loop, (2) counts the
/// sites one step actually hits by running once with both collectors on
/// (in-memory, no output files), (3) times a run with observability off.
inline ObsOverheadReport measure_obs_overhead(const harness::RunSpec& spec,
                                              int ranks) {
  ObsOverheadReport r;
  obs::tracer().disable();
  obs::metrics().disable();

  {
    constexpr int kIters = 1 << 21;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      // The relaxed enabled() load in the constructor cannot be hoisted or
      // deleted, so the loop body survives optimization.
      obs::ScopedSpan probe("obs_overhead_probe", 0);
    }
    const auto t1 = std::chrono::steady_clock::now();
    r.ns_per_site =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
  }

  {
    obs::tracer().enable("");
    obs::metrics().enable("");
    harness::run_gpu(spec, ranks);
    const double sites = static_cast<double>(
        obs::tracer().event_count() + obs::tracer().dropped() +
        obs::metrics().datapoint_count());
    obs::tracer().disable();
    obs::metrics().disable();
    r.sites_per_step = sites / static_cast<double>(spec.params.num_steps);
  }

  {
    const auto t0 = std::chrono::steady_clock::now();
    harness::run_gpu(spec, ranks);
    const auto t1 = std::chrono::steady_clock::now();
    r.step_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(spec.params.num_steps);
  }
  return r;
}

/// Measured cost of the KernelCheck analyzer when it is *disabled*.  The
/// contract (src/gpusim/check.hpp) is one pointer load + branch per
/// GlobalSpan / shared-memory access; like ObsOverheadReport, the gate is
/// expressed as a fraction of real step time so it survives access-count
/// growth.
struct KernelCheckOverheadReport {
  double ns_per_site = 0.0;     ///< measured cost of one disabled check site
  double sites_per_step = 0.0;  ///< instrumented accesses per step
  double step_ns = 0.0;         ///< wall time of one step, checker off
  double overhead() const {
    return step_ns > 0.0 ? ns_per_site * sites_per_step / step_ns : 0.0;
  }
};

/// Measures the disabled-KernelCheck overhead of `spec` on the GPU backend:
/// (1) times the null-checker branch in a tight loop, (2) counts the
/// instrumented accesses one step hits by running once with the checker on,
/// (3) times a checker-off run.  SIMCOV_KERNEL_CHECK is unset for the
/// duration (and restored after) so an environment-enabled checker cannot
/// contaminate the "off" measurements.
inline KernelCheckOverheadReport measure_kernel_check_overhead(
    const harness::RunSpec& spec, int ranks) {
  KernelCheckOverheadReport r;
  const char* prev_env =
      std::getenv("SIMCOV_KERNEL_CHECK");  // NOLINT(concurrency-mt-unsafe)
  const std::string prev = prev_env != nullptr ? prev_env : "";
  ::unsetenv("SIMCOV_KERNEL_CHECK");  // NOLINT(concurrency-mt-unsafe)

  {
    // The disabled path in GlobalSpan::read/write/atomic_add is exactly
    // `if (chk_) ...` on a pointer member.  Its cost is measured
    // *differentially inside a modeled accessor* (bounds assert + stats
    // bump + the data access), because that is where the branch actually
    // executes: out-of-order cores overlap a predicted-not-taken branch
    // with the surrounding work, so timing it in an empty loop would
    // overstate the cost ~10x.  Minimum over repetitions rejects timer and
    // scheduler noise (noise is strictly additive here).
    constexpr int kIters = 1 << 21;
    constexpr int kReps = 5;
    gpusim::KernelChecker* volatile chk = nullptr;
    std::vector<double> data(4096, 1.0);
    std::uint64_t reads = 0;
    double acc = 0.0;
    const auto accessor_loop = [&](bool with_hook) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        const std::size_t idx = static_cast<std::size_t>(i) & 4095u;
        if (idx >= data.size()) std::abort();
        ++reads;
        if (with_hook) {
          gpusim::KernelChecker* c = chk;
          if (c != nullptr) {
            c->on_global_access(data.data(), idx,
                                gpusim::KernelChecker::Access::kRead);
          }
        }
        acc += data[idx];
      }
      const auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::nano>(t1 - t0).count() /
             kIters;
    };
    accessor_loop(false);  // warm-up
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double diff = accessor_loop(true) - accessor_loop(false);
      if (rep == 0 || diff < best) best = diff;
    }
    // `acc`/`reads` keep the loops alive; fold them into the (never-taken)
    // error path so the compiler cannot drop them.
    if (acc < 0.0 || reads == 0) std::abort();
    r.ns_per_site = best > 0.0 ? best : 0.0;
  }

  {
    gpu::GpuSimOptions opt;
    opt.num_ranks = ranks;
    opt.decomp = spec.decomp;
    opt.area_scale = spec.area_scale;
    opt.check_kernels = true;
    const gpu::GpuRunResult checked =
        gpu::run_gpu_sim(spec.params, spec.resolve_foi(), opt);
    r.sites_per_step = static_cast<double>(checked.check_accesses) /
                       static_cast<double>(spec.params.num_steps);
  }

  {
    const auto t0 = std::chrono::steady_clock::now();
    harness::run_gpu(spec, ranks);
    const auto t1 = std::chrono::steady_clock::now();
    r.step_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(spec.params.num_steps);
  }

  if (prev_env != nullptr) {
    ::setenv("SIMCOV_KERNEL_CHECK", prev.c_str(),
             1);  // NOLINT(concurrency-mt-unsafe)
  }
  return r;
}

}  // namespace simcov::bench
