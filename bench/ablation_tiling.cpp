// Ablation: memory-tiling design choices (§3.2).
//
// Two sweeps on a sparse-activity simulation:
//  (a) tile side (check period = tile side): small tiles track activity
//      tightly but pay sweep + always-active-border overhead; large tiles
//      process more inactive voxels per active region.
//  (b) check period at a fixed tile side: frequent sweeps cost kernel time,
//      infrequent sweeps keep stale tiles active longer.  The paper bounds
//      the period by the tile side; validation enforces that bound.
//
// Every configuration computes the identical simulation (equivalence is
// covered by tests); only the modeled cost and executed work change.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace simcov;
  bench::Reporter rep(
      "ablation_tiling",
      "Ablation: tile size and active-check period (design choices of §3.2)",
      "(not a paper figure; supports the §3.2 design discussion)",
      "4 virtual GPUs, 256^2 voxels, 8 FOI, 240 steps, sparse activity");

  harness::RunSpec spec;
  spec.params = bench::bench_params(256, 256, 240, 8);
  spec.params.min_virus = 1e-4;  // keep activity localized (sparse regime)
  spec.params.min_chem = 1e-4;
  spec.params.chem_diffusion = 0.6;
  spec.area_scale = bench::kGpuAreaScale;

  {
    TextTable t({"tile side", "modeled time (s)", "update (s)",
                 "tile sweep (s)", "reduce (s)"});
    for (int tile : {2, 4, 8, 16, 32}) {
      harness::RunSpec s = spec;
      s.params.tile_side = tile;
      s.params.tile_check_period = tile;
      const auto r = rep.run_gpu("tile " + std::to_string(tile), s, 4);
      t.add_row({std::to_string(tile), fmt(r.modeled_seconds),
                 fmt(r.cost.update_agents_s()),
                 fmt(r.cost.by_phase[static_cast<int>(
                     perfmodel::Phase::kTileSweep)]),
                 fmt(r.cost.reduce_stats_s())});
      std::fprintf(stderr, "  tile=%d done\n", tile);
    }
    std::printf("(a) tile side sweep, check period = tile side\n%s\n",
                t.to_string().c_str());
  }
  {
    TextTable t({"check period", "modeled time (s)", "update (s)",
                 "tile sweep (s)"});
    for (int period : {1, 2, 4, 8}) {
      harness::RunSpec s = spec;
      s.params.tile_side = 8;
      s.params.tile_check_period = period;
      const auto r = rep.run_gpu("period " + std::to_string(period), s, 4);
      t.add_row({std::to_string(period), fmt(r.modeled_seconds),
                 fmt(r.cost.update_agents_s()),
                 fmt(r.cost.by_phase[static_cast<int>(
                     perfmodel::Phase::kTileSweep)])});
      std::fprintf(stderr, "  period=%d done\n", period);
    }
    std::printf("(b) check period sweep at tile side 8\n%s\n",
                t.to_string().c_str());
  }
  std::printf("NOTE: 'the overhead of checking tiles is much smaller than "
              "the benefit of skipping inactive regions' (§3.2) — compare "
              "the sweep column against the unoptimized update times in "
              "fig4_ablation.\n");
  rep.finish();
  return 0;
}
