// Table 1: configuration of the performance evaluation (paper §4).
// Prints the paper's experiment matrix verbatim alongside the scaled
// configuration this repository actually runs (see bench_common.hpp for the
// mapping rationale).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace simcov;
  bench::Reporter rep(
      "table1_config", "Table 1: evaluation configurations",
      "Perlmutter/Sol, 10,000^2..40,000^2 voxels, 33,120 steps",
      "virtual GPUs + rank-per-thread PGAS, 256^2..1024^2 voxels, 240-1200 "
      "steps, per-rank load matched via area_scale");

  {
    TextTable t({"Experiment", "Min Dim", "Max Dim", "Min FOI", "Max FOI",
                 "Min {GPUs,CPUs}", "Max {GPUs,CPUs}"});
    t.add_row({"Correctness", "10,000x10,000x1", "10,000x10,000x1", "16", "16",
               "{4,128}", "{4,128}"});
    t.add_row({"Strong Scaling", "10,000x10,000x1", "10,000x10,000x1", "16",
               "16", "{4,128}", "{64,2048}"});
    t.add_row({"Weak Scaling", "10,000x10,000x1", "40,000x40,000x1", "16",
               "256", "{4,128}", "{64,2048}"});
    t.add_row({"FOI Scaling", "20,000x20,000x1", "20,000x20,000x1", "64",
               "1024*", "{16,512}", "{16,512}"});
    std::printf("PAPER (Table 1):\n%s\n", t.to_string().c_str());
    std::printf("  *no 1024-FOI SIMCoV-CPU trial in the paper (resource "
                "limits); ours runs it.\n\n");
  }
  {
    TextTable t({"Experiment", "Min Dim", "Max Dim", "Min FOI", "Max FOI",
                 "Min {GPUs,CPU ranks}", "Max {GPUs,CPU ranks}"});
    t.add_row({"Correctness", "128x128x1", "128x128x1", "16", "16", "{4,8}",
               "{4,8}"});
    t.add_row({"Strong Scaling", "256x256x1", "256x256x1", "16", "16",
               "{4,8}", "{64,128}"});
    t.add_row({"Weak Scaling", "256x256x1", "1024x1024x1", "16", "256",
               "{4,8}", "{64,128}"});
    t.add_row({"FOI Scaling", "512x512x1", "512x512x1", "64", "1024",
               "{16,32}", "{16,32}"});
    std::printf("OURS (functional scale; CPU ranks stand in for 16 cores "
                "each):\n%s\n",
                t.to_string().c_str());
  }
  std::printf("area_scale: GPU %.0f (per-GPU load = paper per-A100 load), "
              "CPU %.1f (per-rank load = paper per-core load)\n",
              bench::kGpuAreaScale, bench::kCpuAreaScale);
  rep.metric("gpu_area_scale", bench::kGpuAreaScale);
  rep.metric("cpu_area_scale", bench::kCpuAreaScale);
  rep.metric("cpu_rank_compression", bench::kCpuRankCompression);

  // A small instrumented smoke run so this report — like every bench's —
  // carries measured + modeled seconds, per-phase drift and a comm matrix.
  harness::RunSpec spec;
  spec.params = bench::bench_params(96, 96, 30, 2);
  spec.area_scale = bench::kGpuAreaScale;
  rep.run_gpu("smoke gpu 4 ranks 96^2 x30", spec, 4);
  rep.finish();
  return 0;
}
