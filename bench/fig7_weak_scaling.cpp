// Figure 7 (§4.3): weak scaling — resources, voxels and FOI double together.
//
// Expected shape: SIMCoV-GPU outperforms SIMCoV-CPU at every point (~4-5x);
// GPU runtime rises from the base to the middle configurations (initial
// cost of parallelism) and then stays nearly constant, while SIMCoV-CPU
// gradually loses performance; paper speedups: 4.91, 4.38, 3.53, 3.48, 3.82.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace simcov;
  bench::Reporter rep(
      "fig7_weak_scaling",
      "Figure 7: weak scaling (problem size doubles with resources)",
      "10,000^2 -> 40,000^2 voxels, FOI 16 -> 256, {4,128}..{64,2048}",
      "256^2 -> 1024^2 voxels, FOI 16 -> 256, 240 steps, same rank mapping "
      "as Fig. 6");

  const double paper_speedups[5] = {4.91, 4.38, 3.53, 3.48, 3.82};
  const int dims_x[5] = {256, 512, 512, 1024, 1024};
  const int dims_y[5] = {256, 256, 512, 512, 1024};

  std::vector<double> gpu_t, cpu_t;
  TextTable t({"{GPUs,CPUs}", "Grid", "FOI", "SIMCoV-CPU (s)",
               "SIMCoV-GPU (s)", "Speedup", "Paper speedup"});
  for (int i = 0; i < 5; ++i) {
    const int gpus = 4 << i;
    const int paper_cpus = 128 << i;
    const long long foi = 16LL << i;
    harness::RunSpec spec;
    spec.params = bench::bench_params(dims_x[i], dims_y[i], 240, foi);
    spec.area_scale = bench::kGpuAreaScale;
    const auto g = rep.run_gpu("gpu " + std::to_string(gpus), spec, gpus);
    spec.area_scale = bench::kCpuAreaScale;
    const auto c = rep.run_cpu("cpu " + std::to_string(paper_cpus), spec,
                              bench::cpu_ranks_for(paper_cpus));
    gpu_t.push_back(g.modeled_seconds);
    cpu_t.push_back(c.modeled_seconds);
    t.add_row({fmt_resources(gpus, paper_cpus),
               std::to_string(dims_x[i]) + "x" + std::to_string(dims_y[i]),
               std::to_string(foi), fmt(c.modeled_seconds),
               fmt(g.modeled_seconds), fmt(harness::speedup(c, g)),
               fmt(paper_speedups[i])});
    std::fprintf(stderr, "  ran {%d,%d} %dx%d\n", gpus, paper_cpus,
                 dims_x[i], dims_y[i]);
  }
  std::printf("%s\n", t.to_string().c_str());

  bool gpu_wins_everywhere = true;
  for (int i = 0; i < 5; ++i) {
    gpu_wins_everywhere = gpu_wins_everywhere && gpu_t[i] < cpu_t[i];
  }
  rep.shape_check("GPU outperforms CPU at every configuration",
                           gpu_wins_everywhere);
  rep.shape_check(
      "initial cost of parallelism: GPU runtime rises base -> mid",
      gpu_t[2] > gpu_t[0]);
  rep.shape_check(
      "GPU runtime near-constant once paid (last two within 25%)",
      gpu_t[4] < 1.25 * gpu_t[3] && gpu_t[3] < 1.25 * gpu_t[4]);
  rep.shape_check(
      "CPU gradually degrades (last point slower than first)",
      cpu_t[4] > cpu_t[0]);
  rep.shape_check(
      "speedup stays in the ~3-5x band throughout (paper 3.5-4.9)",
      cpu_t[4] / gpu_t[4] > 2.0 && cpu_t[0] / gpu_t[0] < 7.0);
  rep.finish();
  return 0;
}
