// Figure 4 (§3.4): optimization breakdown of SIMCoV-GPU.
//
// Four prototypes — Unoptimized, Fast Reduction only, Memory Tiling only,
// Combined — run a dense-activity simulation (the paper uses 1024 FOI on 4
// V100s); runtime is split into the paper's two categories, "Update Agents"
// and "Reduce Statistics".  Expected shape: reductions dominate the
// unoptimized version; each optimization helps its own category; memory
// tiling also improves the reduction (locality); the combined version wins
// and the gains compose roughly independently.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace simcov;
  bench::Reporter rep(
      "fig4_ablation",
      "Figure 4: SIMCoV-GPU optimization breakdown (update vs reduce)",
      "4 V100 (ASU Agave), dense activity (1024 FOI)",
      "4 virtual GPUs, 256^2 voxels, 16 FOI (paper's multi-focal density at 1/39 linear scale), 300 steps");

  harness::RunSpec spec;
  spec.params = bench::bench_params(256, 256, 300, 16);
  spec.area_scale = bench::kGpuAreaScale;

  struct Row {
    gpu::GpuVariant variant;
    harness::BackendResult result;
  };
  std::vector<Row> rows;
  for (const auto& v :
       {gpu::GpuVariant::unoptimized(), gpu::GpuVariant::fast_reduction_only(),
        gpu::GpuVariant::memory_tiling_only(), gpu::GpuVariant::combined()}) {
    rows.push_back({v, rep.run_gpu(v.name(), spec, 4, v)});
    std::fprintf(stderr, "  ran %s\n", v.name().c_str());
  }

  TextTable t({"SIMCoV-GPU Version", "Update Agents (s)",
               "Reduce Statistics (s)", "Total (s)"});
  for (const auto& r : rows) {
    t.add_row({r.variant.name(), fmt(r.result.cost.update_agents_s()),
               fmt(r.result.cost.reduce_stats_s()),
               fmt(r.result.modeled_seconds)});
  }
  std::printf("%s\n", t.to_string().c_str());

  const auto& unopt = rows[0].result;
  const auto& fastred = rows[1].result;
  const auto& tiling = rows[2].result;
  const auto& combined = rows[3].result;
  rep.shape_check(
      "reductions dominate the unoptimized version",
      unopt.cost.reduce_stats_s() > unopt.cost.update_agents_s());
  rep.shape_check(
      "fast reduction slashes reduce time vs unoptimized",
      fastred.cost.reduce_stats_s() < 0.25 * unopt.cost.reduce_stats_s());
  rep.shape_check(
      "memory tiling reduces agent-update time",
      tiling.cost.update_agents_s() < unopt.cost.update_agents_s());
  rep.shape_check(
      "memory tiling also improves the reduction (locality)",
      tiling.cost.reduce_stats_s() < unopt.cost.reduce_stats_s());
  rep.shape_check(
      "combined is fastest overall",
      combined.modeled_seconds < fastred.modeled_seconds &&
          combined.modeled_seconds < tiling.modeled_seconds);
  // "the optimizations combine very effectively ... mostly independent
  // effects": combined inherits tiling's update time and fast reduction's
  // reduce time simultaneously.
  rep.shape_check(
      "effects are independent: combined update ~= tiling update",
      combined.cost.update_agents_s() < 1.2 * tiling.cost.update_agents_s());
  rep.shape_check(
      "effects are independent: combined reduce ~= fast-red reduce",
      combined.cost.reduce_stats_s() < 1.2 * fastred.cost.reduce_stats_s());
  rep.finish();
  return 0;
}
