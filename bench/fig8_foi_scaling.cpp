// Figure 8 (§4.4): impact of the number of foci of infection (FOI).
//
// Fixed resources ({16 GPUs, 512 cores} on 4 Perlmutter nodes in the
// paper), fixed grid, FOI doubling 64 -> 1024.  Expected shape: SIMCoV-GPU's
// runtime grows sublinearly (activity saturates; the always-swept reduction
// is FOI-independent), SIMCoV-CPU's grows much faster (active-list work
// scales with activity), so the speedup climbs from ~3.5x to ~12x.  The
// paper could not afford a 1024-FOI CPU trial; we run it anyway.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace simcov;
  bench::Reporter rep(
      "fig8_foi_scaling",
      "Figure 8: FOI scaling (activity density) at fixed resources",
      "20,000^2 voxels, {16,512}, FOI 64..1024 (no CPU trial at 1024)",
      "512^2 voxels, {16 GPU ranks, 32 CPU ranks}, 300 steps, FOI 64..1024");

  const double paper_speedups[4] = {3.53, 5.16, 7.68, 11.97};

  std::vector<double> gpu_t, cpu_t;
  TextTable t({"FOI", "SIMCoV-CPU (s)", "SIMCoV-GPU (s)", "Speedup",
               "Paper speedup"});
  int i = 0;
  for (long long foi : {64LL, 128LL, 256LL, 512LL, 1024LL}) {
    harness::RunSpec spec;
    spec.params = bench::bench_params(512, 512, 275, foi);
    // Keep infection foci spatially sparse, as on the paper's 20,000^2
    // grid: slower spread and tighter zero-floors so the active fraction
    // stays proportional to FOI instead of saturating the (scaled-down)
    // domain within the run.
    spec.params.virus_diffusion = 0.15;
    spec.params.infectivity = 0.006;
    spec.params.virus_production = 0.04;
    spec.params.chem_diffusion = 0.6;
    spec.params.min_chem = 1e-4;
    spec.params.min_virus = 1e-4;
    spec.area_scale = bench::kGpuAreaScale;
    const auto g = rep.run_gpu("gpu foi " + std::to_string(foi), spec, 16);
    spec.area_scale = bench::kCpuAreaScale;
    const auto c = rep.run_cpu("cpu foi " + std::to_string(foi), spec,
                              bench::cpu_ranks_for(512));
    gpu_t.push_back(g.modeled_seconds);
    cpu_t.push_back(c.modeled_seconds);
    t.add_row({std::to_string(foi), fmt(c.modeled_seconds),
               fmt(g.modeled_seconds), fmt(harness::speedup(c, g)),
               i < 4 ? fmt(paper_speedups[i]) : std::string("n/a*")});
    std::fprintf(stderr, "  ran FOI=%lld\n", foi);
    ++i;
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("  *the paper reports no CPU measurement at 1024 FOI.\n\n");

  const std::size_t n = gpu_t.size();
  rep.shape_check(
      "GPU runtime grows sublinearly in FOI (16x FOI -> < 4x time)",
      gpu_t[n - 1] < 4.0 * gpu_t[0]);
  rep.shape_check(
      "CPU runtime grows much faster than GPU's",
      cpu_t[n - 1] / cpu_t[0] > 2.0 * (gpu_t[n - 1] / gpu_t[0]));
  rep.shape_check(
      "speedup climbs monotonically with FOI",
      cpu_t[1] / gpu_t[1] > cpu_t[0] / gpu_t[0] &&
          cpu_t[3] / gpu_t[3] > cpu_t[1] / gpu_t[1]);
  // The paper's top annotation is 11.97x; our absolute level is lower
  // (the CPU baseline's load imbalance is measured at 32-way rather than
  // 512-way granularity, see EXPERIMENTS.md), but the multiplicative climb
  // matches: ~3.4x from the first to the last measured point.
  rep.shape_check(
      "speedup multiplies ~3x+ from lowest to highest FOI (paper 3.4x)",
      cpu_t[n - 1] / gpu_t[n - 1] > 3.0 * (cpu_t[0] / gpu_t[0]));
  rep.finish();
  return 0;
}
