// Figure 5 + Table 2 (§4.1): correctness — SIMCoV-CPU vs SIMCoV-GPU.
//
// The paper runs five trials of each backend with the same parameter set
// and compares aggregate time series (total virus, tissue T cells,
// apoptotic epithelial cells): the means track closely, and the peak
// statistics agree within ~1%.  Note that this repository's backends are
// *bit-identical* for the same seed (tests/equivalence_test.cpp), which is
// stronger than the paper's statistical agreement; to reproduce the paper's
// comparison honestly, the five CPU trials and the five GPU trials use
// disjoint seed sets, so agreement is measured across independent
// stochastic runs exactly as the paper measured it.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

struct TrialSet {
  std::vector<std::vector<double>> virus, tcells, apoptotic;
};

}  // namespace

int main() {
  using namespace simcov;
  bench::Reporter rep(
      "fig5_correctness",
      "Figure 5 + Table 2: CPU vs GPU correctness (5 trials each)",
      "10,000^2 voxels, 16 FOI, 33,120 steps (~23 days), 128 cores vs 4 A100",
      "128^2 voxels, 16 FOI, 1,200 steps (full infection arc), 8 CPU ranks "
      "vs 4 virtual GPUs, disjoint seeds per backend");

  auto make_params = [](std::uint64_t seed) {
    SimParams p = bench::bench_params(128, 128, 1200, 16);
    p.tcell_generation_rate = 20.0;  // full arc within the step budget
    p.seed = seed;
    return p;
  };

  TrialSet cpu_set, gpu_set;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    harness::RunSpec spec;
    spec.params = make_params(s);
    spec.area_scale = bench::kCpuAreaScale;
    const auto r = rep.run_cpu("cpu seed " + std::to_string(s), spec, 8);
    cpu_set.virus.push_back(series_virus(r.history));
    cpu_set.tcells.push_back(series_tcells(r.history));
    cpu_set.apoptotic.push_back(series_apoptotic(r.history));
    std::fprintf(stderr, "  ran CPU seed %llu\n",
                 static_cast<unsigned long long>(s));
  }
  for (std::uint64_t s = 101; s <= 105; ++s) {
    harness::RunSpec spec;
    spec.params = make_params(s);
    spec.area_scale = bench::kGpuAreaScale;
    const auto r = rep.run_gpu("gpu seed " + std::to_string(s), spec, 4);
    gpu_set.virus.push_back(series_virus(r.history));
    gpu_set.tcells.push_back(series_tcells(r.history));
    gpu_set.apoptotic.push_back(series_apoptotic(r.history));
    std::fprintf(stderr, "  ran GPU seed %llu\n",
                 static_cast<unsigned long long>(s));
  }

  // ---- Figure 5: time-series envelopes, sampled every 100 steps ---------
  auto print_series = [](const char* title,
                         const std::vector<std::vector<double>>& cpu,
                         const std::vector<std::vector<double>>& gpu) {
    const Envelope ce = envelope(cpu);
    const Envelope ge = envelope(gpu);
    TextTable t({"step", "CPU mean", "CPU min..max", "GPU mean",
                 "GPU min..max"});
    for (std::size_t i = 99; i < ce.mean.size(); i += 100) {
      t.add_row({std::to_string(i + 1), fmt(ce.mean[i], 0),
                 fmt(ce.min[i], 0) + ".." + fmt(ce.max[i], 0),
                 fmt(ge.mean[i], 0),
                 fmt(ge.min[i], 0) + ".." + fmt(ge.max[i], 0)});
    }
    std::printf("(%s)\n%s\n", title, t.to_string().c_str());
  };
  print_series("A: total virus", cpu_set.virus, gpu_set.virus);
  print_series("B: tissue T cells", cpu_set.tcells, gpu_set.tcells);
  print_series("C: apoptotic epithelial cells", cpu_set.apoptotic,
               gpu_set.apoptotic);

  // ---- Table 2: peak agreement + per-backend standard deviations ---------
  auto peaks = [](const std::vector<std::vector<double>>& trials) {
    std::vector<double> out;
    for (const auto& t : trials) out.push_back(peak(t));
    return out;
  };
  struct Stat {
    const char* name;
    std::vector<double> cpu_peaks, gpu_peaks;
  };
  std::vector<Stat> stats = {
      {"Virus", peaks(cpu_set.virus), peaks(gpu_set.virus)},
      {"T cells", peaks(cpu_set.tcells), peaks(gpu_set.tcells)},
      {"Apop. Epi. Cells", peaks(cpu_set.apoptotic),
       peaks(gpu_set.apoptotic)},
  };
  TextTable t({"Stat (Peak)", "Pct. Agree.", "CPU STD", "GPU STD"});
  bool all_agree = true;
  for (const auto& s : stats) {
    const MeanStd c = mean_std(s.cpu_peaks);
    const MeanStd g = mean_std(s.gpu_peaks);
    const double agree = percent_agreement(c.mean, g.mean);
    all_agree = all_agree && agree > 95.0;
    t.add_row({s.name, fmt(agree), fmt(c.std, 1), fmt(g.std, 1)});
  }
  std::printf("(Table 2)\n%s\n", t.to_string().c_str());

  rep.shape_check(
      "peak statistics agree across backends (paper: >99%; ours: >95% with "
      "5 trials at 1/6000 the voxel count)",
      all_agree);
  rep.finish();
  return 0;
}
