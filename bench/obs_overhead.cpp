// Overhead gate for the observability layer (src/obs) and the KernelCheck
// analyzer (src/gpusim/check.hpp).
//
// Not a paper figure: an engineering check that the always-compiled tracer,
// metrics registry, and kernel-access check hooks stay effectively free
// when disabled.  For each layer, the measured per-site cost (one relaxed
// atomic load + branch for obs; one pointer load + branch for KernelCheck)
// times the number of sites a real step hits must stay under 2% of the
// measured step wall time.  If a check starts MISSing, either a site gained
// work on the disabled path or sites multiplied faster than step cost.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace simcov;
  using namespace simcov::bench;

  Reporter rep("obs_overhead", "Observability overhead (collectors disabled)",
               "n/a (engineering gate, not a paper figure)",
               "gpu engine, 4 ranks, 96x96, 30 steps");

  harness::RunSpec spec;
  spec.params = bench_params(96, 96, 30, 2);
  const ObsOverheadReport r = measure_obs_overhead(spec, 4);

  TextTable t({"quantity", "value"});
  t.add_row({"disabled site cost (ns)", fmt(r.ns_per_site, 3)});
  t.add_row({"sites per step", fmt(r.sites_per_step, 1)});
  t.add_row({"step wall time (ms)", fmt(r.step_ns / 1e6, 3)});
  t.add_row({"disabled overhead", fmt(r.overhead() * 100.0, 4) + "%"});
  std::printf("%s", t.to_string().c_str());

  rep.shape_check("disabled-observability overhead <= 2% of step time",
                  r.overhead() <= 0.02);
  rep.metric("ns_per_site", r.ns_per_site);
  rep.metric("sites_per_step", r.sites_per_step);
  rep.metric("step_ns", r.step_ns);
  rep.metric("disabled_overhead", r.overhead());

  // Same gate for the KernelCheck hooks woven into every GlobalSpan and
  // shared-memory access: a step executes orders of magnitude more access
  // sites than span sites, so the disabled branch must be near-free.
  const KernelCheckOverheadReport kc = measure_kernel_check_overhead(spec, 4);

  TextTable kt({"quantity", "value"});
  kt.add_row({"disabled check-site cost (ns)", fmt(kc.ns_per_site, 3)});
  kt.add_row({"checked accesses per step", fmt(kc.sites_per_step, 1)});
  kt.add_row({"step wall time (ms)", fmt(kc.step_ns / 1e6, 3)});
  kt.add_row({"disabled overhead", fmt(kc.overhead() * 100.0, 4) + "%"});
  std::printf("%s", kt.to_string().c_str());

  rep.shape_check("disabled-site kernel-check overhead <= 2% of step time",
                  kc.overhead() <= 0.02);
  rep.metric("kernel_check_ns_per_site", kc.ns_per_site);
  rep.metric("kernel_check_sites_per_step", kc.sites_per_step);
  rep.metric("kernel_check_disabled_overhead", kc.overhead());

  // One instrumented run of the same spec so this report also carries
  // measured/modeled drift and the comm matrix.
  spec.area_scale = kGpuAreaScale;
  rep.run_gpu("instrumented gpu 4 ranks 96^2 x30", spec, 4);
  rep.finish();
  return 0;
}
