// Overhead gate for the observability layer (src/obs).
//
// Not a paper figure: an engineering check that the always-compiled tracer
// and metrics registry stay effectively free when disabled.  The measured
// per-site cost (one relaxed atomic load + branch) times the number of
// span/metric sites a real step hits must stay under 2% of the measured
// step wall time.  If this check starts MISSing, either a span site gained
// work on the disabled path or sites multiplied faster than step cost.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace simcov;
  using namespace simcov::bench;

  Reporter rep("obs_overhead", "Observability overhead (collectors disabled)",
               "n/a (engineering gate, not a paper figure)",
               "gpu engine, 4 ranks, 96x96, 30 steps");

  harness::RunSpec spec;
  spec.params = bench_params(96, 96, 30, 2);
  const ObsOverheadReport r = measure_obs_overhead(spec, 4);

  TextTable t({"quantity", "value"});
  t.add_row({"disabled site cost (ns)", fmt(r.ns_per_site, 3)});
  t.add_row({"sites per step", fmt(r.sites_per_step, 1)});
  t.add_row({"step wall time (ms)", fmt(r.step_ns / 1e6, 3)});
  t.add_row({"disabled overhead", fmt(r.overhead() * 100.0, 4) + "%"});
  std::printf("%s", t.to_string().c_str());

  rep.shape_check("disabled-observability overhead <= 2% of step time",
                  r.overhead() <= 0.02);
  rep.metric("ns_per_site", r.ns_per_site);
  rep.metric("sites_per_step", r.sites_per_step);
  rep.metric("step_ns", r.step_ns);
  rep.metric("disabled_overhead", r.overhead());

  // One instrumented run of the same spec so this report also carries
  // measured/modeled drift and the comm matrix.
  spec.area_scale = kGpuAreaScale;
  rep.run_gpu("instrumented gpu 4 ranks 96^2 x30", spec, 4);
  rep.finish();
  return 0;
}
